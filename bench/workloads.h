// Shared workload definitions for the benchmark suite: the paper's three
// application queries (Table III) against the TPC-H-style schema, dataset
// caching, and keyword-temperature selection (Section VII-B).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dash_engine.h"
#include "sql/parser.h"
#include "tpch/tpch.h"
#include "webapp/query_string.h"

namespace dash::bench {

// Table III, adapted to the generator's schema (same join shapes, same
// selection parameters $r / $min / $max).
inline const char* kQ1Sql =
    "SELECT * FROM (region JOIN nation) JOIN customer "
    "WHERE region.rid = $r AND acctbal BETWEEN $min AND $max";
inline const char* kQ2Sql =
    "SELECT * FROM (customer JOIN orders) JOIN lineitem "
    "WHERE customer.cid = $r AND qty BETWEEN $min AND $max";
inline const char* kQ3Sql =
    "SELECT * FROM (customer JOIN orders) JOIN (lineitem JOIN part) "
    "WHERE customer.cid = $r AND qty BETWEEN $min AND $max";

inline const char* QuerySql(int q) {
  switch (q) {
    case 1:
      return kQ1Sql;
    case 2:
      return kQ2Sql;
    default:
      return kQ3Sql;
  }
}

inline webapp::WebAppInfo MakeApp(int q) {
  webapp::WebAppInfo app;
  app.name = "Q" + std::to_string(q);
  app.uri = "warehouse.example/q" + std::to_string(q);
  app.query = sql::Parse(QuerySql(q));
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  return app;
}

// Datasets are deterministic, so cache one instance per scale.
inline const db::Database& Dataset(tpch::Scale scale) {
  static std::map<tpch::Scale, std::unique_ptr<db::Database>> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    it = cache.emplace(scale, std::make_unique<db::Database>(
                                  tpch::Generate(scale)))
             .first;
  }
  return *it->second;
}

// Cached reference-crawl engine per (query, scale) — used by the search
// and graph benches so index construction isn't re-measured.
inline const core::DashEngine& Engine(int q, tpch::Scale scale) {
  static std::map<std::pair<int, int>, std::unique_ptr<core::DashEngine>>
      cache;
  auto key = std::make_pair(q, static_cast<int>(scale));
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::BuildOptions options;
    options.algorithm = core::CrawlAlgorithm::kReference;
    it = cache
             .emplace(key, std::make_unique<core::DashEngine>(
                               core::DashEngine::Build(Dataset(scale),
                                                       MakeApp(q), options)))
             .first;
  }
  return *it->second;
}

// Section VII-B keyword buckets: 30 keywords from the top / middle /
// bottom 10% of the DF-ordered keyword list.
enum class Temperature { kCold, kWarm, kHot };

inline const char* TemperatureName(Temperature t) {
  switch (t) {
    case Temperature::kCold:
      return "cold";
    case Temperature::kWarm:
      return "warm";
    case Temperature::kHot:
      return "hot";
  }
  return "?";
}

inline std::vector<std::string> PickKeywords(
    const core::InvertedFragmentIndex& index, Temperature temp,
    std::size_t count = 30) {
  auto by_df = index.KeywordsByDf();  // descending DF
  std::size_t n = by_df.size();
  std::size_t begin = 0;
  switch (temp) {
    case Temperature::kHot:
      begin = 0;  // top 10%
      break;
    case Temperature::kWarm:
      begin = n > 0 ? (n / 2 > count ? n / 2 - count / 2 : 0) : 0;  // middle
      break;
    case Temperature::kCold:
      begin = n > count ? n - count : 0;  // bottom 10%
      break;
  }
  std::vector<std::string> out;
  for (std::size_t i = begin; i < n && out.size() < count; ++i) {
    out.push_back(by_df[i].first);
  }
  return out;
}

// One measured cell of a machine-readable bench report.
struct JsonCell {
  std::string name;       // e.g. "hot/k10/s200"
  double ns_per_query = 0;
};

// Writes `BENCH_<bench>.json` with ns/query per cell so successive runs
// can be diffed mechanically. Target directory comes from
// DASH_BENCH_JSON_DIR (default: current directory).
inline void WriteBenchJson(const std::string& bench,
                           const std::vector<JsonCell>& cells) {
  const char* dir = std::getenv("DASH_BENCH_JSON_DIR");
  std::string path = std::string(dir != nullptr ? dir : ".") + "/BENCH_" +
                     bench + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"unit\": \"ns_per_query\",\n"
                  "  \"results\": {\n", bench.c_str());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.0f%s\n", cells[i].name.c_str(),
                 cells[i].ns_per_query, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace dash::bench
