// Section I quantified: "surfacing" (discovering db-pages by invoking the
// web application with trial query strings, the pre-Dash approach) versus
// Dash's database crawling.
//
// For growing invocation budgets the table reports what surfacing buys —
// distinct pages found, wasted invocations (empty or duplicate-content
// pages), and the fraction of the application's atomic content (fragments)
// covered. Dash's crawl, by construction, covers 100% of the fragments in
// one database pass; its cost appears in bench_crawl_index.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/surfacing.h"
#include "workloads.h"

namespace {

using namespace dash;

const std::size_t kBudgets[] = {50, 200, 1000, 5000};

void PrintCoverageTable() {
  const db::Database& db = bench::Dataset(tpch::Scale::kTiny);
  webapp::WebAppInfo app = bench::MakeApp(2);

  baseline::SurfacingOptions probe;
  probe.max_invocations = 1;
  std::size_t fragments = baseline::SurfaceDbPages(db, app, probe).fragments_total;
  std::printf(
      "Surfacing vs database crawling (Q2, tiny: %zu fragments; Dash "
      "covers 100%% in one crawl)\n"
      "%-10s %10s %10s %10s %10s %10s\n",
      fragments, "strategy", "budget", "distinct", "empty", "duplicate",
      "coverage");
  for (auto strategy : {baseline::ProbeStrategy::kInformed,
                        baseline::ProbeStrategy::kBlind}) {
    for (std::size_t budget : kBudgets) {
      baseline::SurfacingOptions options;
      options.strategy = strategy;
      options.max_invocations = budget;
      baseline::SurfacingReport r = baseline::SurfaceDbPages(db, app, options);
      std::printf("%-10s %10zu %10zu %10zu %10zu %9.1f%%\n",
                  strategy == baseline::ProbeStrategy::kInformed ? "informed"
                                                                 : "blind",
                  r.invocations, r.distinct_pages, r.empty_pages,
                  r.duplicate_pages, 100.0 * r.FragmentCoverage());
    }
  }
  std::printf("\n");
}

void BM_Surfacing(benchmark::State& state) {
  const auto strategy = static_cast<baseline::ProbeStrategy>(state.range(0));
  const auto budget = static_cast<std::size_t>(state.range(1));
  const db::Database& db = bench::Dataset(tpch::Scale::kTiny);
  webapp::WebAppInfo app = bench::MakeApp(2);

  baseline::SurfacingReport report;
  for (auto _ : state) {
    baseline::SurfacingOptions options;
    options.strategy = strategy;
    options.max_invocations = budget;
    report = baseline::SurfaceDbPages(db, app, options);
    benchmark::DoNotOptimize(report.distinct_pages);
  }
  state.counters["coverage"] = report.FragmentCoverage();
  state.counters["waste"] = report.WasteFraction();
  state.counters["invocations"] = static_cast<double>(report.invocations);
}

}  // namespace

int main(int argc, char** argv) {
  PrintCoverageTable();
  for (auto strategy : {baseline::ProbeStrategy::kInformed,
                        baseline::ProbeStrategy::kBlind}) {
    for (std::size_t budget : kBudgets) {
      std::string name =
          std::string("surfacing/") +
          (strategy == baseline::ProbeStrategy::kInformed ? "informed"
                                                          : "blind") +
          "/n" + std::to_string(budget);
      benchmark::RegisterBenchmark(
          name.c_str(), [](benchmark::State& state) { BM_Surfacing(state); })
          ->Args({static_cast<long>(strategy), static_cast<long>(budget)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
