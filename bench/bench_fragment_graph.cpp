// Table IV: fragment graph building performance — build time, number of
// db-page fragments, average keywords per fragment — for Q1/Q2/Q3 on the
// medium dataset.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/fragment_graph.h"
#include "workloads.h"

namespace {

using namespace dash;

void BM_FragmentGraphBuild(benchmark::State& state) {
  const int query = static_cast<int>(state.range(0));
  const core::DashEngine& engine =
      bench::Engine(query, tpch::Scale::kMedium);
  const core::FragmentCatalog& catalog = engine.catalog();
  std::size_t num_eq = 0;
  for (const auto& a : engine.selection()) {
    if (!a.is_range) ++num_eq;
  }
  std::size_t edges = 0;
  for (auto _ : state) {
    core::FragmentGraph graph = core::FragmentGraph::Build(
        catalog, num_eq, engine.selection().size() - num_eq);
    edges = graph.edge_count();
    benchmark::DoNotOptimize(edges);
  }
  state.counters["fragments"] = static_cast<double>(catalog.size());
  state.counters["avg_keywords"] = catalog.AverageKeywords();
  state.counters["edges"] = static_cast<double>(edges);
}

void PrintTableIV() {
  std::printf(
      "Table IV — fragment graph building (medium dataset)\n"
      "%-4s %14s %18s %16s\n",
      "", "build time", "#fragments", "avg #keywords");
  for (int q : {1, 2, 3}) {
    const core::DashEngine& engine = bench::Engine(q, tpch::Scale::kMedium);
    std::printf("Q%-3d %12.3f s %18zu %16.1f\n", q,
                engine.graph().stats().build_seconds, engine.catalog().size(),
                engine.catalog().AverageKeywords());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintTableIV();
  for (int q : {1, 2, 3}) {
    std::string name = "fragment_graph_build/Q" + std::to_string(q);
    benchmark::RegisterBenchmark(name.c_str(), [](benchmark::State& state) {
      BM_FragmentGraphBuild(state);
    })->Arg(q)->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
