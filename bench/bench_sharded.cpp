// Serving-scalability bench: top-k search latency against shard count, and
// the result-cache hit path. Not a paper figure — it characterizes the
// serving-side extensions (sharded_engine.h, result_cache.h).
#include <benchmark/benchmark.h>

#include "core/crawler.h"
#include "util/stopwatch.h"
#include "core/result_cache.h"
#include "core/sharded_engine.h"
#include "workloads.h"

namespace {

using namespace dash;

const core::ShardedEngine& Sharded(int shards) {
  static std::map<int, std::unique_ptr<core::ShardedEngine>> cache;
  auto it = cache.find(shards);
  if (it == cache.end()) {
    core::Crawler crawler(bench::Dataset(tpch::Scale::kMedium),
                          sql::Parse(bench::kQ2Sql));
    it = cache
             .emplace(shards, std::make_unique<core::ShardedEngine>(
                                  bench::MakeApp(2), crawler.BuildIndex(),
                                  shards))
             .first;
  }
  return *it->second;
}

void BM_ShardedSearch(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const core::ShardedEngine& engine = Sharded(shards);
  const auto keywords = bench::PickKeywords(
      bench::Engine(2, tpch::Scale::kMedium).index(),
      bench::Temperature::kWarm);
  std::size_t i = 0;
  for (auto _ : state) {
    auto results = engine.Search({keywords[i % keywords.size()]}, 10, 200);
    benchmark::DoNotOptimize(results);
    ++i;
  }
}

void BM_CachedSearch(benchmark::State& state) {
  const core::DashEngine& engine = bench::Engine(2, tpch::Scale::kMedium);
  core::CachingEngine caching(engine, 1024);
  const auto keywords = bench::PickKeywords(engine.index(),
                                            bench::Temperature::kHot);
  std::size_t i = 0;
  for (auto _ : state) {
    auto results = caching.Search({keywords[i % keywords.size()]}, 10, 200);
    benchmark::DoNotOptimize(results);
    ++i;
  }
  state.counters["hit_rate"] = caching.cache().stats().HitRate();
}

void BM_UncachedHotSearch(benchmark::State& state) {
  const core::DashEngine& engine = bench::Engine(2, tpch::Scale::kMedium);
  const auto keywords = bench::PickKeywords(engine.index(),
                                            bench::Temperature::kHot);
  std::size_t i = 0;
  for (auto _ : state) {
    auto results = engine.Search({keywords[i % keywords.size()]}, 10, 200);
    benchmark::DoNotOptimize(results);
    ++i;
  }
}

// Seed-cap ablation: hot-keyword latency against the search-scope cap.
void BM_SeedCap(benchmark::State& state) {
  const auto max_seeds = static_cast<std::size_t>(state.range(0));
  const core::DashEngine& engine = bench::Engine(2, tpch::Scale::kMedium);
  const auto keywords = bench::PickKeywords(engine.index(),
                                            bench::Temperature::kHot);
  std::size_t i = 0, results_total = 0;
  for (auto _ : state) {
    auto results =
        engine.Search({keywords[i % keywords.size()]}, 10, 200, max_seeds);
    results_total += results.size();
    benchmark::DoNotOptimize(results);
    ++i;
  }
  state.counters["avg_results"] =
      static_cast<double>(results_total) /
      static_cast<double>(state.iterations());
}

// Machine-readable report: scatter-gather ns/query per shard count on the
// warm-keyword workload (k=10, s=200; 3 timed passes after warmup).
void WriteShardedJson() {
  const auto keywords = bench::PickKeywords(
      bench::Engine(2, tpch::Scale::kMedium).index(),
      bench::Temperature::kWarm);
  std::vector<bench::JsonCell> cells;
  for (int shards : {1, 2, 4, 8}) {
    const core::ShardedEngine& engine = Sharded(shards);
    for (const std::string& kw : keywords) {  // warmup
      benchmark::DoNotOptimize(engine.Search({kw}, 10, 200));
    }
    constexpr int kPasses = 3;
    util::Stopwatch watch;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const std::string& kw : keywords) {
        benchmark::DoNotOptimize(engine.Search({kw}, 10, 200));
      }
    }
    double ns = watch.ElapsedSeconds() * 1e9 /
                static_cast<double>(kPasses * keywords.size());
    cells.push_back({"shards" + std::to_string(shards), ns});
  }
  bench::WriteBenchJson("sharded", cells);
}

}  // namespace

int main(int argc, char** argv) {
  WriteShardedJson();
  for (int shards : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("sharded_search/shards" + std::to_string(shards)).c_str(),
        [](benchmark::State& state) { BM_ShardedSearch(state); })
        ->Arg(shards)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::RegisterBenchmark("cached_hot_search", [](benchmark::State& s) {
    BM_CachedSearch(s);
  })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("uncached_hot_search",
                               [](benchmark::State& s) {
                                 BM_UncachedHotSearch(s);
                               })
      ->Unit(benchmark::kMicrosecond);
  for (long cap : {0L, 100L, 1000L, 10000L}) {
    benchmark::RegisterBenchmark(
        ("seed_cap/max" + std::to_string(cap)).c_str(),
        [](benchmark::State& state) { BM_SeedCap(state); })
        ->Arg(cap)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
