// Figure 11: top-k search performance on Q2 / medium — elapsed time per
// search for k in {1,5,10,20}, size threshold s in {100,200,500,1000}, and
// cold/warm/hot queried keywords (bottom/middle/top 10% by document
// frequency, 30 keywords each, like the paper's setup).
//
// The paper's headline claim is that all searches stay under ~0.3 ms; the
// run prints a Figure-11-style summary after the sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "util/stopwatch.h"
#include "workloads.h"

namespace {

using namespace dash;

const int kKs[] = {1, 5, 10, 20};
const std::uint64_t kSs[] = {100, 200, 500, 1000};
const bench::Temperature kTemps[] = {bench::Temperature::kCold,
                                     bench::Temperature::kWarm,
                                     bench::Temperature::kHot};

const std::vector<std::string>& Keywords(bench::Temperature temp) {
  static std::map<int, std::vector<std::string>> cache;
  auto it = cache.find(static_cast<int>(temp));
  if (it == cache.end()) {
    const core::DashEngine& engine = bench::Engine(2, tpch::Scale::kMedium);
    it = cache
             .emplace(static_cast<int>(temp),
                      bench::PickKeywords(engine.index(), temp))
             .first;
  }
  return it->second;
}

void BM_TopKSearch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::uint64_t s = static_cast<std::uint64_t>(state.range(1));
  const auto temp = static_cast<bench::Temperature>(state.range(2));
  const core::DashEngine& engine = bench::Engine(2, tpch::Scale::kMedium);
  const std::vector<std::string>& keywords = Keywords(temp);

  std::size_t i = 0, results = 0;
  for (auto _ : state) {
    auto r = engine.Search({keywords[i % keywords.size()]}, k, s);
    results += r.size();
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.counters["avg_results"] =
      static_cast<double>(results) / static_cast<double>(state.iterations());
}

// Figure-11-style summary table: average elapsed time per (temp, k, s).
void PrintFigure11() {
  const core::DashEngine& engine = bench::Engine(2, tpch::Scale::kMedium);
  std::printf("Figure 11 — top-k search time, milliseconds "
              "(Q2, medium; avg over 30 keywords)\n");
  std::printf("%-6s %-6s", "terms", "k");
  for (std::uint64_t s : kSs) {
    std::printf("  s=%-8llu", static_cast<unsigned long long>(s));
  }
  std::printf("\n");
  for (auto temp : kTemps) {
    const auto& keywords = Keywords(temp);
    for (int k : kKs) {
      std::printf("%-6s %-6d", bench::TemperatureName(temp), k);
      for (std::uint64_t s : kSs) {
        util::Stopwatch watch;
        for (const std::string& kw : keywords) {
          benchmark::DoNotOptimize(engine.Search({kw}, k, s));
        }
        std::printf("  %-10.4f",
                    watch.ElapsedMillis() / static_cast<double>(keywords.size()));
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

// Machine-readable report: ns/query for a fixed grid, averaged over the
// 30 bucket keywords (3 timed passes after one warmup pass).
void WriteTopkJson() {
  const core::DashEngine& engine = bench::Engine(2, tpch::Scale::kMedium);
  std::vector<bench::JsonCell> cells;
  for (auto temp : kTemps) {
    const auto& keywords = Keywords(temp);
    for (int k : {1, 10}) {
      for (std::uint64_t s : {std::uint64_t{200}, std::uint64_t{1000}}) {
        for (const std::string& kw : keywords) {  // warmup
          benchmark::DoNotOptimize(engine.Search({kw}, k, s));
        }
        constexpr int kPasses = 3;
        util::Stopwatch watch;
        for (int pass = 0; pass < kPasses; ++pass) {
          for (const std::string& kw : keywords) {
            benchmark::DoNotOptimize(engine.Search({kw}, k, s));
          }
        }
        double ns = watch.ElapsedSeconds() * 1e9 /
                    static_cast<double>(kPasses * keywords.size());
        cells.push_back({std::string(bench::TemperatureName(temp)) + "/k" +
                             std::to_string(k) + "/s" + std::to_string(s),
                         ns});
      }
    }
  }
  bench::WriteBenchJson("topk", cells);
}

}  // namespace

int main(int argc, char** argv) {
  PrintFigure11();
  WriteTopkJson();
  for (auto temp : kTemps) {
    for (int k : kKs) {
      for (std::uint64_t s : kSs) {
        std::string name = std::string("topk_search/") +
                           bench::TemperatureName(temp) + "/k" +
                           std::to_string(k) + "/s" + std::to_string(s);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [](benchmark::State& state) { BM_TopKSearch(state); })
            ->Args({k, static_cast<long>(s), static_cast<long>(temp)})
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
