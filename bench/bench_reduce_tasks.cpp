// Section VII-A side experiment: the impact of the number of reduce tasks
// on crawl/index time with a fixed cluster size. The paper reports only a
// 3-8% difference because the jobs are map/I-O bound — the same flat shape
// should appear here.
#include <benchmark/benchmark.h>

#include "core/mr_crawl.h"
#include "workloads.h"

namespace {

using namespace dash;

void BM_ReduceTasks(benchmark::State& state) {
  const int reduce_tasks = static_cast<int>(state.range(0));
  const bool integrated = state.range(1) != 0;
  const db::Database& db = bench::Dataset(tpch::Scale::kSmall);
  sql::PsjQuery psj = sql::Parse(bench::kQ2Sql);

  core::CrawlOptions options;
  options.num_reduce_tasks = reduce_tasks;
  double wall = 0, shuffle = 0;
  for (auto _ : state) {
    mr::Cluster cluster;
    core::CrawlResult result =
        integrated ? core::IntegratedCrawl(cluster, db, psj, options)
                   : core::StepwiseCrawl(cluster, db, psj, options);
    wall += result.TotalWallSec();
    shuffle += static_cast<double>(cluster.Totals().map_output_bytes);
    benchmark::DoNotOptimize(result.build.catalog.size());
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["wall_s"] = wall / n;
  state.counters["shuffle_MB"] = shuffle / n / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  for (bool integrated : {false, true}) {
    for (int reduce_tasks : {1, 2, 4, 8}) {
      std::string name = std::string("reduce_tasks/") +
                         (integrated ? "INT" : "SW") + "/r" +
                         std::to_string(reduce_tasks);
      benchmark::RegisterBenchmark(
          name.c_str(), [](benchmark::State& state) { BM_ReduceTasks(state); })
          ->Args({reduce_tasks, integrated ? 1 : 0})
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
