// Sections I and IV quantified: the fragment index versus the "intuitive
// approach" of materializing and indexing every db-page.
//
// Reports, for fooddb and TPC-H tiny/small (Q2):
//   pages vs fragments        combinatorial page blow-up
//   index bytes               storage overhead of overlapped content
//   build seconds             collection+indexing cost
//   top-10 redundancy         content-covered pages in the result list
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/page_engine.h"
#include "testing/fooddb.h"
#include "util/stopwatch.h"
#include "workloads.h"

namespace {

using namespace dash;

struct Scenario {
  std::string name;
  const db::Database* db;
  webapp::WebAppInfo app;
  std::string probe_keyword;
};

std::vector<Scenario>& Scenarios() {
  static std::vector<Scenario> scenarios = [] {
    static db::Database fooddb = dash::testing::MakeFoodDb();
    std::vector<Scenario> out;
    out.push_back({"fooddb", &fooddb, dash::testing::MakeSearchApp(),
                   "burger"});
    out.push_back({"tpch_tiny_q2", &bench::Dataset(tpch::Scale::kTiny),
                   bench::MakeApp(2), ""});
    out.push_back({"tpch_small_q2", &bench::Dataset(tpch::Scale::kSmall),
                   bench::MakeApp(2), ""});
    return out;
  }();
  return scenarios;
}

void PrintComparison() {
  std::printf(
      "Fragments (Dash) vs whole pages (intuitive approach), Section IV\n"
      "%-15s %12s %12s %14s %14s %12s %12s %12s\n",
      "scenario", "#fragments", "#pages", "frag_idx_B", "page_idx_B",
      "frag_bld_s", "page_bld_s", "redund@10");
  for (Scenario& s : Scenarios()) {
    util::Stopwatch watch;
    core::Crawler crawler(*s.db, s.app.query);
    core::FragmentIndexBuild build = crawler.BuildIndex();
    double frag_build = watch.ElapsedSeconds();

    baseline::PageEngine pages(*s.db, s.app);

    std::string keyword = s.probe_keyword;
    if (keyword.empty()) {
      // A cold keyword: it lives in few fragments, so the top-10 pages are
      // nested intervals around them — the paper's P1-covered-by-P2 case.
      keyword = build.index.KeywordsByDf().back().first;
    }
    auto results = pages.Search({keyword}, 10);
    std::printf("%-15s %12zu %12zu %14zu %14zu %12.3f %12.3f %11.0f%%\n",
                s.name.c_str(), build.catalog.size(), pages.page_count(),
                build.index.SizeBytes() + build.catalog.SizeBytes(),
                pages.IndexSizeBytes(), frag_build, pages.build_seconds(),
                100.0 * baseline::PageEngine::RedundantFraction(results));
  }
  std::printf("\n");
}

void BM_FragmentIndexBuild(benchmark::State& state) {
  Scenario& s = Scenarios()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    core::Crawler crawler(*s.db, s.app.query);
    core::FragmentIndexBuild build = crawler.BuildIndex();
    benchmark::DoNotOptimize(build.catalog.size());
  }
}

void BM_PageEngineBuild(benchmark::State& state) {
  Scenario& s = Scenarios()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    baseline::PageEngine pages(*s.db, s.app);
    benchmark::DoNotOptimize(pages.page_count());
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintComparison();
  for (std::size_t i = 0; i < Scenarios().size(); ++i) {
    const std::string& scen = Scenarios()[i].name;
    benchmark::RegisterBenchmark(
        ("baseline_compare/fragments/" + scen).c_str(),
        [](benchmark::State& state) { BM_FragmentIndexBuild(state); })
        ->Arg(static_cast<long>(i))
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("baseline_compare/whole_pages/" + scen).c_str(),
        [](benchmark::State& state) { BM_PageEngineBuild(state); })
        ->Arg(static_cast<long>(i))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
