// Substrate micro-benchmarks: MapReduce wordcount and join throughput,
// relational hash-join throughput, tokenizer throughput. Not a paper
// figure — these pin down where the simulated cluster's time goes so the
// Figure 10 shapes are interpretable.
#include <benchmark/benchmark.h>

#include "core/mr_common.h"
#include "db/ops.h"
#include "mapreduce/cluster.h"
#include "tpch/tpch.h"
#include "util/tokenizer.h"
#include "workloads.h"

namespace {

using namespace dash;

class WordCountMapper : public mr::Mapper {
 public:
  void Map(const mr::Record& record, mr::Emitter& out) override {
    for (const std::string& w : util::Tokenize(record.value)) {
      out.Emit(w, "1");
    }
  }
};

class SumReducer : public mr::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mr::Emitter& out) override {
    std::uint64_t total = 0;
    for (const std::string& v : values) total += std::stoull(v);
    out.Emit(key, std::to_string(total));
  }
};

void BM_MrWordCount(benchmark::State& state) {
  const db::Database& db = bench::Dataset(tpch::Scale::kSmall);
  core::MrTable input = core::ExportTable(db.table("lineitem"));
  for (auto _ : state) {
    mr::Cluster cluster;
    mr::JobConfig job;
    auto out = cluster.Run(
        job, input.data, [] { return std::make_unique<WordCountMapper>(); },
        [] { return std::make_unique<SumReducer>(); },
        [] { return std::make_unique<SumReducer>(); });
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(input.data.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(mr::DatasetBytes(input.data)));
}

void BM_MrJoin(benchmark::State& state) {
  const db::Database& db = bench::Dataset(tpch::Scale::kSmall);
  core::MrTable orders = core::ExportTable(db.table("orders"));
  core::MrTable lineitem = core::ExportTable(db.table("lineitem"));
  for (auto _ : state) {
    mr::Cluster cluster;
    core::MrTable joined =
        core::MrJoin(cluster, "join", orders, lineitem, "orders.oid",
                     "lineitem.oid", sql::JoinKind::kInner, 4);
    benchmark::DoNotOptimize(joined.data.size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(orders.data.size() + lineitem.data.size()));
}

void BM_HashJoin(benchmark::State& state) {
  const db::Database& db = bench::Dataset(tpch::Scale::kSmall);
  const db::Table& orders = db.table("orders");
  const db::Table& lineitem = db.table("lineitem");
  for (auto _ : state) {
    db::Table joined = db::HashJoin(orders, lineitem, "orders.oid",
                                    "lineitem.oid", db::JoinType::kInner);
    benchmark::DoNotOptimize(joined.row_count());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(orders.row_count() + lineitem.row_count()));
}

void BM_Tokenizer(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "furiously final deposits haggle 4.3 01/11 Bond's theodolites ";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Tokenize(text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}

void BM_ClusterNodes(benchmark::State& state) {
  // Thread scaling of the simulated cluster (bounded by real cores).
  const db::Database& db = bench::Dataset(tpch::Scale::kSmall);
  core::MrTable input = core::ExportTable(db.table("lineitem"));
  mr::ClusterConfig config;
  config.num_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mr::Cluster cluster(config);
    mr::JobConfig job;
    auto out = cluster.Run(
        job, input.data, [] { return std::make_unique<WordCountMapper>(); },
        [] { return std::make_unique<SumReducer>(); });
    benchmark::DoNotOptimize(out.size());
  }
}

BENCHMARK(BM_MrWordCount)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MrJoin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashJoin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tokenizer)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ClusterNodes)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
