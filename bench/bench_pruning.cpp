// Ablation for the crawl-scope / efficiency tradeoff (paper Section VIII,
// item 3, implemented in core/pruning.h): sweeping the minimum-keywords
// threshold charts how much index storage is saved against how much
// searchable vocabulary is given up, plus the pruning pass's own cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/crawler.h"
#include "core/pruning.h"
#include "workloads.h"

namespace {

using namespace dash;

const std::uint64_t kThresholds[] = {0, 25, 50, 100, 200, 400};

const core::FragmentIndexBuild& BaseBuild() {
  static const core::FragmentIndexBuild build = [] {
    core::Crawler crawler(bench::Dataset(tpch::Scale::kMedium),
                          sql::Parse(bench::kQ2Sql));
    return crawler.BuildIndex();
  }();
  return build;
}

void PrintTradeoff() {
  std::printf(
      "Crawl-scope tradeoff (Q2, medium): prune fragments under N keywords\n"
      "%-10s %12s %12s %14s %12s\n",
      "minimum", "#fragments", "dropped", "index bytes", "kw recall");
  for (std::uint64_t threshold : kThresholds) {
    core::PruneStats stats;
    core::PruneFragments(BaseBuild(), threshold, &stats);
    std::printf("%-10llu %12zu %12zu %14zu %11.1f%%\n",
                static_cast<unsigned long long>(threshold),
                stats.kept_fragments, stats.dropped_fragments,
                stats.index_bytes_after, 100.0 * stats.KeywordRecall());
  }
  std::printf("\n");
}

void BM_Prune(benchmark::State& state) {
  const auto threshold = static_cast<std::uint64_t>(state.range(0));
  core::PruneStats stats;
  for (auto _ : state) {
    core::FragmentIndexBuild pruned =
        core::PruneFragments(BaseBuild(), threshold, &stats);
    benchmark::DoNotOptimize(pruned.catalog.size());
  }
  state.counters["kept"] = static_cast<double>(stats.kept_fragments);
  state.counters["recall"] = stats.KeywordRecall();
  state.counters["index_MB"] =
      static_cast<double>(stats.index_bytes_after) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  PrintTradeoff();
  for (std::uint64_t threshold : kThresholds) {
    std::string name = "prune/min" + std::to_string(threshold);
    benchmark::RegisterBenchmark(
        name.c_str(), [](benchmark::State& state) { BM_Prune(state); })
        ->Arg(static_cast<long>(threshold))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
