// Figure 10 + Table II: database crawling and fragment indexing elapsed
// time — stepwise (SW) vs integrated (INT) — for application queries
// Q1/Q2/Q3 over the small/medium/large datasets, with the per-phase
// breakdown the paper's stacked bars show (SW-Jn/Grp/Idx,
// INT-Jn/Ext/Cnsd).
//
// Counters reported per run:
//   wall_s      real elapsed seconds on this machine (all phases)
//   modeled_s   elapsed seconds under the paper's 4-node-cluster cost
//               model with data_scale_factor=1000 (our datasets are
//               Table II divided by ~1000, so modeled time charges each
//               byte a thousandfold to recover the paper-scale regime)
//   shuffle_MB  bytes crossing the (simulated) network
//   <phase>_s   wall seconds per pipeline phase
//
// After the sweep a Figure-10-style table of modeled times is printed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/mr_crawl.h"
#include "util/string_util.h"
#include "workloads.h"

namespace {

using namespace dash;

const tpch::Scale kScales[] = {tpch::Scale::kSmall, tpch::Scale::kMedium,
                               tpch::Scale::kLarge};

mr::CostModel PaperCostModel() {
  mr::CostModel cost;  // 4 nodes, gigabit, commodity disks (Section VII)
  cost.data_scale_factor = 1000.0;
  return cost;
}

struct RunSummary {
  double wall_s = 0;
  double modeled_s = 0;
  std::vector<std::pair<std::string, double>> phase_modeled_s;
};
// (integrated, query, scale) -> summary, filled as benchmarks run.
std::map<std::tuple<bool, int, int>, RunSummary> g_summaries;

void PrintTableII() {
  std::printf("Table II — experimented datasets (payload bytes; Table II "
              "of the paper divided by ~1000)\n");
  std::printf("%-8s %10s %10s %10s %10s %10s %10s\n", "", "R", "N", "C", "O",
              "L", "P");
  for (tpch::Scale scale : kScales) {
    const db::Database& db = bench::Dataset(scale);
    std::printf("%-8s %10s %10s %10s %10s %10s %10s\n",
                std::string(tpch::ScaleName(scale)).c_str(),
                util::HumanBytes(db.table("region").PayloadBytes()).c_str(),
                util::HumanBytes(db.table("nation").PayloadBytes()).c_str(),
                util::HumanBytes(db.table("customer").PayloadBytes()).c_str(),
                util::HumanBytes(db.table("orders").PayloadBytes()).c_str(),
                util::HumanBytes(db.table("lineitem").PayloadBytes()).c_str(),
                util::HumanBytes(db.table("part").PayloadBytes()).c_str());
  }
  std::printf("\n");
}

void PrintFigure10() {
  std::printf(
      "\nFigure 10 — modeled crawling+indexing elapsed time, seconds "
      "(paper cost model, data x1000)\n%-8s %-4s %12s %12s %12s %12s | "
      "phase breakdown\n",
      "dataset", "Q", "SW", "INT", "saving", "wall SW/INT");
  for (tpch::Scale scale : kScales) {
    for (int q : {1, 2, 3}) {
      auto sw = g_summaries.find({false, q, static_cast<int>(scale)});
      auto in = g_summaries.find({true, q, static_cast<int>(scale)});
      if (sw == g_summaries.end() || in == g_summaries.end()) continue;
      std::printf("%-8s Q%-3d %11.1fs %11.1fs %11.1f%% %6.2f/%.2fs | ",
                  std::string(tpch::ScaleName(scale)).c_str(), q,
                  sw->second.modeled_s, in->second.modeled_s,
                  100.0 * (1.0 - in->second.modeled_s / sw->second.modeled_s),
                  sw->second.wall_s, in->second.wall_s);
      for (const auto& [name, secs] : sw->second.phase_modeled_s) {
        std::printf("%s=%.1fs ", name.c_str(), secs);
      }
      for (const auto& [name, secs] : in->second.phase_modeled_s) {
        std::printf("%s=%.1fs ", name.c_str(), secs);
      }
      std::printf("\n");
    }
  }
}

void BM_CrawlIndex(benchmark::State& state) {
  const bool integrated = state.range(0) != 0;
  const int query = static_cast<int>(state.range(1));
  const tpch::Scale scale = static_cast<tpch::Scale>(state.range(2));

  const db::Database& db = bench::Dataset(scale);
  sql::PsjQuery psj = sql::Parse(bench::QuerySql(query));
  const mr::CostModel cost = PaperCostModel();

  RunSummary summary;
  double shuffle_bytes = 0;
  std::map<std::string, double> phase_wall;
  std::size_t fragments = 0;
  for (auto _ : state) {
    mr::Cluster cluster;
    core::CrawlResult result = integrated
                                   ? core::IntegratedCrawl(cluster, db, psj)
                                   : core::StepwiseCrawl(cluster, db, psj);
    summary.wall_s = result.TotalWallSec();
    summary.modeled_s = result.ModeledSec(cost);
    summary.phase_modeled_s.clear();
    for (const core::CrawlPhase& p : result.phases) {
      summary.phase_modeled_s.emplace_back(p.name, p.metrics.ModeledSec(cost));
      phase_wall[p.name] += p.metrics.TotalWallSec();
    }
    shuffle_bytes += static_cast<double>(cluster.Totals().map_output_bytes);
    fragments = result.build.catalog.size();
    benchmark::DoNotOptimize(result.build.index.keyword_count());
  }
  g_summaries[{integrated, query, static_cast<int>(scale)}] = summary;

  const double n = static_cast<double>(state.iterations());
  state.counters["wall_s"] = summary.wall_s;
  state.counters["modeled_s"] = summary.modeled_s;
  state.counters["shuffle_MB"] = shuffle_bytes / n / (1024.0 * 1024.0);
  state.counters["fragments"] = static_cast<double>(fragments);
  for (const auto& [name, secs] : phase_wall) {
    state.counters[name + "_s"] = secs / n;
  }
}

void RegisterAll() {
  for (tpch::Scale scale : kScales) {
    for (int query : {1, 2, 3}) {
      for (bool integrated : {false, true}) {
        std::string name = std::string("crawl_index/") +
                           (integrated ? "INT" : "SW") + "/Q" +
                           std::to_string(query) + "/" +
                           std::string(tpch::ScaleName(scale));
        benchmark::RegisterBenchmark(
            name.c_str(),
            [](benchmark::State& state) { BM_CrawlIndex(state); })
            ->Args({integrated ? 1 : 0, query, static_cast<int>(scale)})
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintTableII();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintFigure10();
  benchmark::Shutdown();
  return 0;
}
