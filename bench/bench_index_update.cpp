// Extension bench (paper Section VIII item 1): incremental fragment-index
// maintenance versus rebuilding from scratch. The paper: "It should be
// very costly to rebuild the entire fragment index. Some efficient update
// mechanisms ... are desirable."
//
// Measures the per-update cost of UpdatableIndex (insert a lineitem,
// recompute only affected fragments) against a full recrawl, on growing
// datasets. The counter `frags_touched` shows why it wins: an update
// recomputes ~1 fragment out of tens of thousands.
#include <benchmark/benchmark.h>

#include "core/index_update.h"
#include "util/random.h"
#include "workloads.h"

namespace {

using namespace dash;

void BM_IncrementalInsert(benchmark::State& state) {
  const auto scale = static_cast<tpch::Scale>(state.range(0));
  core::UpdatableIndex updatable(tpch::Generate(scale),
                                 sql::Parse(bench::kQ2Sql));
  const db::Table& orders = updatable.database().table("orders");
  util::SplitMix64 rng(1);
  std::int64_t next_lid = 10'000'000;
  std::size_t before = updatable.fragments_recomputed();
  std::size_t updates = 0;
  for (auto _ : state) {
    const db::Row& order = orders.rows()[rng.Below(orders.row_count())];
    updatable.Insert("lineitem",
                     {db::Value(next_lid++), order[0],
                      db::Value(rng.Range(0, 29)), db::Value(rng.Range(1, 50)),
                      db::Value(42.0), db::Value(0.01),
                      db::Value("1996-06-06"),
                      db::Value("furiously incremental deposits")});
    ++updates;
  }
  state.counters["frags_touched_per_update"] =
      static_cast<double>(updatable.fragments_recomputed() - before) /
      static_cast<double>(updates);
  state.counters["total_fragments"] =
      static_cast<double>(updatable.fragment_count());
}

void BM_FullRebuild(benchmark::State& state) {
  const auto scale = static_cast<tpch::Scale>(state.range(0));
  const db::Database& db = bench::Dataset(scale);
  sql::PsjQuery query = sql::Parse(bench::kQ2Sql);
  for (auto _ : state) {
    core::Crawler crawler(db, query);
    core::FragmentIndexBuild build = crawler.BuildIndex();
    benchmark::DoNotOptimize(build.catalog.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (tpch::Scale scale : {tpch::Scale::kTiny, tpch::Scale::kSmall}) {
    std::string suffix = std::string(tpch::ScaleName(scale));
    benchmark::RegisterBenchmark(
        ("index_update/incremental_insert/" + suffix).c_str(),
        [](benchmark::State& state) { BM_IncrementalInsert(state); })
        ->Arg(static_cast<long>(scale))
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("index_update/full_rebuild/" + suffix).c_str(),
        [](benchmark::State& state) { BM_FullRebuild(state); })
        ->Arg(static_cast<long>(scale))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
