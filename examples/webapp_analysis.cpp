// Web application analysis demo (paper Section III, Example 2).
//
// Feeds the Figure 3 Search servlet source to the analyzer, prints the
// recovered query-string bindings and parameterized PSJ query, then uses
// reverse engineering to enumerate every query string the application
// accepts — deduced purely from the database content, exactly the paper's
// "reverse query parsing" idea.
//
//   $ ./webapp_analysis
#include <cstdio>
#include <set>

#include "core/crawler.h"
#include "testing/fooddb.h"
#include "webapp/servlet_analyzer.h"

int main() {
  using namespace dash;

  std::string_view source = webapp::ExampleSearchServletSource();
  std::printf("Servlet source under analysis:\n%.*s\n",
              static_cast<int>(source.size()), source.data());

  webapp::WebAppInfo app = webapp::AnalyzeServlet(source, "Search",
                                                  "www.example.com/Search");
  std::printf("Recovered bindings (URL field -> query parameter):\n");
  for (const webapp::ParamBinding& b : app.codec.bindings()) {
    std::printf("  %s -> %s\n", b.url_field.c_str(), b.parameter.c_str());
  }
  std::printf("Recovered parameterized PSJ query:\n  %s\n\n",
              app.query.ToString().c_str());

  // Reverse engineering (Example 2): parameter values live in the operand
  // relations, so all query strings can be deduced from the database.
  db::Database db = testing::MakeFoodDb();
  const db::Table& restaurant = db.table("restaurant");
  std::set<std::string> cuisines;
  std::set<std::int64_t> budgets;
  for (const db::Row& row : restaurant.rows()) {
    cuisines.insert(row[2].AsString());
    budgets.insert(row[3].AsInt());
  }

  std::printf("Deducible query strings (cuisine x budget x budget):\n");
  int shown = 0;
  for (const std::string& cuisine : cuisines) {
    for (std::int64_t lo : budgets) {
      for (std::int64_t hi : budgets) {
        if (lo > hi) continue;
        std::string url = app.UrlFor({{"cuisine", cuisine},
                                      {"min", std::to_string(lo)},
                                      {"max", std::to_string(hi)}});
        std::printf("  %s\n", url.c_str());
        ++shown;
      }
    }
  }
  std::printf("=> %d canonical query strings for %zu cuisines and %zu "
              "budget values.\n",
              shown, cuisines.size(), budgets.size());
  return 0;
}
