// dash_cli — the Dash search engine as a command-line tool.
//
// A downstream user's workflow, end to end, with nothing hard-coded:
//
//   # 1. Get a sample dataset + servlet to play with (or bring your own):
//   ./dash_cli dump-sample /tmp/dashdemo
//
//   # 2. Crawl the database through the analyzed web application and
//   #    persist the fragment index:
//   ./dash_cli crawl /tmp/dashdemo/db /tmp/dashdemo/Search.java
//       Search www.example.com/Search /tmp/dashdemo/search.idx
//   (one line; wrapped here for width)
//
//   # 3. Serve keyword searches from the index file — optionally through
//   #    the sharded scatter-gather path or the snapshot-keyed result
//   #    cache (both share the one loaded IndexSnapshot):
//   ./dash_cli search /tmp/dashdemo/search.idx -k 2 -s 20 burger
//   ./dash_cli search /tmp/dashdemo/search.idx --shards 4 burger
//   ./dash_cli search /tmp/dashdemo/search.idx --cache 64 burger
//   ./dash_cli stats  /tmp/dashdemo/search.idx
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/dash_engine.h"
#include "core/index_io.h"
#include "core/result_cache.h"
#include "core/sharded_engine.h"
#include "db/csv_io.h"
#include "testing/fooddb.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "webapp/servlet_analyzer.h"

namespace {

using namespace dash;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dash_cli dump-sample <dir>\n"
               "  dash_cli crawl <dbdir> <servlet> <name> <uri> <out.idx> "
               "[--algorithm ref|sw|int]\n"
               "  dash_cli search <idx> [-k N] [-s N] [--shards N] "
               "[--cache N] <keyword>...\n"
               "  dash_cli stats <idx>\n");
  return 2;
}

int DumpSample(const std::string& dir) {
  namespace fs = std::filesystem;
  fs::create_directories(fs::path(dir) / "db");
  db::SaveDatabase(testing::MakeFoodDb(), (fs::path(dir) / "db").string());
  std::ofstream servlet(fs::path(dir) / "Search.java", std::ios::trunc);
  servlet << webapp::ExampleSearchServletSource();
  std::printf("Wrote sample database to %s/db and servlet to "
              "%s/Search.java\n",
              dir.c_str(), dir.c_str());
  return 0;
}

int Crawl(int argc, char** argv) {
  if (argc < 7) return Usage();
  const std::string dbdir = argv[2];
  const std::string servlet_path = argv[3];
  const std::string name = argv[4];
  const std::string uri = argv[5];
  const std::string out_path = argv[6];
  core::BuildOptions options;
  options.algorithm = core::CrawlAlgorithm::kIntegrated;
  for (int i = 7; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--algorithm") == 0) {
      std::string a = argv[i + 1];
      if (a == "ref") options.algorithm = core::CrawlAlgorithm::kReference;
      else if (a == "sw") options.algorithm = core::CrawlAlgorithm::kStepwise;
      else if (a == "int") options.algorithm = core::CrawlAlgorithm::kIntegrated;
      else return Usage();
    }
  }

  db::Database db = db::LoadDatabase(dbdir);
  std::printf("Loaded %zu tables from %s\n", db.TableNames().size(),
              dbdir.c_str());

  std::ifstream in(servlet_path);
  if (!in) {
    std::fprintf(stderr, "cannot read servlet source %s\n",
                 servlet_path.c_str());
    return 1;
  }
  std::string source((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  webapp::WebAppInfo app = webapp::AnalyzeServlet(source, name, uri);
  std::printf("Analyzed application %s:\n  %s\n", app.name.c_str(),
              app.query.ToString().c_str());

  util::Stopwatch watch;
  core::DashEngine engine = core::DashEngine::Build(db, app, options);
  std::printf("Crawled with the %s algorithm in %.3fs: %zu fragments, "
              "%zu keywords, %zu graph edges\n",
              std::string(core::CrawlAlgorithmName(options.algorithm)).c_str(),
              watch.ElapsedSeconds(), engine.catalog().size(),
              engine.index().keyword_count(), engine.graph().edge_count());
  for (const core::CrawlPhase& phase : engine.crawl_phases()) {
    std::printf("  %-9s %s\n", phase.name.c_str(),
                phase.metrics.ToString().c_str());
  }
  core::SaveEngineFile(engine, out_path);
  std::printf("Index saved to %s\n", out_path.c_str());
  return 0;
}

int Search(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string idx_path = argv[2];
  int k = 10;
  std::uint64_t s = 100;
  int shards = 1;
  std::size_t cache = 0;
  std::vector<std::string> keywords;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "-k") == 0 && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "-s") == 0 && i + 1 < argc) {
      s = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      keywords.emplace_back(argv[i]);
    }
  }
  if (keywords.empty() || shards < 1) return Usage();

  // One immutable snapshot behind a publication point — the same serving
  // shape a long-running deployment uses; every path below shares it.
  core::SnapshotPtr snapshot = core::LoadSnapshotFile(idx_path);
  core::SnapshotPublisher publisher(snapshot);
  std::vector<core::SearchResult> results;
  util::Stopwatch watch;
  double ms = 0;
  if (cache > 0) {
    core::CachingEngine caching(publisher, cache);
    results = caching.Search(keywords, k, s);
    double cold_ms = watch.ElapsedMillis();
    util::Stopwatch warm;
    results = caching.Search(keywords, k, s);
    ms = warm.ElapsedMillis();
    std::printf("cache: cold %.3f ms, cached %.3f ms (generation %llu)\n",
                cold_ms, ms,
                static_cast<unsigned long long>(
                    publisher.CurrentGeneration()));
  } else if (shards > 1) {
    core::ShardedEngine sharded(snapshot, shards);
    watch = util::Stopwatch();
    results = sharded.Search(keywords, k, s);
    ms = watch.ElapsedMillis();
    std::printf("scatter-gather over %zu shards, one shared snapshot\n",
                sharded.shard_count());
  } else {
    core::DashEngine engine(snapshot);
    results = engine.Search(keywords, k, s);
    ms = watch.ElapsedMillis();
  }
  if (results.empty()) {
    std::printf("no db-pages match '%s'\n",
                util::Join(keywords, " ").c_str());
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%2zu. %-60s score=%.5f (%llu words)\n", i + 1,
                results[i].url.c_str(), results[i].score,
                static_cast<unsigned long long>(results[i].size_words));
  }
  std::printf("(%zu result%s in %.3f ms)\n", results.size(),
              results.size() == 1 ? "" : "s", ms);
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  core::SnapshotPtr snapshot = core::LoadSnapshotFile(argv[2]);
  core::SnapshotPublisher publisher(snapshot);
  core::DashEngine engine(publisher.Current());
  std::printf("application : %s (%s)\n", engine.app().name.c_str(),
              engine.app().uri.c_str());
  std::printf("snapshot    : generation %llu, %zu fragments, %zu terms\n",
              static_cast<unsigned long long>(snapshot->generation()),
              snapshot->catalog().size(),
              snapshot->index().keyword_count());
  std::printf("query       : %s\n", engine.app().query.ToString().c_str());
  std::printf("fragments   : %zu (avg %.1f keywords)\n",
              engine.catalog().size(), engine.catalog().AverageKeywords());
  std::printf("keywords    : %zu distinct, %zu postings\n",
              engine.index().keyword_count(), engine.index().posting_count());
  std::printf("index size  : %s\n",
              util::HumanBytes(engine.index().SizeBytes() +
                               engine.catalog().SizeBytes())
                  .c_str());
  std::printf("graph       : %zu edges over %zu equality groups\n",
              engine.graph().edge_count(), engine.graph().num_groups());
  auto by_df = engine.index().KeywordsByDf();
  std::printf("hottest     :");
  for (std::size_t i = 0; i < by_df.size() && i < 5; ++i) {
    std::printf(" %s(%zu)", by_df[i].first.c_str(), by_df[i].second);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  try {
    if (std::strcmp(argv[1], "dump-sample") == 0 && argc >= 3) {
      return DumpSample(argv[2]);
    }
    if (std::strcmp(argv[1], "crawl") == 0) return Crawl(argc, argv);
    if (std::strcmp(argv[1], "search") == 0) return Search(argc, argv);
    if (std::strcmp(argv[1], "stats") == 0) return Stats(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
