// Serving-layer demo: everything between the fragment index and a user's
// query in a production deployment.
//
//   * MultiAppEngine (paper Section VIII item 2): two applications over
//     one database — a mirror with identical content is deduplicated,
//     an app with different projections is not;
//   * ShardedEngine: the index partitioned over 3 "nodes" with scatter-
//     gather search and globally consistent IDF;
//   * CachingEngine: repeated queries served from the LRU result cache.
//
//   $ ./federation
#include <cstdio>

#include "core/multi_app.h"
#include "core/result_cache.h"
#include "core/sharded_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "util/stopwatch.h"

int main() {
  using namespace dash;

  db::Database db = testing::MakeFoodDb();
  core::BuildOptions options;
  options.algorithm = core::CrawlAlgorithm::kReference;

  // --- Multi-application dedup. ---
  webapp::WebAppInfo mirror = testing::MakeSearchApp();
  mirror.name = "Mirror";
  mirror.uri = "mirror.example.com/Find";

  webapp::WebAppInfo ratings;
  ratings.name = "Ratings";
  ratings.uri = "www.example.com/Ratings";
  ratings.query = sql::Parse(
      "SELECT name, rate, comment FROM restaurant LEFT JOIN comment "
      "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max");
  ratings.codec = webapp::QueryStringCodec(
      {{"c", "cuisine"}, {"l", "min"}, {"u", "max"}});

  core::MultiAppEngine multi;
  multi.AddApp(core::DashEngine::Build(db, testing::MakeSearchApp(), options));
  multi.AddApp(core::DashEngine::Build(db, mirror, options));
  multi.AddApp(core::DashEngine::Build(db, ratings, options));

  std::printf("Federated search over %zu applications, keyword \"burger\":\n",
              multi.app_count());
  for (const auto& r : multi.Search({"burger"}, 6, 20)) {
    std::printf("  [%-7s] %-55s score=%.4f\n", r.app.c_str(),
                r.result.url.c_str(), r.result.score);
  }
  std::printf("  (the Mirror app's identical pages were deduplicated by "
              "content hash)\n");

  // --- Sharded serving. ---
  core::Crawler crawler(db, testing::MakeSearchApp().query);
  core::ShardedEngine sharded(testing::MakeSearchApp(), crawler.BuildIndex(),
                              3);
  std::printf("\nIndex partitioned over %zu shards (fragments per shard:",
              sharded.shard_count());
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    std::printf(" %zu", sharded.shard_fragment_count(s));
  }
  std::printf(")\nScatter-gather top-2 for \"burger\":\n");
  for (const auto& r : sharded.Search({"burger"}, 2, 20)) {
    std::printf("  %-55s score=%.4f\n", r.url.c_str(), r.score);
  }

  // --- Result caching. ---
  core::DashEngine engine =
      core::DashEngine::Build(db, testing::MakeSearchApp(), options);
  core::CachingEngine caching(engine, 64);
  util::Stopwatch cold;
  (void)caching.Search({"burger"}, 2, 20);
  double cold_us = cold.ElapsedMicros();
  util::Stopwatch warm;
  for (int i = 0; i < 1000; ++i) (void)caching.Search({"burger"}, 2, 20);
  double warm_us = warm.ElapsedMicros() / 1000.0;
  std::printf("\nResult cache: cold %.1f us, cached %.2f us/query, "
              "hit rate %.1f%%\n",
              cold_us, warm_us, 100.0 * caching.cache().stats().HitRate());
  return 0;
}
