// Incremental index maintenance + persistence demo (paper Section VIII).
//
// Walks the lifecycle a production deployment of Dash would follow:
//   1. full crawl of fooddb and a search;
//   2. live database updates (new comments/restaurants, deletions) applied
//      through UpdatableIndex — only affected fragments are recomputed;
//   3. the refreshed index is saved to disk and reloaded into a serving
//      engine that answers the same search with the new content.
//
//   $ ./incremental_updates
#include <cstdio>

#include "core/dash_engine.h"
#include "core/index_io.h"
#include "core/index_update.h"
#include "testing/fooddb.h"

namespace {

void PrintResults(const char* label,
                  const std::vector<dash::core::SearchResult>& results) {
  std::printf("%s\n", label);
  if (results.empty()) std::printf("  (none)\n");
  for (const auto& r : results) {
    std::printf("  %-55s score=%.4f (%llu words)\n", r.url.c_str(), r.score,
                static_cast<unsigned long long>(r.size_words));
  }
}

}  // namespace

int main() {
  using namespace dash;

  webapp::WebAppInfo app = testing::MakeSearchApp();

  // --- 1. Initial crawl. ---
  core::UpdatableIndex updatable(testing::MakeFoodDb(), app.query);
  std::printf("Initial crawl: %zu fragments\n", updatable.fragment_count());
  auto serve = [&app, &updatable] {
    return core::DashEngine::FromParts(app, updatable.CopyBuild());
  };

  PrintResults("Top-2 for \"burger\" before updates:",
               serve().Search({"burger"}, 2, 20));

  // --- 2. Live updates. ---
  std::printf("\nApplying updates:\n");
  std::printf("  + comment 207 on Burger Queen (\"best burger downtown\")\n");
  updatable.Insert("comment", {207, 1, 132, "Best burger downtown", "03/12"});
  std::printf("  + restaurant 8: Saigon Bowl (Vietnamese, $11)\n");
  updatable.Insert("restaurant", {8, "Saigon Bowl", "Vietnamese", 11, 4.6});
  std::printf("  - comment 205 (\"Thai burger\") removed\n");
  updatable.Delete("comment", {205, 6, 180, "Thai burger", "08/11"});
  std::printf("Fragments recomputed: %zu of %zu total — the update cost\n",
              updatable.fragments_recomputed(), updatable.fragment_count());

  PrintResults("\nTop-3 for \"burger\" after updates:",
               serve().Search({"burger"}, 3, 20));

  // --- 3. Persist and reload. ---
  const std::string path = "/tmp/dash_fooddb.idx";
  core::DashEngine fresh = serve();
  core::SaveEngineFile(fresh, path);
  std::printf("\nIndex saved to %s; reloading...\n", path.c_str());
  core::DashEngine loaded = core::LoadEngineFile(path);
  PrintResults("Top-3 for \"burger\" from the reloaded index:",
               loaded.Search({"burger"}, 3, 20));
  return 0;
}
