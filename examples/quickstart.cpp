// Quickstart: the paper's running example end to end.
//
// Builds the fooddb database (Figure 2), the Search application (Figure 3),
// lets Dash crawl it with the integrated MapReduce algorithm, and runs the
// Example 7 search: keyword "burger", k=2, size threshold s=20.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/dash_engine.h"
#include "testing/fooddb.h"
#include "webapp/app_runtime.h"

int main() {
  using namespace dash;

  // 1. The database and the web application under analysis.
  db::Database db = testing::MakeFoodDb();
  webapp::WebAppInfo app = testing::MakeSearchApp();
  std::printf("Application: %s at %s\n", app.name.c_str(), app.uri.c_str());
  std::printf("Recovered PSJ query:\n  %s\n\n", app.query.ToString().c_str());

  // 2. Database crawling + fragment indexing (Section V, integrated
  //    algorithm on the simulated MapReduce cluster).
  core::BuildOptions options;
  options.algorithm = core::CrawlAlgorithm::kIntegrated;
  core::DashEngine engine = core::DashEngine::Build(db, app, options);

  std::printf("Fragment index: %zu fragments, %zu keywords, %zu postings\n",
              engine.catalog().size(), engine.index().keyword_count(),
              engine.index().posting_count());
  std::printf("Fragment graph: %zu nodes, %zu edges (Figure 9)\n",
              engine.graph().node_count(), engine.graph().edge_count());
  for (const core::CrawlPhase& phase : engine.crawl_phases()) {
    std::printf("  crawl phase %-8s: %s\n", phase.name.c_str(),
                phase.metrics.ToString().c_str());
  }

  // 3. Top-k search (Section VI, Example 7): keyword "burger", k=2, s=20.
  std::printf("\nTop-2 db-pages for \"burger\" (s = 20 words):\n");
  std::vector<core::SearchResult> results = engine.Search({"burger"}, 2, 20);
  for (const core::SearchResult& r : results) {
    std::printf("  %-55s score=%.4f size=%llu words (%zu fragments)\n",
                r.url.c_str(), r.score,
                static_cast<unsigned long long>(r.size_words),
                r.fragments.size());
  }

  // 4. Execute the top suggestion through the (forward) application to
  //    show the actual db-page the user would get — Figure 1's table.
  if (!results.empty()) {
    webapp::WebApplication runtime(db, app);
    std::printf("\nExecuting %s:\n%s", results[0].url.c_str(),
                runtime.HandleRequest(webapp::ParseUrl(results[0].url))
                    .c_str());
  }
  return 0;
}
