// Restaurant-guide scenario: a larger synthetic restaurant database in the
// style of the paper's motivating example, searched from the command line.
//
// Compares what the user gets from the three systems the paper discusses:
//   1. Dash (fragment index + top-k URL suggestions),
//   2. the DISCOVER-style relational keyword search of Section II,
//   3. the whole-page engine of Section IV (the intuitive approach).
//
//   $ ./restaurant_search burger            # keyword(s) to search
//   $ ./restaurant_search -k 5 -s 50 thai curry
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/page_engine.h"
#include "baseline/rdb_keyword_search.h"
#include "core/dash_engine.h"
#include "sql/parser.h"
#include "util/random.h"

namespace {

using namespace dash;

// Deterministic synthetic restaurant database: 120 restaurants over 8
// cuisines with customer comments, mirroring fooddb's schema.
db::Database MakeGuideDb() {
  using db::Schema;
  using db::Table;
  using db::Value;
  using db::ValueType;

  const char* kCuisines[] = {"American", "Thai",    "Italian", "Mexican",
                             "Japanese", "Indian",  "French",  "Greek"};
  const char* kNameParts[] = {"Golden", "Blue",   "Royal", "Happy",
                              "Spicy",  "Little", "Grand", "Rustic"};
  const char* kNameKinds[] = {"Kitchen", "Table", "Garden", "Corner",
                              "House",   "Grill", "Bistro", "Cafe"};
  const char* kWords[] = {"amazing", "burger",  "noodles", "curry",  "pasta",
                          "tacos",   "sushi",   "tandoori", "crepes", "gyros",
                          "friendly", "slow",   "fresh",   "stale",  "cozy",
                          "loud",    "perfect", "bland",   "spicy",  "crispy"};
  const char* kUsers[] = {"David", "Ben", "Bill", "James", "Alan",
                          "Carol", "Dana", "Erin"};

  util::SplitMix64 rng(2012);

  Table restaurant("restaurant",
                   Schema({{"restaurant", "rid", ValueType::kInt},
                           {"restaurant", "name", ValueType::kString},
                           {"restaurant", "cuisine", ValueType::kString},
                           {"restaurant", "budget", ValueType::kInt},
                           {"restaurant", "rate", ValueType::kDouble}}));
  Table comment("comment", Schema({{"comment", "cid", ValueType::kInt},
                                   {"comment", "rid", ValueType::kInt},
                                   {"comment", "uid", ValueType::kInt},
                                   {"comment", "comment", ValueType::kString},
                                   {"comment", "date", ValueType::kString}}));
  Table customer("customer",
                 Schema({{"customer", "uid", ValueType::kInt},
                         {"customer", "uname", ValueType::kString}}));

  for (int u = 0; u < 8; ++u) {
    customer.AddRow({u, kUsers[u]});
  }
  std::int64_t next_cid = 0;
  for (int r = 0; r < 120; ++r) {
    std::string name = std::string(kNameParts[rng.Below(8)]) + " " +
                       kNameKinds[rng.Below(8)];
    restaurant.AddRow({r, name, kCuisines[rng.Below(8)],
                       rng.Range(5, 40),
                       static_cast<double>(rng.Range(10, 50)) / 10.0});
    std::int64_t comments = rng.Range(0, 4);
    for (std::int64_t c = 0; c < comments; ++c) {
      std::string text = std::string(kWords[rng.Below(20)]) + " " +
                         kWords[rng.Below(20)] + " " + kWords[rng.Below(20)];
      char date[8];
      std::snprintf(date, sizeof(date), "%02lld/%02lld",
                    static_cast<long long>(rng.Range(1, 12)),
                    static_cast<long long>(rng.Range(10, 12)));
      comment.AddRow({next_cid++, r, rng.Range(0, 7), text, date});
    }
  }

  db::Database database;
  database.AddTable(std::move(restaurant));
  database.AddTable(std::move(comment));
  database.AddTable(std::move(customer));
  database.AddForeignKey({"comment", "rid", "restaurant", "rid"});
  database.AddForeignKey({"comment", "uid", "customer", "uid"});
  return database;
}

webapp::WebAppInfo MakeGuideApp() {
  webapp::WebAppInfo app;
  app.name = "Guide";
  app.uri = "www.cityguide.example/Guide";
  app.query = sql::Parse(
      "SELECT name, budget, rate, comment, uname, date "
      "FROM restaurant LEFT JOIN (comment JOIN customer) "
      "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max");
  app.codec = webapp::QueryStringCodec(
      {{"c", "cuisine"}, {"l", "min"}, {"u", "max"}});
  return app;
}

}  // namespace

int main(int argc, char** argv) {
  int k = 3;
  std::uint64_t s = 30;
  std::vector<std::string> keywords;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-k") == 0 && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "-s") == 0 && i + 1 < argc) {
      s = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      keywords.emplace_back(argv[i]);
    }
  }
  if (keywords.empty()) keywords = {"burger"};

  db::Database db = MakeGuideDb();
  webapp::WebAppInfo app = MakeGuideApp();

  std::printf("City guide database: %zu restaurants, %zu comments\n",
              db.table("restaurant").row_count(),
              db.table("comment").row_count());

  // --- Dash ---
  core::DashEngine engine = core::DashEngine::Build(db, app);
  std::printf("\n[Dash] %zu fragments, %zu graph edges; top-%d (s=%llu):\n",
              engine.catalog().size(), engine.graph().edge_count(), k,
              static_cast<unsigned long long>(s));
  auto results = engine.Search(keywords, k, s);
  if (results.empty()) std::printf("  (no relevant db-pages)\n");
  for (const auto& r : results) {
    std::printf("  %-60s score=%.4f (%llu words)\n", r.url.c_str(), r.score,
                static_cast<unsigned long long>(r.size_words));
  }

  // --- Relational keyword search baseline ---
  auto joined = baseline::RelationalKeywordSearch(db, keywords);
  std::printf("\n[DISCOVER-style baseline] %zu joined record results; "
              "first 3:\n", joined.size());
  for (std::size_t i = 0; i < joined.size() && i < 3; ++i) {
    std::printf("  %s\n", joined[i].ToString(db).c_str());
  }

  // --- Whole-page baseline ---
  baseline::PageEngine pages(db, app);
  auto page_results = pages.Search(keywords, k);
  std::printf("\n[Whole-page baseline] %zu materialized pages "
              "(index %zu bytes vs Dash %zu); top-%d:\n",
              pages.page_count(), pages.IndexSizeBytes(),
              engine.index().SizeBytes(), k);
  for (const auto& r : page_results) {
    std::printf("  %-60s score=%.4f\n", r.url.c_str(), r.score);
  }
  std::printf("  redundancy among top-%d: %.0f%%\n", k,
              100.0 * baseline::PageEngine::RedundantFraction(page_results));
  return 0;
}
