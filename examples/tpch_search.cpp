// TPC-H scenario: the paper's evaluation workload as a runnable demo.
//
// Generates the small TPC-H-style dataset, runs both crawl algorithms for
// application query Q2 (Table III), prints their per-phase MapReduce
// metrics side by side, builds the fragment graph, and runs cold/hot
// keyword searches.
//
//   $ ./tpch_search            # small dataset
//   $ ./tpch_search medium     # larger run
#include <cstdio>
#include <cstring>
#include <string>

#include "core/dash_engine.h"
#include "sql/parser.h"
#include "tpch/tpch.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace dash;

  tpch::Scale scale = tpch::Scale::kSmall;
  if (argc > 1 && std::strcmp(argv[1], "medium") == 0) {
    scale = tpch::Scale::kMedium;
  }

  std::printf("Generating TPC-H %s dataset...\n",
              std::string(tpch::ScaleName(scale)).c_str());
  db::Database db = tpch::Generate(scale);
  for (const std::string& table : db.TableNames()) {
    std::printf("  %-10s %8zu rows  %10s\n", table.c_str(),
                db.table(table).row_count(),
                util::HumanBytes(db.table(table).PayloadBytes()).c_str());
  }

  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "warehouse.example/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec = webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});

  // Crawl with both algorithms and compare (Figure 10 in miniature).
  std::printf("\nDatabase crawling + fragment indexing (Q2):\n");
  core::DashEngine engine = [&] {
    core::BuildOptions options;
    options.algorithm = core::CrawlAlgorithm::kStepwise;
    core::DashEngine sw = core::DashEngine::Build(db, app, options);
    for (const auto& phase : sw.crawl_phases()) {
      std::printf("  %-9s %s\n", phase.name.c_str(),
                  phase.metrics.ToString().c_str());
    }
    options.algorithm = core::CrawlAlgorithm::kIntegrated;
    core::DashEngine integrated = core::DashEngine::Build(db, app, options);
    for (const auto& phase : integrated.crawl_phases()) {
      std::printf("  %-9s %s\n", phase.name.c_str(),
                  phase.metrics.ToString().c_str());
    }
    return integrated;
  }();

  std::printf("\nFragment index: %zu fragments, %zu keywords, avg %.1f "
              "keywords/fragment (Table IV columns)\n",
              engine.catalog().size(), engine.index().keyword_count(),
              engine.catalog().AverageKeywords());
  std::printf("Fragment graph: %zu edges over %zu groups, built in %.3fs\n",
              engine.graph().edge_count(), engine.graph().num_groups(),
              engine.graph().stats().build_seconds);

  // Cold vs hot keyword searches (Figure 11 in miniature).
  auto by_df = engine.index().KeywordsByDf();
  const std::string hot = by_df.front().first;
  const std::string cold = by_df.back().first;
  for (const auto& [label, keyword] :
       {std::pair<const char*, std::string>{"hot", hot}, {"cold", cold}}) {
    std::printf("\nTop-5 db-pages for %s keyword \"%s\" (s=200):\n", label,
                keyword.c_str());
    for (const auto& r : engine.Search({keyword}, 5, 200)) {
      std::printf("  %-50s score=%.6f (%llu words)\n", r.url.c_str(), r.score,
                  static_cast<unsigned long long>(r.size_words));
    }
  }
  return 0;
}
