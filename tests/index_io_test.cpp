// Index persistence tests: save/load round-trips the whole engine (app
// info, catalog, postings) and the loaded engine answers searches
// identically; malformed files are rejected with diagnostics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/index_io.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"

namespace dash::core {
namespace {

DashEngine BuildFoodDbEngine() {
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  return DashEngine::Build(dash::testing::MakeFoodDb(),
                           dash::testing::MakeSearchApp(), options);
}

TEST(TypedValue, RoundTrip) {
  for (const db::Value& v :
       {db::Value(42), db::Value(-7), db::Value(4.3), db::Value(""),
        db::Value("Ameri can\ttab"), db::Value::Null()}) {
    EXPECT_EQ(DecodeTypedValue(EncodeTypedValue(v)), v);
  }
}

TEST(TypedValue, MalformedRejected) {
  EXPECT_THROW(DecodeTypedValue(""), IndexIoError);
  EXPECT_THROW(DecodeTypedValue("x:1"), IndexIoError);
  EXPECT_THROW(DecodeTypedValue("i:abc"), IndexIoError);
  EXPECT_THROW(DecodeTypedValue("d:"), IndexIoError);
  EXPECT_THROW(DecodeTypedValue("i"), IndexIoError);
}

TEST(IndexIo, SaveLoadRoundTripsFoodDb) {
  DashEngine original = BuildFoodDbEngine();
  std::stringstream buffer;
  SaveEngine(original, buffer);
  DashEngine loaded = LoadEngine(buffer);

  EXPECT_EQ(loaded.app().name, "Search");
  EXPECT_EQ(loaded.app().uri, "www.example.com/Search");
  EXPECT_EQ(loaded.catalog().size(), original.catalog().size());
  EXPECT_EQ(loaded.index().keyword_count(), original.index().keyword_count());
  EXPECT_EQ(loaded.index().ToDebugString(loaded.catalog()),
            original.index().ToDebugString(original.catalog()));
  EXPECT_EQ(loaded.graph().edge_count(), original.graph().edge_count());

  // Keyword totals and content hashes are reconstructed by Finalize.
  for (std::size_t f = 0; f < original.catalog().size(); ++f) {
    auto handle = static_cast<FragmentHandle>(f);
    EXPECT_EQ(loaded.catalog().keyword_total(handle),
              original.catalog().keyword_total(handle));
    EXPECT_EQ(loaded.catalog().content_hash(handle),
              original.catalog().content_hash(handle));
  }
}

TEST(IndexIo, LoadedEngineSearchesIdentically) {
  DashEngine original = BuildFoodDbEngine();
  std::stringstream buffer;
  SaveEngine(original, buffer);
  DashEngine loaded = LoadEngine(buffer);

  auto a = original.Search({"burger"}, 2, 20);
  auto b = loaded.Search({"burger"}, 2, 20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].url, b[i].url);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].size_words, b[i].size_words);
  }
}

TEST(IndexIo, RoundTripsTpchWorkload) {
  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "example.com/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine original =
      DashEngine::Build(tpch::Generate(tpch::Scale::kTiny), app, options);

  std::stringstream buffer;
  SaveEngine(original, buffer);
  DashEngine loaded = LoadEngine(buffer);
  EXPECT_EQ(loaded.index().ToDebugString(loaded.catalog()),
            original.index().ToDebugString(original.catalog()));
  // Doubles (acctbal-like values survive through prices in keywords).
  EXPECT_EQ(loaded.catalog().size(), original.catalog().size());
}

TEST(IndexIo, FileRoundTrip) {
  DashEngine original = BuildFoodDbEngine();
  std::string path = ::testing::TempDir() + "/dash_index_test.idx";
  SaveEngineFile(original, path);
  DashEngine loaded = LoadEngineFile(path);
  EXPECT_EQ(loaded.catalog().size(), original.catalog().size());
  EXPECT_FALSE(loaded.Search({"burger"}, 1, 1).empty());
}

TEST(IndexIo, MissingFileThrows) {
  EXPECT_THROW(LoadEngineFile("/nonexistent/dir/index.idx"), IndexIoError);
}

TEST(IndexIo, MalformedInputsRejected) {
  auto expect_bad = [](const std::string& content) {
    std::stringstream in(content);
    EXPECT_THROW(LoadEngine(in), IndexIoError) << content;
  };
  expect_bad("");
  expect_bad("NOTDASH\t1\n");
  expect_bad("DASHIDX\t99\n");  // future version
  expect_bad("DASHIDX\t1\n");   // truncated
  expect_bad("DASHIDX\t1\napp\tx\tu\tnot sql at all\n");
  expect_bad(
      "DASHIDX\t1\n"
      "app\tA\tu\tSELECT * FROM r WHERE x = $p\n"
      "bindings\t1\nf\tp\n"
      "fragments\t1\ni:1\n"
      "keywords\t1\nw\t7:3\n");  // posting references fragment 7 of 1
}

TEST(IndexIo, TruncatedPostingsRejected) {
  DashEngine original = BuildFoodDbEngine();
  std::stringstream buffer;
  SaveEngine(original, buffer);
  std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(LoadEngine(truncated), IndexIoError);
}

}  // namespace
}  // namespace dash::core
