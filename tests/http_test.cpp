// HTTP request model tests: GET/POST equivalence for db-page generation
// (paper footnote 1).
#include <gtest/gtest.h>

#include "testing/fooddb.h"
#include "webapp/http.h"

namespace dash::webapp {
namespace {

TEST(Http, ParseUrlSplitsQueryString) {
  HttpRequest r = ParseUrl("www.example.com/Search?c=American&l=10&u=15");
  EXPECT_EQ(r.method, HttpMethod::kGet);
  EXPECT_EQ(r.path, "www.example.com/Search");
  EXPECT_EQ(r.query_string, "c=American&l=10&u=15");
  EXPECT_EQ(r.EffectiveQueryString(), "c=American&l=10&u=15");
}

TEST(Http, ParseUrlWithoutQuery) {
  HttpRequest r = ParseUrl("www.example.com/Search");
  EXPECT_EQ(r.path, "www.example.com/Search");
  EXPECT_TRUE(r.query_string.empty());
}

TEST(Http, PostCarriesQueryInBody) {
  HttpRequest get = ParseUrl("www.example.com/Search?c=Thai&l=10&u=10");
  HttpRequest post = AsPost(get);
  EXPECT_EQ(post.method, HttpMethod::kPost);
  EXPECT_EQ(post.path, get.path);
  EXPECT_TRUE(post.query_string.empty());
  EXPECT_EQ(post.body, "c=Thai&l=10&u=10");
  EXPECT_EQ(post.EffectiveQueryString(), get.EffectiveQueryString());
}

TEST(Http, ResolveParamsGetAndPostAgree) {
  WebAppInfo app = dash::testing::MakeSearchApp();
  HttpRequest get = ParseUrl("www.example.com/Search?c=American&l=10&u=15");
  auto get_params = ResolveParams(app, get);
  auto post_params = ResolveParams(app, AsPost(get));
  EXPECT_EQ(get_params, post_params);
  EXPECT_EQ(get_params.at("cuisine"), "American");
  EXPECT_EQ(get_params.at("min"), "10");
  EXPECT_EQ(get_params.at("max"), "15");
}

TEST(Http, RoundTripThroughUrlFor) {
  WebAppInfo app = dash::testing::MakeSearchApp();
  std::map<std::string, std::string> params = {
      {"cuisine", "Thai"}, {"min", "10"}, {"max", "10"}};
  HttpRequest r = ParseUrl(app.UrlFor(params));
  EXPECT_EQ(ResolveParams(app, r), params);
}

}  // namespace
}  // namespace dash::webapp
