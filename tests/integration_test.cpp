// End-to-end integration: servlet source -> analysis -> MapReduce crawl ->
// fragment index + graph -> top-k search -> URLs, on both fooddb and the
// TPC-H workloads, across all three crawl algorithms.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dash_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"
#include "webapp/servlet_analyzer.h"

namespace dash::core {
namespace {

class EndToEndTest : public ::testing::TestWithParam<CrawlAlgorithm> {};

TEST_P(EndToEndTest, FoodDbBurgerSearch) {
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions options;
  options.algorithm = GetParam();
  DashEngine engine =
      DashEngine::Build(db, dash::testing::MakeSearchApp(), options);

  EXPECT_EQ(engine.catalog().size(), 5u);
  EXPECT_EQ(engine.graph().edge_count(), 3u);
  if (GetParam() != CrawlAlgorithm::kReference) {
    EXPECT_EQ(engine.crawl_phases().size(), 3u);
  }

  auto results = engine.Search({"burger"}, 2, 20);
  ASSERT_EQ(results.size(), 2u);
  std::vector<std::string> urls = {results[0].url, results[1].url};
  std::sort(urls.begin(), urls.end());
  EXPECT_EQ(urls[0], "www.example.com/Search?c=American&l=10&u=12");
  EXPECT_EQ(urls[1], "www.example.com/Search?c=Thai&l=10&u=10");
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, EndToEndTest,
    ::testing::Values(CrawlAlgorithm::kReference, CrawlAlgorithm::kStepwise,
                      CrawlAlgorithm::kIntegrated),
    [](const ::testing::TestParamInfo<CrawlAlgorithm>& info) {
      return std::string(CrawlAlgorithmName(info.param));
    });

// The full pipeline the paper's abstract describes: start from the servlet
// SOURCE CODE, never from a hand-built query.
TEST(EndToEnd, FromServletSourceToUrls) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = webapp::AnalyzeServlet(
      webapp::ExampleSearchServletSource(), "Search", "www.example.com/Search");
  DashEngine engine = DashEngine::Build(db, std::move(app));

  // Figure 3's printed SQL inner-joins customer, so the comment-less
  // Wandy's row (rid 3) drops out: (American,12) has 14 keywords, not 17.
  auto results = engine.Search({"fries"}, 1, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=American&l=12&u=12");
  EXPECT_EQ(results[0].size_words, 14u);
}

// Round-trip property: every result URL parses back into parameters that
// regenerate a page containing every result fragment's rows.
TEST(EndToEnd, ResultUrlsRoundTripThroughThePage) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine = DashEngine::Build(db, app, options);
  Crawler crawler(db, app.query);

  for (const auto& r : engine.Search({"burger"}, 5, 20)) {
    // Parse the query string back (reverse of reverse parsing).
    auto query_start = r.url.find('?');
    ASSERT_NE(query_start, std::string::npos);
    auto params_text = app.codec.Parse(r.url.substr(query_start + 1));
    std::map<std::string, db::Value> params;
    params["cuisine"] = db::Value(params_text.at("cuisine"));
    params["min"] = db::Value::Parse(params_text.at("min"),
                                     db::ValueType::kInt);
    params["max"] = db::Value::Parse(params_text.at("max"),
                                     db::ValueType::kInt);
    db::Table page = crawler.EvalPage(params);

    // The page's row count equals the sum over the result's fragments.
    std::size_t expected = 0;
    for (const Fragment& f : crawler.DeriveFragments()) {
      auto handle = engine.catalog().Find(f.id);
      ASSERT_TRUE(handle.has_value());
      if (std::find(r.fragments.begin(), r.fragments.end(), *handle) !=
          r.fragments.end()) {
        expected += f.rows.size();
      }
    }
    EXPECT_EQ(page.row_count(), expected) << r.url;
  }
}

TEST(EndToEnd, TpchQ1PipelineWithMapReduce) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app;
  app.name = "Q1";
  app.uri = "example.com/q1";
  app.query = sql::Parse(
      "SELECT * FROM (region JOIN nation) JOIN customer "
      "WHERE region.rid = $r AND acctbal BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});

  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kIntegrated;
  DashEngine engine = DashEngine::Build(db, app, options);

  // One fragment per (region, acctbal) combination; regions are equality
  // groups.
  EXPECT_EQ(engine.graph().num_groups(), 5u);
  EXPECT_EQ(engine.catalog().size(), db.table("customer").row_count());

  // Search for a nation name (projected by SELECT *).
  auto results = engine.Search({"CHINA"}, 3, 50);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_NE(r.url.find("example.com/q1?r="), std::string::npos);
  }
}

TEST(EndToEnd, MultipleEnginesShareOneDatabase) {
  // Extension (paper Section VIII item 2): several web applications over
  // one database, each with its own engine namespace.
  db::Database db = dash::testing::MakeFoodDb();
  DashEngine search =
      DashEngine::Build(db, dash::testing::MakeSearchApp());

  webapp::WebAppInfo by_rate;
  by_rate.name = "TopRated";
  by_rate.uri = "www.example.com/TopRated";
  by_rate.query = sql::Parse(
      "SELECT name, rate FROM restaurant WHERE rate >= $minrate");
  by_rate.codec = webapp::QueryStringCodec(
      std::vector<webapp::ParamBinding>{{"min", "minrate"}});
  DashEngine rated = DashEngine::Build(db, by_rate);

  auto r1 = search.Search({"wandy's"}, 1, 1);
  auto r2 = rated.Search({"wandy's"}, 1, 1);
  ASSERT_FALSE(r1.empty());
  ASSERT_FALSE(r2.empty());
  EXPECT_NE(r1[0].url, r2[0].url);
  EXPECT_NE(r2[0].url.find("TopRated?min="), std::string::npos);
}

}  // namespace
}  // namespace dash::core
