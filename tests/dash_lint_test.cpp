// dash_lint rule-catalog tests: one known-bad and one known-good fixture
// per rule, plus the escape hatch and the scanner's comment/string
// immunity. Fixtures are embedded as raw strings and pushed through
// LintFile with a path chosen to make the rule applicable — exactly how
// the CTest `lint` run sees real files.
#include "dash_lint_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dash::lint {
namespace {

std::vector<std::string> Rules(const Report& report) {
  std::vector<std::string> ids;
  ids.reserve(report.violations.size());
  for (const Diagnostic& d : report.violations) ids.push_back(d.rule);
  return ids;
}

bool HasRule(const Report& report, const std::string& rule) {
  const std::vector<std::string> ids = Rules(report);
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

// ---------------------------------------------------------------- raw-thread

TEST(RawThread, FlagsStdThreadInCore) {
  Report r = LintFile("src/core/scatter.cc", R"cc(
#include <thread>
namespace dash::core {
void Go() { std::thread t([] {}); t.join(); }
}  // namespace dash::core
)cc");
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "raw-thread");
  EXPECT_EQ(r.violations[0].line, 4);
  EXPECT_EQ(r.violations[0].file, "src/core/scatter.cc");
}

TEST(RawThread, FlagsStdAsyncAndJthread) {
  Report r = LintFile("src/baseline/x.cc", R"cc(
auto f = std::async(std::launch::async, [] { return 1; });
std::jthread j([] {});
)cc");
  EXPECT_EQ(Rules(r), (std::vector<std::string>{"raw-thread", "raw-thread"}));
}

TEST(RawThread, ThreadPoolImplementationIsExempt) {
  const char* body = R"cc(
#include <thread>
namespace dash::util {
std::vector<std::thread> workers_;  // dash-lint: allow(global-state)
}
)cc";
  EXPECT_FALSE(HasRule(LintFile("src/util/thread_pool.cc", body),
                       "raw-thread"));
  EXPECT_FALSE(HasRule(LintFile("src/util/thread_pool.h", body),
                       "raw-thread"));
  EXPECT_TRUE(HasRule(LintFile("src/util/other.cc", body), "raw-thread"));
}

TEST(RawThread, PoolUsageIsClean) {
  Report r = LintFile("src/core/scatter.cc", R"cc(
#include "util/thread_pool.h"
namespace dash::core {
void Go(util::ThreadPool& pool) {
  pool.ParallelFor(8, [](std::size_t) {});
}
}  // namespace dash::core
)cc");
  EXPECT_TRUE(r.violations.empty());
}

// ------------------------------------------------------------ nondeterminism

TEST(Nondeterminism, FlagsEntropyAndWallClockInCore) {
  Report r = LintFile("src/core/ranker.cc", R"cc(
namespace dash::core {
int A() { return rand(); }
long B() { return time(nullptr); }
int C() { std::random_device rd; return rd(); }
auto D() { return std::chrono::system_clock::now(); }
}
)cc");
  EXPECT_EQ(Rules(r),
            (std::vector<std::string>{"nondeterminism", "nondeterminism",
                                      "nondeterminism", "nondeterminism"}));
  EXPECT_EQ(r.violations[0].line, 3);
}

TEST(Nondeterminism, AppliesToMapreduceButNotBaseline) {
  const char* body = "int x = rand();\n";
  EXPECT_TRUE(HasRule(LintFile("src/mapreduce/cluster.cc", body),
                      "nondeterminism"));
  // The surfacing baseline legitimately models wasteful random probing.
  EXPECT_FALSE(HasRule(LintFile("src/baseline/surfacing.cc", body),
                       "nondeterminism"));
}

TEST(Nondeterminism, SplitMixAndIdentifiersAreClean) {
  Report r = LintFile("src/core/gen.cc", R"cc(
#include "util/random.h"
namespace dash::core {
std::uint64_t Draw(util::SplitMix64& rng) { return rng.Next(); }
// `operand(x)` and `wall_time(y)` must not trip the word matcher.
int operand(int x);
double wall_time(int y);
}
)cc");
  EXPECT_TRUE(r.violations.empty());
}

// ------------------------------------------------------------ unordered-iter

TEST(UnorderedIter, FlagsHashOrderIterationWithoutSort) {
  Report r = LintFile("src/core/stats.cc", R"cc(
namespace dash::core {
std::unordered_map<std::string, int> counts;  // dash-lint: allow(global-state)
std::vector<std::string> Dump() {
  std::vector<std::string> out;
  for (const auto& [k, v] : counts) {
    out.push_back(k);
  }
  return out;
}
}
)cc");
  ASSERT_TRUE(HasRule(r, "unordered-iter"));
}

TEST(UnorderedIter, CanonicalSortNearbyIsClean) {
  Report r = LintFile("src/core/stats.cc", R"cc(
namespace dash::core {
std::vector<std::string> Dump(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> out;
  for (const auto& [k, v] : counts) {
    out.push_back(k);
  }
  std::sort(out.begin(), out.end());
  return out;
}
}
)cc");
  EXPECT_FALSE(HasRule(r, "unordered-iter"));
}

TEST(UnorderedIter, OnlyAppliesToCore) {
  const char* body = R"cc(
std::unordered_set<int> seen;  // dash-lint: allow(global-state)
void F() {
  for (int v : seen) { (void)v; }
}
)cc";
  EXPECT_TRUE(HasRule(LintFile("src/core/x.cc", body), "unordered-iter"));
  EXPECT_FALSE(HasRule(LintFile("src/db/x.cc", body), "unordered-iter"));
}

// -------------------------------------------------------------- global-state

TEST(GlobalState, FlagsUnguardedNamespaceScopeMutable) {
  Report r = LintFile("src/util/registry.cc", R"cc(
namespace dash::util {
namespace {
int g_calls = 0;
std::vector<std::string> g_names;
}  // namespace
}  // namespace dash::util
)cc");
  EXPECT_EQ(Rules(r),
            (std::vector<std::string>{"global-state", "global-state"}));
  EXPECT_EQ(r.violations[0].line, 4);
  EXPECT_EQ(r.violations[1].line, 5);
}

TEST(GlobalState, GuardedConstAtomicAndMutexAreClean) {
  Report r = LintFile("src/util/registry.cc", R"cc(
#include "util/mutex.h"
#include "util/thread_annotations.h"
namespace dash::util {
namespace {
Mutex g_mutex;
std::vector<std::string> g_names DASH_GUARDED_BY(g_mutex);
std::atomic<int> g_calls{0};
const int kLimit = 8;
constexpr char kName[] = "dash";
}  // namespace
}  // namespace dash::util
)cc");
  EXPECT_TRUE(r.violations.empty());
}

TEST(GlobalState, FunctionLocalsAndMembersAreNotNamespaceScope) {
  Report r = LintFile("src/util/registry.cc", R"cc(
namespace dash::util {
class Registry {
  int count_ = 0;
  std::vector<int> items_;
};
int Count() {
  static int memo = -1;
  int local = 3;
  return memo + local;
}
}  // namespace dash::util
)cc");
  EXPECT_TRUE(r.violations.empty());
}

TEST(GlobalState, BracedInitializerDoesNotHideTheDeclaration) {
  Report r = LintFile("src/util/registry.cc", R"cc(
namespace dash::util {
std::vector<std::pair<int, int>> g_pairs = {{1, 2}, {3, 4}};
}
)cc");
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "global-state");
  EXPECT_EQ(r.violations[0].line, 3);
}

// ---------------------------------------------------------- iostream-hotpath

TEST(IostreamHotpath, FlagsIncludeAndConsoleStreams) {
  Report r = LintFile("src/db/table.cc", R"cc(
#include <iostream>
namespace dash::db {
void Dump() { std::cout << "x"; std::cerr << "y"; }
}
)cc");
  EXPECT_EQ(Rules(r),
            (std::vector<std::string>{"iostream-hotpath", "iostream-hotpath",
                                      "iostream-hotpath"}));
}

TEST(IostreamHotpath, SerializationStreamsAndOtherModulesAreClean) {
  // <ostream>-based save/load APIs are the sanctioned pattern.
  EXPECT_TRUE(LintFile("src/core/index_io.cc", R"cc(
#include <ostream>
#include <istream>
namespace dash::core {
void Save(std::ostream& out);
}
)cc").violations.empty());
  // util may talk to stderr (logging lives there).
  EXPECT_TRUE(LintFile("src/util/logging.cc",
                       "#include <iostream>\n").violations.empty());
}

// --------------------------------------------------------------- layer-cycle

TEST(LayerCycle, FlagsUpwardInclude) {
  Report r = LintFile("src/db/table.cc", R"cc(
#include "core/dash_engine.h"
#include "util/mutex.h"
)cc");
  ASSERT_EQ(Rules(r), (std::vector<std::string>{"layer-cycle"}));
  EXPECT_EQ(r.violations[0].line, 2);
}

TEST(LayerCycle, DownwardAndSameLayerIncludesAreClean) {
  Report r = LintFile("src/core/dash_engine.cc", R"cc(
#include "core/index_snapshot.h"
#include "db/database.h"
#include "mapreduce/mr_crawl.h"
#include "sql/parser.h"
#include "util/thread_pool.h"
#include "webapp/query_string.h"
#include <vector>
)cc");
  EXPECT_FALSE(HasRule(r, "layer-cycle"));
}

TEST(LayerCycle, SiblingLayersMayNotIncludeEachOther) {
  // sql and tpch share a rank; neither direction is allowed.
  EXPECT_TRUE(HasRule(LintFile("src/sql/parser.cc",
                               "#include \"tpch/tpch.h\"\n"),
                      "layer-cycle"));
  EXPECT_TRUE(HasRule(LintFile("src/tpch/tpch.cc",
                               "#include \"sql/parser.h\"\n"),
                      "layer-cycle"));
}

TEST(LayerCycle, ToolsSitAboveEverything) {
  Report r = LintFile("tools/dash_fuzz.cc", R"cc(
#include "testing/oracles.h"
#include "core/dash_engine.h"
#include "dash_lint_lib.h"
)cc");
  EXPECT_FALSE(HasRule(r, "layer-cycle"));
}

TEST(LayerCycle, NonLayerTargetsAndSystemHeadersAreIgnored) {
  Report r = LintFile("src/db/table.cc", R"cc(
#include <core/fake.h>
#include "third_party/core.h"
#include "sibling_header.h"
)cc");
  EXPECT_FALSE(HasRule(r, "layer-cycle"));
}

// ------------------------------------------------------------- escape hatch

TEST(EscapeHatch, SameLineAndPreviousLineAllowSuppress) {
  Report r = LintFile("src/core/x.cc", R"cc(
namespace dash::core {
int A() { return rand(); }  // dash-lint: allow(nondeterminism)
// dash-lint: allow(nondeterminism)
int B() { return rand(); }
int C() { return rand(); }
}
)cc");
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].line, 6);
  ASSERT_EQ(r.allowed.size(), 2u);
  EXPECT_EQ(r.allowed[0].rule, "nondeterminism");
  EXPECT_EQ(r.allowed[0].line, 3);
  EXPECT_EQ(r.allowed[1].line, 5);
}

TEST(EscapeHatch, AllowOnlySuppressesTheNamedRule) {
  Report r = LintFile("src/core/x.cc", R"cc(
#include <thread>
namespace dash::core {
// dash-lint: allow(nondeterminism)
std::thread g_worker;
}
)cc");
  // The allow names the wrong rule: raw-thread and global-state still fire.
  EXPECT_TRUE(HasRule(r, "raw-thread"));
  EXPECT_TRUE(HasRule(r, "global-state"));
  EXPECT_TRUE(r.allowed.empty());
}

// ------------------------------------------------------------- scanner core

TEST(Scanner, CommentsAndStringsAreInvisible) {
  Report r = LintFile("src/core/x.cc", R"cc(
namespace dash::core {
// std::thread in a comment is fine, as is rand() here.
/* block comment: std::async, std::cout, time(nullptr) */
const char* kDoc = "std::thread rand() std::cout";
}
)cc");
  EXPECT_TRUE(r.violations.empty());
}

TEST(Scanner, DiagnosticFormatIsMachineReadable) {
  // (global-state skips declarations with parenthesised initializers, so
  // only nondeterminism fires here.)
  Report r = LintFile("src/core/x.cc", "int y = rand();\n");
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].ToString().rfind("src/core/x.cc:1: ", 0), 0u);
}

TEST(Scanner, RuleCatalogNamesEveryRule) {
  std::string catalog = RuleCatalog();
  for (const char* rule : {"raw-thread", "nondeterminism", "unordered-iter",
                           "global-state", "iostream-hotpath",
                           "layer-cycle"}) {
    EXPECT_NE(catalog.find(rule), std::string::npos) << rule;
  }
}

// The tree itself must be clean — the same invariant the `lint` CTest
// enforces, checked here against the source tree when available.
TEST(Tree, RepositoryIsLintClean) {
  Report r = LintTree(DASH_SOURCE_DIR);
  for (const Diagnostic& d : r.violations) {
    ADD_FAILURE() << d.ToString();
  }
  EXPECT_GT(r.files_scanned, 50u);
}

}  // namespace
}  // namespace dash::lint
