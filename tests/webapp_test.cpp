// Tests for query-string parsing / reverse parsing and the servlet
// analyzer (paper Section III, Figure 3).
#include <gtest/gtest.h>

#include "testing/fooddb.h"
#include "webapp/query_string.h"
#include "webapp/servlet_analyzer.h"

namespace dash::webapp {
namespace {

QueryStringCodec SearchCodec() {
  return QueryStringCodec({{"c", "cuisine"}, {"l", "min"}, {"u", "max"}});
}

TEST(QueryStringCodec, ParsesExample1) {
  auto params = SearchCodec().Parse("c=American&l=10&u=15");
  EXPECT_EQ(params.at("cuisine"), "American");
  EXPECT_EQ(params.at("min"), "10");
  EXPECT_EQ(params.at("max"), "15");
}

TEST(QueryStringCodec, RendersInBindingOrder) {
  std::map<std::string, std::string> params = {
      {"cuisine", "American"}, {"min", "10"}, {"max", "12"}};
  EXPECT_EQ(SearchCodec().Render(params), "c=American&l=10&u=12");
}

TEST(QueryStringCodec, RoundTrip) {
  std::map<std::string, std::string> params = {
      {"cuisine", "Middle East"}, {"min", "9"}, {"max", "20"}};
  QueryStringCodec codec = SearchCodec();
  EXPECT_EQ(codec.Parse(codec.Render(params)), params);
}

TEST(QueryStringCodec, ValuesAreUrlEncoded) {
  std::map<std::string, std::string> params = {
      {"cuisine", "a&b=c"}, {"min", "1"}, {"max", "2"}};
  QueryStringCodec codec = SearchCodec();
  std::string qs = codec.Render(params);
  EXPECT_EQ(qs.find("a&b"), std::string::npos);  // escaped
  EXPECT_EQ(codec.Parse(qs), params);
}

TEST(QueryStringCodec, UnknownFieldsIgnored) {
  auto params = SearchCodec().Parse("c=Thai&tracking=xyz&l=1&u=2");
  EXPECT_EQ(params.size(), 3u);
}

TEST(QueryStringCodec, MissingParameterThrowsOnRender) {
  EXPECT_THROW(SearchCodec().Render({{"cuisine", "Thai"}}),
               std::runtime_error);
}

TEST(QueryStringCodec, DuplicateFieldThrowsOnParse) {
  EXPECT_THROW(SearchCodec().Parse("c=a&c=b&l=1&u=2"), std::runtime_error);
}

TEST(QueryStringCodec, DuplicateBindingRejected) {
  EXPECT_THROW(QueryStringCodec({{"c", "x"}, {"c", "y"}}), std::runtime_error);
  EXPECT_THROW(QueryStringCodec({{"a", "x"}, {"b", "x"}}), std::runtime_error);
}

TEST(WebAppInfo, UrlForAppendsQueryString) {
  WebAppInfo app = dash::testing::MakeSearchApp();
  std::string url = app.UrlFor(
      {{"cuisine", "American"}, {"min", "10"}, {"max", "15"}});
  EXPECT_EQ(url, "www.example.com/Search?c=American&l=10&u=15");
}

// ---------- Servlet analysis (reverse engineering, Example 2) ----------

TEST(ServletAnalyzer, RecoversFigure3Search) {
  WebAppInfo app = AnalyzeServlet(ExampleSearchServletSource(), "Search",
                                  "www.example.com/Search");
  // Bindings c->cuisine, l->min, u->max in source order.
  ASSERT_EQ(app.codec.bindings().size(), 3u);
  EXPECT_EQ(app.codec.bindings()[0].url_field, "c");
  EXPECT_EQ(app.codec.bindings()[0].parameter, "cuisine");
  EXPECT_EQ(app.codec.bindings()[1].url_field, "l");
  EXPECT_EQ(app.codec.bindings()[1].parameter, "min");
  EXPECT_EQ(app.codec.bindings()[2].url_field, "u");
  EXPECT_EQ(app.codec.bindings()[2].parameter, "max");

  // The PSJ query: projection, join tree, predicates.
  EXPECT_EQ(app.query.projection,
            (std::vector<std::string>{"name", "budget", "rate", "comment",
                                      "uname", "date"}));
  EXPECT_EQ(app.query.Relations(),
            (std::vector<std::string>{"restaurant", "comment", "customer"}));
  ASSERT_EQ(app.query.where.size(), 3u);
  EXPECT_EQ(app.query.where[0].column, "cuisine");
  EXPECT_EQ(app.query.where[0].parameter, "cuisine");
  EXPECT_EQ(app.query.where[1].parameter, "min");
  EXPECT_EQ(app.query.where[2].parameter, "max");
}

TEST(ServletAnalyzer, DoubleQuotedJavaSource) {
  constexpr std::string_view source = R"(
    String region = req.getParameter("r");
    String lo = req.getParameter("lo");
    String hi = req.getParameter("hi");
    String q = "SELECT * FROM region JOIN nation WHERE rid = " + region +
               " AND nid BETWEEN " + lo + " AND " + hi;
  )";
  WebAppInfo app = AnalyzeServlet(source, "App", "example.com/App");
  EXPECT_EQ(app.query.Relations(),
            (std::vector<std::string>{"region", "nation"}));
  EXPECT_EQ(app.codec.bindings().size(), 3u);
}

TEST(ServletAnalyzer, UnusedParameterIsDroppedFromBindings) {
  constexpr std::string_view source = R"(
    String used = req.getParameter("a");
    String unused = req.getParameter("b");
    String q = "SELECT * FROM r WHERE x = " + used;
  )";
  WebAppInfo app = AnalyzeServlet(source, "App", "example.com/App");
  ASSERT_EQ(app.codec.bindings().size(), 1u);
  EXPECT_EQ(app.codec.bindings()[0].url_field, "a");
}

TEST(ServletAnalyzer, DoPostServletAnalyzesTheSame) {
  // Paper footnote 1: POST applications parse the same parameters from the
  // request body; the static analysis is method-agnostic.
  constexpr std::string_view source = R"(
    public class Search extends HttpServlet {
      public void doPost(HttpServletRequest q, HttpServletResponse p) {
        String cuisine = q.getParameter("c");
        String min = q.getParameter("l");
        String max = q.getParameter("u");
        String Q = "SELECT name, budget FROM restaurant WHERE cuisine = "
                   + cuisine + " AND budget BETWEEN " + min + " AND " + max;
        output(p, db.run(Q));
      }
    }
  )";
  WebAppInfo app = AnalyzeServlet(source, "Search", "www.example.com/Search");
  EXPECT_EQ(app.codec.bindings().size(), 3u);
  EXPECT_EQ(app.query.Relations(), (std::vector<std::string>{"restaurant"}));
  ASSERT_EQ(app.query.where.size(), 3u);
}

TEST(ServletAnalyzer, CommentsAreIgnored) {
  constexpr std::string_view source = R"(
    // String old = req.getParameter("legacy");
    /* String dead = req.getParameter("dead");
       String q0 = "SELECT * FROM wrong WHERE a = " + dead; */
    String live = req.getParameter("x");  // the real one
    String q = "SELECT * FROM r WHERE col = " + live;
  )";
  WebAppInfo app = AnalyzeServlet(source, "App", "example.com/App");
  ASSERT_EQ(app.codec.bindings().size(), 1u);
  EXPECT_EQ(app.codec.bindings()[0].url_field, "x");
  EXPECT_EQ(app.query.Relations(), (std::vector<std::string>{"r"}));
}

TEST(ServletAnalyzer, CommentMarkersInsideStringLiteralsAreNotComments) {
  // A "/*" inside a string literal must not open a comment (which would
  // blank the SQL assignment that follows).
  constexpr std::string_view source = R"(
    String v = req.getParameter("a");
    String note = "see /* the manual */ first";
    String q = "SELECT * FROM r WHERE x = " + v;  // trailing note
  )";
  WebAppInfo app = AnalyzeServlet(source, "App", "example.com/App");
  EXPECT_EQ(app.query.Relations(), (std::vector<std::string>{"r"}));
  ASSERT_EQ(app.query.where.size(), 1u);
  EXPECT_EQ(app.query.where[0].parameter, "v");
}

TEST(ServletAnalyzer, NoGetParameterFails) {
  EXPECT_THROW(AnalyzeServlet("String q = \"SELECT * FROM r\";", "A", "u"),
               AnalysisError);
}

TEST(ServletAnalyzer, NoSqlFails) {
  EXPECT_THROW(
      AnalyzeServlet("String x = req.getParameter(\"a\");", "A", "u"),
      AnalysisError);
}

TEST(ServletAnalyzer, DynamicFieldNameFails) {
  EXPECT_THROW(
      AnalyzeServlet("String x = req.getParameter(fieldVar);", "A", "u"),
      AnalysisError);
}

TEST(ServletAnalyzer, ParameterNotFlowingIntoSqlFails) {
  constexpr std::string_view source = R"(
    String x = req.getParameter("a");
    String q = "SELECT * FROM r WHERE y = " + other;
  )";
  EXPECT_THROW(AnalyzeServlet(source, "A", "u"), AnalysisError);
}

TEST(ServletAnalyzer, AnalysisMatchesHandWrittenFixture) {
  // The analyzed Figure-3 servlet and the hand-built fixture must agree on
  // everything except the join re-association documented in fooddb.h.
  WebAppInfo analyzed = AnalyzeServlet(ExampleSearchServletSource(), "Search",
                                       "www.example.com/Search");
  WebAppInfo fixture = dash::testing::MakeSearchApp();
  EXPECT_EQ(analyzed.query.projection, fixture.query.projection);
  ASSERT_EQ(analyzed.codec.bindings().size(), fixture.codec.bindings().size());
  for (std::size_t i = 0; i < fixture.codec.bindings().size(); ++i) {
    EXPECT_EQ(analyzed.codec.bindings()[i].url_field,
              fixture.codec.bindings()[i].url_field);
    EXPECT_EQ(analyzed.codec.bindings()[i].parameter,
              fixture.codec.bindings()[i].parameter);
  }
}

}  // namespace
}  // namespace dash::webapp
