// Web-application runtime tests, including the reproduction's strongest
// end-to-end property: every URL Dash suggests, when actually EXECUTED by
// the application, generates a db-page that contains the queried keywords
// and has exactly the word count the search result reported.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dash_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"
#include "util/tokenizer.h"
#include "webapp/app_runtime.h"

namespace dash::webapp {
namespace {

class AppRuntimeTest : public ::testing::Test {
 protected:
  AppRuntimeTest()
      : db_(dash::testing::MakeFoodDb()),
        app_(db_, dash::testing::MakeSearchApp()) {}

  db::Database db_;
  WebApplication app_;
};

TEST_F(AppRuntimeTest, GeneratesExample1PageP1) {
  // Example 1: c=American&l=10&u=15 -> P1 with Burger Queen + Wandy's x3.
  db::Table p1 = app_.ResultFor(
      ParseUrl("www.example.com/Search?c=American&l=10&u=15"));
  EXPECT_EQ(p1.row_count(), 4u);
  std::string page = app_.HandleRequest(
      ParseUrl("www.example.com/Search?c=American&l=10&u=15"));
  EXPECT_NE(page.find("Burger Queen"), std::string::npos);
  EXPECT_NE(page.find("Wandy's"), std::string::npos);
  EXPECT_EQ(page.find("McRonald's"), std::string::npos);
}

TEST_F(AppRuntimeTest, GeneratesExample1PageP2) {
  // P2: upper bound 20 additionally includes McRonald's.
  std::string page = app_.HandleRequest(
      ParseUrl("www.example.com/Search?c=American&l=10&u=20"));
  EXPECT_NE(page.find("McRonald's"), std::string::npos);
}

TEST_F(AppRuntimeTest, PostServesTheSamePage) {
  HttpRequest get = ParseUrl("www.example.com/Search?c=Thai&l=10&u=10");
  EXPECT_EQ(app_.HandleRequest(get), app_.HandleRequest(AsPost(get)));
}

TEST_F(AppRuntimeTest, EmptyPagesAreCounted) {
  (void)app_.ResultFor(ParseUrl("www.example.com/Search?c=French&l=1&u=2"));
  (void)app_.ResultFor(ParseUrl("www.example.com/Search?c=Thai&l=10&u=10"));
  EXPECT_EQ(app_.stats().requests, 2u);
  EXPECT_EQ(app_.stats().empty_pages, 1u);
}

TEST_F(AppRuntimeTest, ParameterTypesBindFromSchema) {
  // budget is an int column: "l=10" must bind as integer 10, not "10".
  db::Table page = app_.ResultFor(
      ParseUrl("www.example.com/Search?c=American&l=9&u=9"));
  EXPECT_EQ(page.row_count(), 1u);  // Bond's Cafe
}

TEST_F(AppRuntimeTest, MissingEqualityParameterThrows) {
  EXPECT_THROW(app_.ResultFor(ParseUrl("www.example.com/Search?l=1&u=2")),
               std::runtime_error);
}

TEST_F(AppRuntimeTest, InvalidQueryRejectedAtConstruction) {
  WebAppInfo bad = dash::testing::MakeSearchApp();
  bad.query = sql::Parse("SELECT nope FROM restaurant WHERE cuisine = $c");
  EXPECT_THROW(WebApplication(db_, bad), std::runtime_error);
}

// ---------------------------------------------------------------------
// The premise of the whole system, verified end to end: suggested URLs,
// when executed, deliver pages containing the queried keywords with
// exactly the advertised word counts.
// ---------------------------------------------------------------------

class SuggestedUrlTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SuggestedUrlTest, ExecutedUrlsContainTheKeywordsOnFoodDb) {
  db::Database db = dash::testing::MakeFoodDb();
  WebAppInfo info = dash::testing::MakeSearchApp();
  core::BuildOptions options;
  options.algorithm = core::CrawlAlgorithm::kIntegrated;
  core::DashEngine engine = core::DashEngine::Build(db, info, options);
  WebApplication runtime(db, info);

  const std::string keyword = GetParam();
  for (const auto& r : engine.Search({keyword}, 5, 20)) {
    HttpRequest request = ParseUrl(r.url);
    std::string page = runtime.HandleRequest(request);
    // The page contains the queried keyword...
    auto tokens = util::Tokenize(page);
    EXPECT_NE(std::find(tokens.begin(), tokens.end(), keyword), tokens.end())
        << r.url << " does not contain '" << keyword << "'";
    // ...and exactly as many words as the search result advertised.
    EXPECT_EQ(runtime.PageWordCount(request), r.size_words) << r.url;
  }
}

INSTANTIATE_TEST_SUITE_P(Keywords, SuggestedUrlTest,
                         ::testing::Values("burger", "fries", "coffee",
                                           "bill", "thai"));

TEST(SuggestedUrlTpch, ExecutedUrlsMatchAdvertisedSizes) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  WebAppInfo info;
  info.name = "Q2";
  info.uri = "example.com/q2";
  info.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  info.codec =
      QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  core::BuildOptions options;
  options.algorithm = core::CrawlAlgorithm::kReference;
  core::DashEngine engine = core::DashEngine::Build(db, info, options);
  WebApplication runtime(db, info);

  auto by_df = engine.index().KeywordsByDf();
  ASSERT_FALSE(by_df.empty());
  for (const auto& r : engine.Search({by_df.front().first}, 5, 150)) {
    EXPECT_EQ(runtime.PageWordCount(ParseUrl(r.url)), r.size_words) << r.url;
  }
}

}  // namespace
}  // namespace dash::webapp
