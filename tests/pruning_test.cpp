// Fragment pruning tests (paper Section VIII item 3): the crawl-scope /
// efficiency tradeoff.
#include <gtest/gtest.h>

#include "core/crawler.h"
#include "core/dash_engine.h"
#include "core/pruning.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"

namespace dash::core {
namespace {

FragmentIndexBuild FoodDbBuild() {
  db::Database db = dash::testing::MakeFoodDb();
  return Crawler(db, dash::testing::MakeSearchApp().query).BuildIndex();
}

TEST(Pruning, ThresholdZeroKeepsEverything) {
  FragmentIndexBuild build = FoodDbBuild();
  PruneStats stats;
  FragmentIndexBuild pruned = PruneFragments(build, 0, &stats);
  EXPECT_EQ(pruned.catalog.size(), build.catalog.size());
  EXPECT_EQ(stats.dropped_fragments, 0u);
  EXPECT_DOUBLE_EQ(stats.KeywordRecall(), 1.0);
  EXPECT_EQ(pruned.index.ToDebugString(pruned.catalog),
            build.index.ToDebugString(build.catalog));
}

TEST(Pruning, DropsSmallFragments) {
  // fooddb fragment sizes: 8, 8, 17, 8, 10. Threshold 10 keeps two.
  FragmentIndexBuild build = FoodDbBuild();
  PruneStats stats;
  FragmentIndexBuild pruned = PruneFragments(build, 10, &stats);
  EXPECT_EQ(pruned.catalog.size(), 2u);
  EXPECT_EQ(stats.dropped_fragments, 3u);
  EXPECT_TRUE(pruned.catalog.Find({db::Value("American"), db::Value(12)})
                  .has_value());
  EXPECT_TRUE(pruned.catalog.Find({db::Value("Thai"), db::Value(10)})
                  .has_value());
  // Keywords only present in dropped fragments are gone.
  EXPECT_EQ(pruned.index.Df("coffee"), 0u);   // lived in (American, 9)
  EXPECT_EQ(pruned.index.Df("fries"), 1u);    // lives in (American, 12)
  EXPECT_LT(stats.KeywordRecall(), 1.0);
  EXPECT_LT(stats.index_bytes_after, stats.index_bytes_before);
}

TEST(Pruning, KeptPostingsUnchanged) {
  FragmentIndexBuild build = FoodDbBuild();
  FragmentIndexBuild pruned = PruneFragments(build, 10, nullptr);
  auto postings = pruned.index.Lookup("burger");
  // (American,10) dropped (8 words); (American,12) and (Thai,10) remain.
  ASSERT_EQ(postings.size(), 2u);
  for (const Posting& p : postings) {
    EXPECT_EQ(p.occurrences, 1u);
    EXPECT_GE(pruned.catalog.keyword_total(p.fragment), 10u);
  }
}

TEST(Pruning, HandlesStayCanonical) {
  FragmentIndexBuild build = FoodDbBuild();
  FragmentIndexBuild pruned = PruneFragments(build, 9, nullptr);
  for (std::size_t f = 0; f + 1 < pruned.catalog.size(); ++f) {
    EXPECT_LT(pruned.catalog.id(static_cast<FragmentHandle>(f)),
              pruned.catalog.id(static_cast<FragmentHandle>(f + 1)));
  }
  // A graph can be built directly on the pruned catalog.
  FragmentGraph graph = FragmentGraph::Build(pruned.catalog, 1, 1);
  EXPECT_EQ(graph.node_count(), pruned.catalog.size());
}

TEST(Pruning, RecallDecreasesMonotonicallyWithThreshold) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  sql::PsjQuery query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  FragmentIndexBuild build = Crawler(db, query).BuildIndex();
  double last_recall = 1.1;
  std::size_t last_size = build.catalog.size() + 1;
  for (std::uint64_t threshold : {0, 20, 40, 80, 160}) {
    PruneStats stats;
    PruneFragments(build, threshold, &stats);
    EXPECT_LE(stats.KeywordRecall(), last_recall);
    EXPECT_LE(stats.kept_fragments, last_size);
    last_recall = stats.KeywordRecall();
    last_size = stats.kept_fragments;
  }
}

TEST(Pruning, EngineBuildOptionApplies) {
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kIntegrated;
  options.min_fragment_keywords = 10;
  DashEngine engine =
      DashEngine::Build(db, dash::testing::MakeSearchApp(), options);
  EXPECT_EQ(engine.catalog().size(), 2u);
  // Searches operate on the pruned index.
  auto results = engine.Search({"burger"}, 5, 1);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=Thai&l=10&u=10");
}

TEST(Pruning, AllFragmentsDropped) {
  FragmentIndexBuild build = FoodDbBuild();
  PruneStats stats;
  FragmentIndexBuild pruned = PruneFragments(build, 1000000, &stats);
  EXPECT_EQ(pruned.catalog.size(), 0u);
  EXPECT_EQ(stats.kept_keywords, 0u);
  EXPECT_DOUBLE_EQ(stats.KeywordRecall(), 0.0);
}

}  // namespace
}  // namespace dash::core
