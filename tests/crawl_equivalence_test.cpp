// The central correctness property of Section V: the stepwise and
// integrated MapReduce algorithms build exactly the same fragment index as
// the single-node reference crawler — same fragments, same keyword
// postings, same occurrence counts — across application queries, datasets,
// cluster sizes and reduce-task counts.
#include <gtest/gtest.h>

#include "core/mr_crawl.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "testing/instance_gen.h"
#include "tpch/tpch.h"

namespace dash::core {
namespace {

struct Workload {
  std::string name;
  std::string sql;
};

// The paper's Table III queries (Q1-Q3) against the TPC-H schema, plus the
// fooddb Search query (outer join) as Q0.
const Workload kFoodDb = {
    "fooddb",
    "SELECT name, budget, rate, comment, uname, date "
    "FROM restaurant LEFT JOIN (comment JOIN customer) "
    "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max"};

const Workload kQ1 = {
    "Q1",
    "SELECT * FROM (region JOIN nation) JOIN customer "
    "WHERE region.rid = $r AND acctbal BETWEEN $min AND $max"};

const Workload kQ2 = {
    "Q2",
    "SELECT * FROM (customer JOIN orders) JOIN lineitem "
    "WHERE customer.cid = $r AND qty BETWEEN $min AND $max"};

const Workload kQ3 = {
    "Q3",
    "SELECT * FROM (customer JOIN orders) JOIN (lineitem JOIN part) "
    "WHERE customer.cid = $r AND qty BETWEEN $min AND $max"};

// Edge shapes: a single-relation query (no join jobs at all), an
// equality-only query (no range attribute), and a two-range-attribute
// query (generic fragment-graph path).
const Workload kSingleRelation = {
    "fooddb_single",
    "SELECT name, rate FROM restaurant "
    "WHERE cuisine = $c AND budget BETWEEN $min AND $max"};

const Workload kEqualityOnly = {
    "fooddb_eqonly",
    "SELECT name, budget, rate FROM restaurant WHERE cuisine = $c"};

const Workload kTwoRanges = {
    "fooddb_2range",
    "SELECT name, cuisine FROM restaurant "
    "WHERE budget BETWEEN $bl AND $bu AND rate BETWEEN $rl AND $ru"};

std::string IndexFingerprint(const FragmentIndexBuild& build) {
  return build.index.ToDebugString(build.catalog);
}

std::string CatalogFingerprint(const FragmentIndexBuild& build) {
  std::string out;
  for (std::size_t f = 0; f < build.catalog.size(); ++f) {
    out += FragmentIdToString(build.catalog.id(static_cast<FragmentHandle>(f)));
    out += "=";
    out +=
        std::to_string(build.catalog.keyword_total(static_cast<FragmentHandle>(f)));
    out += "\n";
  }
  return out;
}

class CrawlEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Workload, int>> {};

TEST_P(CrawlEquivalenceTest, StepwiseAndIntegratedMatchReference) {
  const auto& [workload, reduce_tasks] = GetParam();
  db::Database db = workload.name.rfind("fooddb", 0) == 0
                        ? dash::testing::MakeFoodDb()
                        : tpch::Generate(tpch::Scale::kTiny);
  sql::PsjQuery query = sql::Parse(workload.sql);

  FragmentIndexBuild reference = Crawler(db, query).BuildIndex();

  mr::ClusterConfig config;
  config.block_size_bytes = 4 << 10;  // several map tasks even at tiny scale
  CrawlOptions options;
  options.num_reduce_tasks = reduce_tasks;

  mr::Cluster sw_cluster(config);
  CrawlResult sw = StepwiseCrawl(sw_cluster, db, query, options);
  mr::Cluster int_cluster(config);
  CrawlResult integrated = IntegratedCrawl(int_cluster, db, query, options);

  EXPECT_EQ(CatalogFingerprint(sw.build), CatalogFingerprint(reference));
  EXPECT_EQ(CatalogFingerprint(integrated.build),
            CatalogFingerprint(reference));
  EXPECT_EQ(IndexFingerprint(sw.build), IndexFingerprint(reference));
  EXPECT_EQ(IndexFingerprint(integrated.build), IndexFingerprint(reference));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrawlEquivalenceTest,
    ::testing::Combine(::testing::Values(kFoodDb, kQ1, kQ2, kQ3,
                                         kSingleRelation, kEqualityOnly,
                                         kTwoRanges),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<Workload, int>>& info) {
      return std::get<0>(info.param).name + "_r" +
             std::to_string(std::get<1>(info.param));
    });

// The same equivalence on generator-produced instances (the fuzzing
// harness's instance space), pinning shapes the fixed workloads above
// don't cover by construction: a four-relation FK chain, range-only
// selection, and an empty root relation (every fragment comes from
// nothing — both pipelines must agree on the empty index too).
class GeneratedCrawlEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, dash::testing::GenOptions, std::uint64_t>> {
};

TEST_P(GeneratedCrawlEquivalenceTest, StepwiseAndIntegratedMatchReference) {
  const auto& [name, options, seed] = GetParam();
  dash::testing::RandomInstance inst =
      dash::testing::GenerateInstance(seed, options);
  SCOPED_TRACE(inst.summary);

  FragmentIndexBuild reference = Crawler(inst.db, inst.app.query).BuildIndex();

  mr::ClusterConfig config;
  config.block_size_bytes = 4 << 10;
  for (int reduce_tasks : {1, 3}) {
    CrawlOptions crawl_options;
    crawl_options.num_reduce_tasks = reduce_tasks;
    mr::Cluster sw_cluster(config);
    CrawlResult sw =
        StepwiseCrawl(sw_cluster, inst.db, inst.app.query, crawl_options);
    mr::Cluster int_cluster(config);
    CrawlResult integrated =
        IntegratedCrawl(int_cluster, inst.db, inst.app.query, crawl_options);

    EXPECT_EQ(CatalogFingerprint(sw.build), CatalogFingerprint(reference));
    EXPECT_EQ(CatalogFingerprint(integrated.build),
              CatalogFingerprint(reference));
    EXPECT_EQ(IndexFingerprint(sw.build), IndexFingerprint(reference));
    EXPECT_EQ(IndexFingerprint(integrated.build),
              IndexFingerprint(reference));
  }
}

dash::testing::GenOptions ChainOptions() {
  dash::testing::GenOptions options;
  options.force_tables = 4;
  return options;
}

dash::testing::GenOptions RangeOnlyOptions() {
  dash::testing::GenOptions options;
  options.force_eq = 0;
  options.force_range = 2;
  return options;
}

dash::testing::GenOptions EmptyRootOptions() {
  dash::testing::GenOptions options;
  options.empty_root = true;
  return options;
}

INSTANTIATE_TEST_SUITE_P(
    GeneratedInstances, GeneratedCrawlEquivalenceTest,
    ::testing::Values(
        std::make_tuple(std::string("chain4"), ChainOptions(), 11ull),
        std::make_tuple(std::string("range_only"), RangeOnlyOptions(), 12ull),
        std::make_tuple(std::string("empty_root"), EmptyRootOptions(), 13ull)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, dash::testing::GenOptions, std::uint64_t>>&
           info) { return std::get<0>(info.param); });

TEST(CrawlPhases, StepwiseReportsThreePhases) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = sql::Parse(kFoodDb.sql);
  mr::Cluster cluster;
  CrawlResult result = StepwiseCrawl(cluster, db, query);
  ASSERT_EQ(result.phases.size(), 3u);
  EXPECT_EQ(result.phases[0].name, "SW-Jn");
  EXPECT_EQ(result.phases[1].name, "SW-Grp");
  EXPECT_EQ(result.phases[2].name, "SW-Idx");
  // Two join jobs for three relations.
  EXPECT_EQ(result.phases[0].metrics.jobs, 2u);
  EXPECT_GT(result.TotalWallSec(), 0.0);
}

TEST(CrawlPhases, IntegratedReportsThreePhases) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = sql::Parse(kFoodDb.sql);
  mr::Cluster cluster;
  CrawlResult result = IntegratedCrawl(cluster, db, query);
  ASSERT_EQ(result.phases.size(), 3u);
  EXPECT_EQ(result.phases[0].name, "INT-Jn");
  EXPECT_EQ(result.phases[1].name, "INT-Ext");
  EXPECT_EQ(result.phases[2].name, "INT-Cnsd");
  // 3 aggregate jobs + 2 join jobs.
  EXPECT_EQ(result.phases[0].metrics.jobs, 5u);
  // One extract job per relation with projected attributes.
  EXPECT_EQ(result.phases[1].metrics.jobs, 3u);
}

// The paper's efficiency claim in miniature: the integrated algorithm
// shuffles fewer bytes than the stepwise one once operands carry text
// (Q2 joins the text-heavy orders/lineitem relations).
TEST(CrawlShuffleVolume, IntegratedShufflesLessOnTextHeavyJoins) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  sql::PsjQuery query = sql::Parse(kQ2.sql);
  mr::Cluster sw_cluster, int_cluster;
  StepwiseCrawl(sw_cluster, db, query);
  IntegratedCrawl(int_cluster, db, query);
  std::uint64_t sw_shuffle = sw_cluster.Totals().map_output_bytes;
  std::uint64_t int_shuffle = int_cluster.Totals().map_output_bytes;
  EXPECT_LT(int_shuffle, sw_shuffle);
}

// Join-phase shuffle in particular collapses: compact tuples only.
TEST(CrawlShuffleVolume, IntegratedJoinPhaseIsSkinny) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  sql::PsjQuery query = sql::Parse(kQ3.sql);
  mr::Cluster sw_cluster, int_cluster;
  CrawlResult sw = StepwiseCrawl(sw_cluster, db, query);
  CrawlResult integrated = IntegratedCrawl(int_cluster, db, query);
  EXPECT_LT(integrated.phases[0].metrics.map_output_bytes,
            sw.phases[0].metrics.map_output_bytes / 2);
}

}  // namespace
}  // namespace dash::core
