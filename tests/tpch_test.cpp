// Tests for the TPC-H-style dataset generator: schema shape, referential
// integrity, determinism, scale ratios and DF skew.
#include <gtest/gtest.h>

#include <unordered_set>

#include "db/ops.h"
#include "tpch/tpch.h"
#include "util/tokenizer.h"

namespace dash::tpch {
namespace {

TEST(Tpch, SchemaAndFixedRelations) {
  db::Database db = Generate(Scale::kTiny);
  EXPECT_EQ(db.table("region").row_count(), 5u);
  EXPECT_EQ(db.table("nation").row_count(), 25u);
  EXPECT_EQ(db.table("region").schema().size(), 3u);
  EXPECT_EQ(db.table("lineitem").schema().size(), 8u);
  EXPECT_EQ(db.foreign_keys().size(), 5u);
}

TEST(Tpch, RowCountsScaleWithSpec) {
  db::Database db = Generate(Scale::kTiny);
  ScaleSpec spec = SpecFor(Scale::kTiny);
  EXPECT_EQ(db.table("customer").row_count(),
            static_cast<std::size_t>(spec.customers));
  EXPECT_EQ(db.table("part").row_count(), static_cast<std::size_t>(spec.parts));
  // Orders average spec.orders_per_customer per customer.
  std::size_t orders = db.table("orders").row_count();
  EXPECT_GT(orders, static_cast<std::size_t>(spec.customers));
  EXPECT_LT(orders, static_cast<std::size_t>(2 * spec.customers *
                                             spec.orders_per_customer));
}

TEST(Tpch, ScaleRatiosMirrorTableII) {
  auto small = SpecFor(Scale::kSmall);
  auto medium = SpecFor(Scale::kMedium);
  auto large = SpecFor(Scale::kLarge);
  EXPECT_EQ(medium.customers, 5 * small.customers);
  EXPECT_EQ(large.customers, 10 * small.customers);
}

TEST(Tpch, GenerationIsDeterministic) {
  db::Database a = Generate(Scale::kTiny, 42);
  db::Database b = Generate(Scale::kTiny, 42);
  EXPECT_EQ(a.table("customer").rows(), b.table("customer").rows());
  EXPECT_EQ(a.table("lineitem").rows(), b.table("lineitem").rows());
}

TEST(Tpch, DifferentSeedsDiffer) {
  db::Database a = Generate(Scale::kTiny, 1);
  db::Database b = Generate(Scale::kTiny, 2);
  EXPECT_NE(a.table("customer").rows(), b.table("customer").rows());
}

TEST(Tpch, ReferentialIntegrity) {
  db::Database db = Generate(Scale::kTiny);
  for (const db::ForeignKey& fk : db.foreign_keys()) {
    const db::Table& from = db.table(fk.from_table);
    const db::Table& to = db.table(fk.to_table);
    int fc = from.schema().IndexOf(fk.from_column);
    int tc = to.schema().IndexOf(fk.to_column);
    std::unordered_set<std::int64_t> keys;
    for (const db::Row& row : to.rows()) {
      keys.insert(row[static_cast<std::size_t>(tc)].AsInt());
    }
    for (const db::Row& row : from.rows()) {
      EXPECT_TRUE(keys.contains(row[static_cast<std::size_t>(fc)].AsInt()))
          << fk.from_table << "." << fk.from_column << " dangling";
    }
  }
}

TEST(Tpch, PrimaryKeysAreUnique) {
  db::Database db = Generate(Scale::kTiny);
  for (const auto& [table, pk] :
       std::vector<std::pair<std::string, std::string>>{
           {"customer", "cid"}, {"orders", "oid"}, {"lineitem", "lid"},
           {"part", "pid"}, {"region", "rid"}, {"nation", "nid"}}) {
    const db::Table& t = db.table(table);
    int c = t.schema().IndexOf(pk);
    std::unordered_set<std::int64_t> seen;
    for (const db::Row& row : t.rows()) {
      EXPECT_TRUE(seen.insert(row[static_cast<std::size_t>(c)].AsInt()).second)
          << table << "." << pk << " duplicated";
    }
  }
}

TEST(Tpch, QuantitiesInTpchDomain) {
  db::Database db = Generate(Scale::kTiny);
  const db::Table& l = db.table("lineitem");
  int qty = l.schema().IndexOf("qty");
  for (const db::Row& row : l.rows()) {
    std::int64_t v = row[static_cast<std::size_t>(qty)].AsInt();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
}

TEST(Tpch, CommentVocabularyIsSkewed) {
  // Zipf text: the most frequent word must dominate the tail, giving the
  // DF spread the cold/warm/hot keyword buckets need.
  db::Database db = Generate(Scale::kSmall);
  util::TokenCounter counter;
  const db::Table& o = db.table("orders");
  int c = o.schema().IndexOf("orders.comment");
  for (const db::Row& row : o.rows()) {
    counter.Add(row[static_cast<std::size_t>(c)].AsString());
  }
  std::size_t max_count = 0, singletons = 0;
  for (const auto& [word, n] : counter.counts()) {
    max_count = std::max(max_count, n);
    if (n == 1) ++singletons;
  }
  EXPECT_GT(max_count, 100u);   // hot head
  EXPECT_GT(singletons, 50u);   // cold tail
}

TEST(Tpch, PayloadGrowsWithScale) {
  db::Database tiny = Generate(Scale::kTiny);
  db::Database small = Generate(Scale::kSmall);
  EXPECT_GT(small.table("lineitem").PayloadBytes(),
            tiny.table("lineitem").PayloadBytes());
}

}  // namespace
}  // namespace dash::tpch
