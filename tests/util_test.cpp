// Unit tests for src/util: strings, tokenizer, record codec, RNG.
#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/tokenizer.h"

namespace dash::util {
namespace {

// ---------- Split / Trim / Join ----------

TEST(StringUtil, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitPreservesEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, SplitEmptyStringYieldsOneEmptyPiece) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, SplitTrailingSeparator) {
  auto parts = Split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtil, SplitWhitespaceAllBlank) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join(std::vector<std::string>{}, ", "), "");
  EXPECT_EQ(Join(std::vector<std::string>{"solo"}, ", "), "solo");
}

TEST(StringUtil, CaseHelpers) {
  EXPECT_EQ(ToLower("MiXeD 42"), "mixed 42");
  EXPECT_TRUE(EqualsIgnoreCase("BURGER", "burger"));
  EXPECT_FALSE(EqualsIgnoreCase("burger", "burgers"));
  EXPECT_TRUE(ContainsIgnoreCase("Unique Burger", "burger"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("ab", "abc"));
}

// ---------- URL encoding ----------

TEST(StringUtil, UrlEncodeUnreservedPassThrough) {
  EXPECT_EQ(UrlEncode("American-10_x.y~z"), "American-10_x.y~z");
}

TEST(StringUtil, UrlEncodeEscapesSpecials) {
  EXPECT_EQ(UrlEncode("a b&c=d"), "a%20b%26c%3Dd");
}

TEST(StringUtil, UrlDecodeRoundTrip) {
  std::string original = "cuisine=Ame rican&x=1/2+3";
  EXPECT_EQ(UrlDecode(UrlEncode(original)), original);
}

TEST(StringUtil, UrlDecodeMalformedEscapePassesThrough) {
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
  EXPECT_EQ(UrlDecode("%2"), "%2");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(StringUtil, ParseInt64) {
  std::int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

TEST(StringUtil, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("4.3", &v));
  EXPECT_DOUBLE_EQ(v, 4.3);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
}

// ---------- Tokenizer (paper Example 6 semantics) ----------

TEST(Tokenizer, LowercasesAndSplits) {
  auto toks = Tokenize("Burger Experts");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "burger");
  EXPECT_EQ(toks[1], "experts");
}

TEST(Tokenizer, KeepsInteriorPunctuation) {
  // Bond's, 4.3 and 01/11 are each single keywords (Example 6).
  auto toks = Tokenize("Bond's Cafe 9 4.3 Nice Coffee James 01/11");
  EXPECT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[0], "bond's");
  EXPECT_EQ(toks[3], "4.3");
  EXPECT_EQ(toks[7], "01/11");
}

TEST(Tokenizer, StripsEdgePunctuation) {
  auto toks = Tokenize("(hello), \"world\"!");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
}

TEST(Tokenizer, PurePunctuationTokenDropped) {
  EXPECT_TRUE(Tokenize("-- ... !!").empty());
}

TEST(Tokenizer, Utf8LettersSurvive) {
  // Multi-byte letters are not edge punctuation: accents and CJK stay.
  auto toks = Tokenize("Caf\xC3\xA9 (\xE7\x83\xA4\xE8\x82\x89)");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "caf\xC3\xA9");
  EXPECT_EQ(toks[1], "\xE7\x83\xA4\xE8\x82\x89");
}

TEST(Tokenizer, CountMatchesTokenize) {
  std::string text = "Unique burger; by Bill on 05/10";
  EXPECT_EQ(CountTokens(text), Tokenize(text).size());
}

TEST(TokenCounter, AccumulatesWithMultiplier) {
  TokenCounter counter;
  counter.Add("burger queen");
  counter.Add("burger", 2);
  EXPECT_EQ(counter.total(), 4u);
  EXPECT_EQ(counter.counts().at("burger"), 3u);
  EXPECT_EQ(counter.counts().at("queen"), 1u);
}

TEST(TokenCounter, ZeroMultiplierIsNoOp) {
  TokenCounter counter;
  counter.Add("burger", 0);
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_TRUE(counter.counts().empty());
}

// ---------- Record codec ----------

TEST(Csv, RoundTripSimple) {
  std::vector<std::string> fields = {"a", "b", "c"};
  EXPECT_EQ(DecodeFields(EncodeFields(fields)), fields);
}

TEST(Csv, RoundTripSpecialCharacters) {
  std::vector<std::string> fields = {"tab\there", "new\nline", "back\\slash",
                                     ""};
  EXPECT_EQ(DecodeFields(EncodeFields(fields)), fields);
}

TEST(Csv, NestedEncodingRoundTrips) {
  // The crawl pipelines nest encoded fragment keys inside encoded pairs.
  std::string inner = EncodeFields(std::vector<std::string>{"American", "10"});
  std::string outer = EncodeFields(std::vector<std::string>{inner, "3"});
  auto decoded = DecodeFields(outer);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], inner);
  auto inner_decoded = DecodeFields(decoded[0]);
  ASSERT_EQ(inner_decoded.size(), 2u);
  EXPECT_EQ(inner_decoded[0], "American");
}

TEST(Csv, EmptyLineIsOneEmptyField) {
  auto fields = DecodeFields("");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

// ---------- Deterministic RNG ----------

TEST(Random, SplitMix64IsDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, RangeIsInclusive) {
  SplitMix64 rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, ZipfPrefersLowRanks) {
  SplitMix64 rng(42);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 must be sampled far more often than rank 99.
  EXPECT_GT(counts[0], counts[99] * 5);
  // All samples in range is implied by the indexing above not crashing.
}

// ------------------------------------------------------- log-sink registry

// Restores the process-wide log level (kOff in tests) on exit so sink
// tests cannot leak verbosity into the rest of the suite.
class LogSinkTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_level_); }

 private:
  LogLevel saved_level_;
};

TEST_F(LogSinkTest, SinkSeesMessagesAtOrAboveLevel) {
  SetLogLevel(LogLevel::kWarning);
  std::vector<std::pair<LogLevel, std::string>> seen;
  int id = AddLogSink([&seen](LogLevel level, const std::string& msg) {
    seen.emplace_back(level, msg);
  });
  LogMessage(LogLevel::kInfo, "dropped");
  LogMessage(LogLevel::kWarning, "kept");
  DASH_LOG(Error) << "streamed " << 42;
  RemoveLogSink(id);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair{LogLevel::kWarning, std::string("kept")}));
  EXPECT_EQ(seen[1], (std::pair{LogLevel::kError, std::string("streamed 42")}));
}

TEST_F(LogSinkTest, RemoveStopsDeliveryAndUnknownIdsAreIgnored) {
  SetLogLevel(LogLevel::kInfo);
  int calls = 0;
  int id = AddLogSink([&calls](LogLevel, const std::string&) { ++calls; });
  EXPECT_EQ(LogSinkCount(), 1u);
  LogMessage(LogLevel::kInfo, "one");
  RemoveLogSink(id);
  RemoveLogSink(id);      // double-remove is a no-op
  RemoveLogSink(999999);  // unknown id is a no-op
  EXPECT_EQ(LogSinkCount(), 0u);
  LogMessage(LogLevel::kInfo, "two");
  EXPECT_EQ(calls, 1);
}

TEST_F(LogSinkTest, SinksRunInRegistrationOrder) {
  SetLogLevel(LogLevel::kInfo);
  std::string trace;
  int a = AddLogSink([&trace](LogLevel, const std::string&) { trace += 'a'; });
  int b = AddLogSink([&trace](LogLevel, const std::string&) { trace += 'b'; });
  LogMessage(LogLevel::kInfo, "x");
  RemoveLogSink(a);
  LogMessage(LogLevel::kInfo, "y");
  RemoveLogSink(b);
  EXPECT_EQ(trace, "abb");
}

TEST_F(LogSinkTest, ConcurrentEmissionIsSerializedBySinkLock) {
  SetLogLevel(LogLevel::kInfo);
  // Deliberately unsynchronized counter: the registry lock must serialize
  // sink invocations, so no increment may be lost (TSan also watches this).
  int calls = 0;
  int id = AddLogSink([&calls](LogLevel, const std::string&) { ++calls; });
  ThreadPool pool(4);
  pool.ParallelFor(64, [](std::size_t i) {
    LogMessage(LogLevel::kInfo, "msg " + std::to_string(i));
  });
  RemoveLogSink(id);
  EXPECT_EQ(calls, 64);
}

}  // namespace
}  // namespace dash::util
