// Failure-injection and edge-case tests: malformed inputs, degenerate
// databases, and queries at the boundaries of the supported model must
// fail loudly (never crash, never silently mis-index).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/dash_engine.h"
#include "core/mr_crawl.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "webapp/servlet_analyzer.h"

namespace dash::core {
namespace {

db::Database EmptyFoodDb() {
  // Same schema and foreign keys as fooddb, zero rows.
  db::Database db;
  db::Database reference = dash::testing::MakeFoodDb();
  for (const std::string& name : reference.TableNames()) {
    db.AddTable(db::Table(name, reference.table(name).schema()));
  }
  for (const db::ForeignKey& fk : reference.foreign_keys()) {
    db.AddForeignKey(fk);
  }
  return db;
}

// ---------- Query resolution failures ----------

TEST(Robustness, UnknownRelationRejected) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = sql::Parse("SELECT * FROM ghosts WHERE x = $p");
  EXPECT_THROW(Crawler(db, query), std::runtime_error);
}

TEST(Robustness, UnknownSelectionColumnRejected) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query =
      sql::Parse("SELECT name FROM restaurant WHERE nonexistent = $p");
  EXPECT_THROW(Crawler(db, query), std::runtime_error);
}

TEST(Robustness, UnknownProjectionColumnRejected) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query =
      sql::Parse("SELECT nonexistent FROM restaurant WHERE cuisine = $p");
  EXPECT_THROW(Crawler(db, query), std::runtime_error);
}

TEST(Robustness, JoinWithoutForeignKeyRejected) {
  db::Database db = dash::testing::MakeFoodDb();
  // restaurant and customer have no FK between them.
  sql::PsjQuery query =
      sql::Parse("SELECT * FROM restaurant JOIN customer WHERE cuisine = $p");
  Crawler crawler(db, query);  // construction resolves lazily via schemas
  EXPECT_THROW(crawler.EvalJoin(), std::runtime_error);
}

TEST(Robustness, AmbiguousBareColumnRejected) {
  db::Database db = dash::testing::MakeFoodDb();
  // "rid" exists in restaurant and comment: bare reference is ambiguous.
  sql::PsjQuery query = sql::Parse(
      "SELECT * FROM restaurant LEFT JOIN comment WHERE rid = $p");
  EXPECT_THROW(Crawler(db, query), std::runtime_error);
}

// ---------- Degenerate databases ----------

TEST(Robustness, EmptyDatabaseYieldsEmptyIndex) {
  db::Database db = EmptyFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  for (CrawlAlgorithm algorithm :
       {CrawlAlgorithm::kReference, CrawlAlgorithm::kStepwise,
        CrawlAlgorithm::kIntegrated}) {
    BuildOptions options;
    options.algorithm = algorithm;
    DashEngine engine = DashEngine::Build(db, app, options);
    EXPECT_EQ(engine.catalog().size(), 0u)
        << CrawlAlgorithmName(algorithm);
    EXPECT_TRUE(engine.Search({"burger"}, 5, 20).empty());
  }
}

TEST(Robustness, SingleRowDatabase) {
  db::Database db = EmptyFoodDb();
  db.mutable_table("restaurant").AddRow({1, "Solo", "American", 10, 4.0});
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kIntegrated;
  DashEngine engine = DashEngine::Build(db, app, options);
  EXPECT_EQ(engine.catalog().size(), 1u);
  auto results = engine.Search({"solo"}, 1, 100);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=American&l=10&u=10");
}

TEST(Robustness, RowsWithNullSelectionValuesAreUnreachable) {
  db::Database db = EmptyFoodDb();
  db.mutable_table("restaurant")
      .AddRow({1, "NoCuisine", db::Value::Null(), 10, 4.0});
  db.mutable_table("restaurant").AddRow({2, "Normal", "Thai", 9, 4.0});
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  for (CrawlAlgorithm algorithm :
       {CrawlAlgorithm::kReference, CrawlAlgorithm::kStepwise,
        CrawlAlgorithm::kIntegrated}) {
    BuildOptions options;
    options.algorithm = algorithm;
    DashEngine engine = DashEngine::Build(db, app, options);
    // The NULL-cuisine restaurant satisfies no query string: one fragment.
    EXPECT_EQ(engine.catalog().size(), 1u) << CrawlAlgorithmName(algorithm);
    EXPECT_TRUE(engine.Search({"nocuisine"}, 1, 1).empty());
    EXPECT_FALSE(engine.Search({"normal"}, 1, 1).empty());
  }
}

TEST(Robustness, HostileStringsSurviveTheFullPipeline) {
  // Values full of delimiter characters must round-trip through the MR
  // text encodings without corrupting the index.
  db::Database db = EmptyFoodDb();
  db.mutable_table("restaurant")
      .AddRow({1, "tab\there & new\nline", "cu\\isine", 10, 4.0});
  db.mutable_table("comment")
      .AddRow({201, 1, 109, "100%\t\"quoted\"\\escape", "01/01"});
  db.mutable_table("customer").AddRow({109, "We:ird=Name&x"});
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();

  BuildOptions reference, integrated;
  reference.algorithm = CrawlAlgorithm::kReference;
  integrated.algorithm = CrawlAlgorithm::kIntegrated;
  DashEngine a = DashEngine::Build(db, app, reference);
  DashEngine b = DashEngine::Build(db, app, integrated);
  EXPECT_EQ(a.index().ToDebugString(a.catalog()),
            b.index().ToDebugString(b.catalog()));
  EXPECT_EQ(a.catalog().size(), 1u);

  // The URL round-trips the hostile equality value. ("100%" normalizes to
  // the token "100"; the quoted blob stays one token with its interior
  // punctuation, searchable verbatim.)
  auto results = a.Search({"100%"}, 1, 1);
  ASSERT_EQ(results.size(), 1u);
  auto query_start = results[0].url.find('?');
  auto params = app.codec.Parse(results[0].url.substr(query_start + 1));
  EXPECT_EQ(params.at("cuisine"), "cu\\isine");
}

// ---------- Search-time edge cases ----------

TEST(Robustness, NegativeAndZeroKAreEmpty) {
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine =
      DashEngine::Build(db, dash::testing::MakeSearchApp(), options);
  EXPECT_TRUE(engine.Search({"burger"}, 0, 20).empty());
  EXPECT_TRUE(engine.Search({"burger"}, -3, 20).empty());
}

TEST(Robustness, ZeroSizeThresholdBehavesLikeOne) {
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine =
      DashEngine::Build(db, dash::testing::MakeSearchApp(), options);
  // s=0: every seed is immediately non-expandable.
  auto results = engine.Search({"burger"}, 3, 0);
  EXPECT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_EQ(r.fragments.size(), 1u);
}

TEST(Robustness, QueryOfOnlyPunctuationIsEmpty) {
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine =
      DashEngine::Build(db, dash::testing::MakeSearchApp(), options);
  EXPECT_TRUE(engine.Search({"...", "!!", "&&&"}, 5, 20).empty());
}

TEST(Robustness, ConcurrentSearchesAreSafeAndDeterministic) {
  // DashEngine::Search is const and must be safely callable from many
  // threads; all threads see identical results.
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine =
      DashEngine::Build(db, dash::testing::MakeSearchApp(), options);
  auto expected = engine.Search({"burger"}, 2, 20);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&engine, &expected, &mismatches] {
      for (int i = 0; i < 100; ++i) {
        auto results = engine.Search({"burger"}, 2, 20);
        if (results.size() != expected.size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t r = 0; r < results.size(); ++r) {
          if (results[r].url != expected[r].url) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------- Analyzer hostility ----------

TEST(Robustness, AnalyzerSurvivesJunkSources) {
  for (const char* junk :
       {"", "int main() { return 0; }", "SELECT * FROM x",
        "getParameter(", "q.getParameter('a'", "\"unterminated"}) {
    EXPECT_THROW(webapp::AnalyzeServlet(junk, "A", "u"),
                 webapp::AnalysisError)
        << junk;
  }
}

// ---------- MR cluster edge cases ----------

TEST(Robustness, CrawlSurvivesInjectedTaskFailures) {
  // The whole crawl pipeline on a flaky cluster: every task fails (and is
  // re-executed) with probability 0.3, and the index is still identical.
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = dash::testing::MakeSearchApp().query;
  mr::ClusterConfig flaky;
  flaky.block_size_bytes = 128;
  flaky.task_failure_probability = 0.3;
  flaky.fault_seed = 2012;
  mr::Cluster cluster(flaky);
  CrawlResult result = StepwiseCrawl(cluster, db, query);
  EXPECT_GT(cluster.Totals().task_retries, 0u);

  FragmentIndexBuild reference = Crawler(db, query).BuildIndex();
  EXPECT_EQ(result.build.index.ToDebugString(result.build.catalog),
            reference.index.ToDebugString(reference.catalog));
}

TEST(Robustness, CrawlOnClusterWithOneNodeAndTinyBlocks) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = dash::testing::MakeSearchApp().query;
  mr::ClusterConfig config;
  config.num_nodes = 1;
  config.block_size_bytes = 1;  // one record per map task
  mr::Cluster cluster(config);
  CrawlResult result = IntegratedCrawl(cluster, db, query);
  EXPECT_EQ(result.build.catalog.size(), 5u);

  FragmentIndexBuild reference = Crawler(db, query).BuildIndex();
  EXPECT_EQ(result.build.index.ToDebugString(result.build.catalog),
            reference.index.ToDebugString(reference.catalog));
}

}  // namespace
}  // namespace dash::core
