// ShardedEngine construction must not deep-copy the index per shard: all
// shards share one immutable IndexSnapshot, and the only per-shard state
// is the fragment->shard routing table plus one rearranged seed pool whose
// size is independent of the shard count. An operator-new byte counter
// proves it: building 8 shard views from a snapshot costs essentially the
// same allocation volume as building 1.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/crawler.h"
#include "core/sharded_engine.h"
#include "tpch/tpch.h"
#include "sql/parser.h"

namespace {
std::atomic<long> g_allocated_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocated_bytes += static_cast<long>(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocated_bytes += static_cast<long>(size);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dash::core {
namespace {

webapp::WebAppInfo TpchApp() {
  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "example.com/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  return app;
}

TEST(ShardedAllocation, ConstructionSharesSnapshotInsteadOfCopying) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app = TpchApp();
  SnapshotPtr snapshot =
      IndexSnapshot::Create(app, Crawler(db, app.query).BuildIndex());

  // Warm-up view: lets the shared thread pool spin up its workers and
  // their thread-local counting-sort cursors, so the measured runs below
  // see steady-state construction cost only.
  { ShardedEngine warmup(snapshot, 4); }

  long before_one = g_allocated_bytes.load();
  ShardedEngine one(snapshot, 1);
  long cost_one = g_allocated_bytes.load() - before_one;

  long before_eight = g_allocated_bytes.load();
  ShardedEngine eight(snapshot, 8);
  long cost_eight = g_allocated_bytes.load() - before_eight;

  // No snapshot copy: both engines alias the exact object we built.
  EXPECT_EQ(one.snapshot().get(), snapshot.get());
  EXPECT_EQ(eight.snapshot().get(), snapshot.get());

  // Per-shard state is views, not index copies. The old design built a
  // catalog + posting lists + term dictionary per shard, so 8 shards cost
  // several times 1 shard. Now the seed pool is the same size either way
  // and the extra shards only widen the per-term offset table, so going
  // 1 -> 8 shards must stay well under 2x (observed: within a few
  // percent plus 7 extra offsets per term).
  ASSERT_GT(cost_one, 0);
  EXPECT_LT(cost_eight, 2 * cost_one);

  // And the views really are the whole story: both engines answer.
  const std::string hot = snapshot->index().KeywordsByDf().front().first;
  auto a = one.Search({hot}, 3, 0);
  auto b = eight.Search({hot}, 3, 0);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].url, b[i].url);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

}  // namespace
}  // namespace dash::core
