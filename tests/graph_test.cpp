// Fragment graph tests: Figure 9 reproduction, the adjacency semantics for
// 0/1/2 range attributes, and a brute-force oracle property check.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/crawler.h"
#include "core/fragment_graph.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"
#include "util/random.h"

namespace dash::core {
namespace {

FragmentCatalog MakeCatalog(std::vector<db::Row> ids) {
  FragmentCatalog catalog;
  std::sort(ids.begin(), ids.end());
  for (const db::Row& id : ids) catalog.Intern(id);
  return catalog;
}

std::vector<std::string> NeighborIds(const FragmentGraph& g,
                                     const FragmentCatalog& c,
                                     const db::Row& id) {
  std::vector<std::string> out;
  for (FragmentHandle n : g.Neighbors(*c.Find(id))) {
    out.push_back(FragmentIdToString(c.id(n)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FragmentGraph, ReproducesFigure9) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  Crawler crawler(db, app.query);
  FragmentIndexBuild build = crawler.BuildIndex();
  FragmentGraph graph = FragmentGraph::Build(build.catalog, 1, 1);

  EXPECT_EQ(graph.node_count(), 5u);
  EXPECT_EQ(graph.edge_count(), 3u);  // the American chain
  EXPECT_EQ(graph.num_groups(), 2u);  // American, Thai

  using db::Value;
  EXPECT_EQ(NeighborIds(graph, build.catalog, {Value("American"), Value(9)}),
            (std::vector<std::string>{"(American, 10)"}));
  EXPECT_EQ(NeighborIds(graph, build.catalog, {Value("American"), Value(10)}),
            (std::vector<std::string>{"(American, 12)", "(American, 9)"}));
  EXPECT_EQ(NeighborIds(graph, build.catalog, {Value("American"), Value(12)}),
            (std::vector<std::string>{"(American, 10)", "(American, 18)"}));
  // The Thai node is disconnected (Example 6).
  EXPECT_TRUE(NeighborIds(graph, build.catalog, {Value("Thai"), Value(10)})
                  .empty());
}

TEST(FragmentGraph, NoRangeAttributesMeansNoEdges) {
  FragmentCatalog catalog = MakeCatalog(
      {{db::Value("a")}, {db::Value("b")}, {db::Value("c")}});
  FragmentGraph graph = FragmentGraph::Build(catalog, 1, 0);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(graph.num_groups(), 3u);
}

TEST(FragmentGraph, PureRangeIsOneChain) {
  FragmentCatalog catalog = MakeCatalog(
      {{db::Value(5)}, {db::Value(1)}, {db::Value(9)}, {db::Value(3)}});
  FragmentGraph graph = FragmentGraph::Build(catalog, 0, 1);
  EXPECT_EQ(graph.num_groups(), 1u);
  EXPECT_EQ(graph.edge_count(), 3u);
  // 1 - 3 - 5 - 9 chain: endpoint degree 1, inner degree 2.
  EXPECT_EQ(graph.Neighbors(*catalog.Find({db::Value(1)})).size(), 1u);
  EXPECT_EQ(graph.Neighbors(*catalog.Find({db::Value(3)})).size(), 2u);
  EXPECT_EQ(graph.Neighbors(*catalog.Find({db::Value(9)})).size(), 1u);
}

TEST(FragmentGraph, GroupSpansAreContiguousAndSorted) {
  FragmentCatalog catalog = MakeCatalog({{db::Value("a"), db::Value(1)},
                                         {db::Value("a"), db::Value(5)},
                                         {db::Value("b"), db::Value(2)}});
  FragmentGraph graph = FragmentGraph::Build(catalog, 1, 1);
  ASSERT_EQ(graph.num_groups(), 2u);
  auto [a0, a1] = graph.GroupSpan(0);
  EXPECT_EQ(a0, 0u);
  EXPECT_EQ(a1, 1u);
  EXPECT_EQ(graph.GroupOf(0), 0u);
  EXPECT_EQ(graph.GroupOf(2), 1u);
}

TEST(FragmentGraph, RequiresCanonicalCatalog) {
  FragmentCatalog catalog;
  catalog.Intern({db::Value(2)});
  catalog.Intern({db::Value(1)});  // out of order
  EXPECT_THROW(FragmentGraph::Build(catalog, 0, 1), std::logic_error);
}

TEST(FragmentGraph, SingleFragment) {
  FragmentCatalog catalog = MakeCatalog({{db::Value("x"), db::Value(1)}});
  FragmentGraph graph = FragmentGraph::Build(catalog, 1, 1);
  EXPECT_EQ(graph.node_count(), 1u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(FragmentGraph, EmptyCatalog) {
  FragmentCatalog catalog;
  FragmentGraph graph = FragmentGraph::Build(catalog, 1, 1);
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_EQ(graph.num_groups(), 0u);
}

// Two range attributes: edge iff the bounding box of the pair contains no
// third fragment. 2x2 grid: sides connected, diagonals not.
TEST(FragmentGraph, TwoRangeAttributesGrid) {
  FragmentCatalog catalog = MakeCatalog({{db::Value(0), db::Value(0)},
                                         {db::Value(0), db::Value(1)},
                                         {db::Value(1), db::Value(0)},
                                         {db::Value(1), db::Value(1)}});
  FragmentGraph graph = FragmentGraph::Build(catalog, 0, 2);
  // Sides: (0,0)-(0,1), (0,0)-(1,0), (0,1)-(1,1), (1,0)-(1,1) = 4 edges.
  // Diagonals' boxes contain the other two corners.
  EXPECT_EQ(graph.edge_count(), 4u);
  auto n00 = graph.Neighbors(*catalog.Find({db::Value(0), db::Value(0)}));
  EXPECT_EQ(n00.size(), 2u);
}

TEST(FragmentGraph, TwoRangeCollinearChain) {
  // Collinear points on one axis behave like the 1-d chain.
  FragmentCatalog catalog = MakeCatalog({{db::Value(0), db::Value(0)},
                                         {db::Value(0), db::Value(3)},
                                         {db::Value(0), db::Value(7)}});
  FragmentGraph graph = FragmentGraph::Build(catalog, 0, 2);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_TRUE(graph.Neighbors(*catalog.Find({db::Value(0), db::Value(7)}))
                  .size() == 1u);
}

// Property check against a brute-force oracle: for random 2-d point sets,
// the incremental construction must produce exactly the empty-box edges.
class GraphOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphOracleTest, MatchesBruteForceEmptyBoxSemantics) {
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<db::Row> ids;
  std::set<std::pair<std::int64_t, std::int64_t>> used;
  while (ids.size() < 12) {
    std::int64_t x = rng.Range(0, 6), y = rng.Range(0, 6);
    if (used.insert({x, y}).second) {
      ids.push_back({db::Value(x), db::Value(y)});
    }
  }
  FragmentCatalog catalog = MakeCatalog(ids);
  FragmentGraph graph = FragmentGraph::Build(catalog, 0, 2);

  auto in_box = [&](const db::Row& a, const db::Row& b, const db::Row& m) {
    for (int d : {0, 1}) {
      const db::Value& lo = a[d] <= b[d] ? a[d] : b[d];
      const db::Value& hi = a[d] <= b[d] ? b[d] : a[d];
      if (m[d] < lo || hi < m[d]) return false;
    }
    return true;
  };
  std::size_t expected_edges = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      const db::Row& a = catalog.id(static_cast<FragmentHandle>(i));
      const db::Row& b = catalog.id(static_cast<FragmentHandle>(j));
      bool empty_box = true;
      for (std::size_t m = 0; m < catalog.size(); ++m) {
        if (m == i || m == j) continue;
        if (in_box(a, b, catalog.id(static_cast<FragmentHandle>(m)))) {
          empty_box = false;
          break;
        }
      }
      auto neighbors =
          graph.Neighbors(static_cast<FragmentHandle>(i));
      bool has_edge =
          std::find(neighbors.begin(), neighbors.end(),
                    static_cast<FragmentHandle>(j)) != neighbors.end();
      EXPECT_EQ(has_edge, empty_box)
          << FragmentIdToString(a) << " -- " << FragmentIdToString(b);
      expected_edges += empty_box ? 1 : 0;
    }
  }
  EXPECT_EQ(graph.edge_count(), expected_edges);
}

INSTANTIATE_TEST_SUITE_P(RandomPointSets, GraphOracleTest,
                         ::testing::Range(1, 9));

// Same oracle in three range dimensions, with an equality attribute mixed
// in (two groups, each checked independently).
class GraphOracle3dTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphOracle3dTest, MatchesBruteForceInThreeDimensions) {
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::vector<db::Row> ids;
  std::set<std::vector<std::int64_t>> used;
  while (ids.size() < 14) {
    std::int64_t g = rng.Range(0, 1);
    std::int64_t x = rng.Range(0, 4), y = rng.Range(0, 4), z = rng.Range(0, 4);
    if (used.insert({g, x, y, z}).second) {
      ids.push_back({db::Value(g == 0 ? "alpha" : "beta"), db::Value(x),
                     db::Value(y), db::Value(z)});
    }
  }
  FragmentCatalog catalog = MakeCatalog(ids);
  FragmentGraph graph = FragmentGraph::Build(catalog, 1, 3);

  auto in_box = [](const db::Row& a, const db::Row& b, const db::Row& m) {
    for (std::size_t d = 1; d < 4; ++d) {
      const db::Value& lo = a[d] <= b[d] ? a[d] : b[d];
      const db::Value& hi = a[d] <= b[d] ? b[d] : a[d];
      if (m[d] < lo || hi < m[d]) return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      const db::Row& a = catalog.id(static_cast<FragmentHandle>(i));
      const db::Row& b = catalog.id(static_cast<FragmentHandle>(j));
      bool expected = a[0] == b[0];  // same equality group...
      if (expected) {
        for (std::size_t m = 0; m < catalog.size() && expected; ++m) {
          if (m == i || m == j) continue;
          const db::Row& rm = catalog.id(static_cast<FragmentHandle>(m));
          if (rm[0] == a[0] && in_box(a, b, rm)) expected = false;
        }
      }
      auto neighbors = graph.Neighbors(static_cast<FragmentHandle>(i));
      bool has_edge =
          std::find(neighbors.begin(), neighbors.end(),
                    static_cast<FragmentHandle>(j)) != neighbors.end();
      EXPECT_EQ(has_edge, expected)
          << FragmentIdToString(a) << " -- " << FragmentIdToString(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPointSets3d, GraphOracle3dTest,
                         ::testing::Range(1, 6));

TEST(FragmentGraph, StatsPopulated) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  sql::PsjQuery query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  FragmentIndexBuild build = Crawler(db, query).BuildIndex();
  FragmentGraph graph = FragmentGraph::Build(build.catalog, 1, 1);
  EXPECT_EQ(graph.stats().nodes, build.catalog.size());
  EXPECT_EQ(graph.stats().edges, graph.edge_count());
  EXPECT_GE(graph.stats().build_seconds, 0.0);
  // Every customer with >= 2 distinct quantities forms a chain.
  EXPECT_GT(graph.edge_count(), 0u);
  EXPECT_EQ(graph.num_groups(), db.table("customer").row_count());
}

}  // namespace
}  // namespace dash::core
