// Unit tests for the relational engine substrate (src/db).
#include <gtest/gtest.h>

#include "db/database.h"
#include "db/ops.h"
#include "testing/fooddb.h"

namespace dash::db {
namespace {

// ---------- Value ----------

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(5).type(), ValueType::kInt);
  EXPECT_EQ(Value(4.3).type(), ValueType::kDouble);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
  EXPECT_EQ(Value(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value(4.3).AsDouble(), 4.3);
  EXPECT_EQ(Value("x").AsString(), "x");
}

TEST(Value, ToStringRoundTrips) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(4.3).ToString(), "4.3");
  EXPECT_EQ(Value("Burger Queen").ToString(), "Burger Queen");
  EXPECT_EQ(Value().ToString(), "");
  EXPECT_EQ(Value::Parse("42", ValueType::kInt), Value(42));
  EXPECT_EQ(Value::Parse("4.3", ValueType::kDouble), Value(4.3));
  EXPECT_EQ(Value::Parse("", ValueType::kString), Value::Null());
  EXPECT_EQ(Value::Parse("junk", ValueType::kInt), Value::Null());
}

TEST(Value, OrderingWithinType) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1.5), Value(2.5));
}

TEST(Value, MixedNumericComparesAndHashesConsistently) {
  EXPECT_EQ(Value(5), Value(5.0));
  EXPECT_LT(Value(5), Value(5.5));
  EXPECT_EQ(Value(5).Hash(), Value(5.0).Hash());
}

TEST(Value, NullOrdersFirstAndEqualsOnlyNull) {
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value::Null(), Value(""));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(0));
}

// ---------- Schema ----------

TEST(Schema, QualifiedLookup) {
  Schema s({{"r", "id", ValueType::kInt}, {"c", "id", ValueType::kInt},
            {"r", "name", ValueType::kString}});
  EXPECT_EQ(s.IndexOf("r.id"), 0);
  EXPECT_EQ(s.IndexOf("c.id"), 1);
  EXPECT_EQ(s.IndexOf("name"), 2);
  EXPECT_THROW(s.IndexOf("id"), std::runtime_error);      // ambiguous
  EXPECT_THROW(s.IndexOf("absent"), std::runtime_error);  // unknown
  EXPECT_FALSE(s.Find("absent").has_value());
}

TEST(Schema, LookupIsCaseInsensitive) {
  Schema s({{"Restaurant", "Name", ValueType::kString}});
  EXPECT_EQ(s.IndexOf("restaurant.name"), 0);
  EXPECT_EQ(s.IndexOf("NAME"), 0);
}

TEST(Schema, Concat) {
  Schema a({{"r", "x", ValueType::kInt}});
  Schema b({{"s", "y", ValueType::kInt}});
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.IndexOf("r.x"), 0);
  EXPECT_EQ(c.IndexOf("s.y"), 1);
}

// ---------- Table ----------

TEST(Table, AddRowArityChecked) {
  Table t("t", Schema({{"t", "a", ValueType::kInt}}));
  t.AddRow({1});
  EXPECT_THROW(t.AddRow({1, 2}), std::runtime_error);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, ExportParseRoundTrip) {
  Table t("t", Schema({{"t", "a", ValueType::kInt},
                       {"t", "b", ValueType::kString},
                       {"t", "c", ValueType::kDouble}}));
  t.AddRow({7, "tab\tand newline\n", 1.25});
  t.AddRow({Value::Null(), Value::Null(), Value::Null()});
  auto lines = t.ExportRows();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(t.ParseRow(lines[0]), t.rows()[0]);
  EXPECT_EQ(t.ParseRow(lines[1]), t.rows()[1]);
}

// ---------- Database / foreign keys ----------

TEST(Database, DuplicateTableRejected) {
  Database db;
  db.AddTable(Table("t", Schema({{"t", "a", ValueType::kInt}})));
  EXPECT_THROW(db.AddTable(Table("t", Schema({{"t", "a", ValueType::kInt}}))),
               std::runtime_error);
}

TEST(Database, ForeignKeyValidation) {
  Database db = testing::MakeFoodDb();
  EXPECT_THROW(db.AddForeignKey({"comment", "nope", "restaurant", "rid"}),
               std::runtime_error);
  EXPECT_THROW(db.AddForeignKey({"ghost", "x", "restaurant", "rid"}),
               std::runtime_error);
}

TEST(Database, JoinColumnsEitherDirection) {
  Database db = testing::MakeFoodDb();
  auto [l, r] = db.JoinColumns("restaurant", "comment");
  EXPECT_EQ(l, "rid");
  EXPECT_EQ(r, "rid");
  EXPECT_THROW(db.JoinColumns("restaurant", "customer"), std::runtime_error);
}

// ---------- Joins ----------

class JoinTest : public ::testing::Test {
 protected:
  Database db_ = testing::MakeFoodDb();
};

TEST_F(JoinTest, InnerJoinMatchesForeignKeys) {
  Table j = HashJoin(db_.table("comment"), db_.table("customer"),
                     "comment.uid", "customer.uid", JoinType::kInner);
  // Every comment has a matching customer.
  EXPECT_EQ(j.row_count(), 6u);
  EXPECT_EQ(j.schema().size(), 5u + 2u);
}

TEST_F(JoinTest, LeftOuterJoinPadsWithNull) {
  Table j = HashJoin(db_.table("restaurant"), db_.table("comment"),
                     "restaurant.rid", "comment.rid", JoinType::kLeftOuter);
  // 7 restaurants; rid 4 has 2 comments -> 8 rows total.
  EXPECT_EQ(j.row_count(), 8u);
  int comment_col = j.schema().IndexOf("comment.comment");
  std::size_t padded = 0;
  for (const Row& row : j.rows()) {
    if (row[static_cast<std::size_t>(comment_col)].is_null()) ++padded;
  }
  // Restaurants 3 (Wandy's 4.1) and 5 (Thaifood) have no comments.
  EXPECT_EQ(padded, 2u);
}

TEST_F(JoinTest, InnerJoinDropsUnmatched) {
  Table j = HashJoin(db_.table("restaurant"), db_.table("comment"),
                     "restaurant.rid", "comment.rid", JoinType::kInner);
  EXPECT_EQ(j.row_count(), 6u);
}

TEST_F(JoinTest, NullKeysNeverMatch) {
  Table l("l", Schema({{"l", "k", ValueType::kInt}}));
  l.AddRow({Value::Null()});
  l.AddRow({1});
  Table r("r", Schema({{"r", "k", ValueType::kInt}}));
  r.AddRow({Value::Null()});
  r.AddRow({1});
  Table inner = HashJoin(l, r, "l.k", "r.k", JoinType::kInner);
  EXPECT_EQ(inner.row_count(), 1u);
  Table outer = HashJoin(l, r, "l.k", "r.k", JoinType::kLeftOuter);
  EXPECT_EQ(outer.row_count(), 2u);  // null left row padded
}

TEST_F(JoinTest, FindJoinColumnsAcrossJoinedSchema) {
  Table j = HashJoin(db_.table("restaurant"), db_.table("comment"),
                     "restaurant.rid", "comment.rid", JoinType::kLeftOuter);
  auto [l, r] = FindJoinColumns(db_, j.schema(), "customer");
  EXPECT_EQ(l, "comment.uid");
  EXPECT_EQ(r, "uid");
}

TEST_F(JoinTest, FindJoinColumnsSchemaToSchema) {
  auto [l, r] = FindJoinColumns(db_, db_.table("comment").schema(),
                                db_.table("customer").schema());
  EXPECT_EQ(l, "comment.uid");
  EXPECT_EQ(r, "customer.uid");
  EXPECT_THROW(FindJoinColumns(db_, db_.table("restaurant").schema(),
                               db_.table("customer").schema()),
               std::runtime_error);
}

// ---------- Filter / Project / GroupCount / SortBy ----------

TEST_F(JoinTest, FilterAndCompare) {
  const Table& r = db_.table("restaurant");
  int budget = r.schema().IndexOf("budget");
  Table cheap = Filter(r, [budget](const Row& row) {
    return EvalCompare(row[static_cast<std::size_t>(budget)], CompareOp::kLe,
                       Value(10));
  });
  EXPECT_EQ(cheap.row_count(), 4u);  // budgets 10, 10, 10, 9
}

TEST(Compare, NullFailsEveryComparison) {
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kEq, Value::Null()));
  EXPECT_FALSE(EvalCompare(Value(1), CompareOp::kGe, Value::Null()));
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kLe, Value(1)));
}

TEST(Compare, Operators) {
  EXPECT_TRUE(EvalCompare(Value(10), CompareOp::kEq, Value(10)));
  EXPECT_TRUE(EvalCompare(Value(10), CompareOp::kGe, Value(10)));
  EXPECT_TRUE(EvalCompare(Value(10), CompareOp::kLe, Value(12)));
  EXPECT_FALSE(EvalCompare(Value(9), CompareOp::kGe, Value(10)));
  EXPECT_TRUE(EvalCompare(Value("American"), CompareOp::kEq, Value("American")));
}

TEST_F(JoinTest, ProjectReordersColumns) {
  Table p = Project(db_.table("restaurant"), {"name", "restaurant.budget"});
  ASSERT_EQ(p.schema().size(), 2u);
  EXPECT_EQ(p.rows()[0][0], Value("Burger Queen"));
  EXPECT_EQ(p.rows()[0][1], Value(10));
}

TEST_F(JoinTest, GroupCountCountsDuplicates) {
  Table counts = GroupCount(db_.table("restaurant"), {"cuisine"});
  ASSERT_EQ(counts.row_count(), 2u);  // American, Thai (first-seen order)
  EXPECT_EQ(counts.rows()[0][0], Value("American"));
  EXPECT_EQ(counts.rows()[0][1], Value(5));
  EXPECT_EQ(counts.rows()[1][1], Value(2));
}

TEST_F(JoinTest, GroupCountMultipleKeys) {
  Table counts =
      GroupCount(db_.table("restaurant"), {"cuisine", "budget"}, "n");
  // (American,10),(American,18),(American,12)x2,(Thai,10)x2,(American,9).
  EXPECT_EQ(counts.row_count(), 5u);
  int n = counts.schema().IndexOf("n");
  std::int64_t total = 0;
  for (const Row& row : counts.rows()) {
    total += row[static_cast<std::size_t>(n)].AsInt();
  }
  EXPECT_EQ(total, 7);
}

TEST_F(JoinTest, SortByIsStableAscending) {
  Table sorted = SortBy(db_.table("restaurant"), {"budget", "rate"});
  const auto& rows = sorted.rows();
  int budget = sorted.schema().IndexOf("budget");
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][static_cast<std::size_t>(budget)],
              rows[i][static_cast<std::size_t>(budget)]);
  }
}

}  // namespace
}  // namespace dash::db
