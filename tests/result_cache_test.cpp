// Result cache tests: hit/miss accounting, LRU eviction, generation
// invalidation, thread safety, and the seed-cap search option.
#include <gtest/gtest.h>

#include <thread>

#include "core/index_update.h"
#include "core/result_cache.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"
#include "sql/parser.h"

namespace dash::core {
namespace {

DashEngine BuildFoodDbEngine() {
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  return DashEngine::Build(dash::testing::MakeFoodDb(),
                           dash::testing::MakeSearchApp(), options);
}

TEST(ResultCache, MissThenHit) {
  DashEngine engine = BuildFoodDbEngine();
  CachingEngine caching(engine, 16);
  auto first = caching.Search({"burger"}, 2, 20);
  auto second = caching.Search({"burger"}, 2, 20);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].url, second[i].url);
  }
  EXPECT_EQ(caching.cache().stats().hits, 1u);
  EXPECT_EQ(caching.cache().stats().misses, 1u);
  EXPECT_DOUBLE_EQ(caching.cache().stats().HitRate(), 0.5);
}

TEST(ResultCache, KeyCoversAllQueryDimensions) {
  DashEngine engine = BuildFoodDbEngine();
  CachingEngine caching(engine, 16);
  (void)caching.Search({"burger"}, 2, 20);
  (void)caching.Search({"burger"}, 3, 20);   // different k
  (void)caching.Search({"burger"}, 2, 50);   // different s
  (void)caching.Search({"fries"}, 2, 20);    // different keyword
  EXPECT_EQ(caching.cache().stats().misses, 4u);
  EXPECT_EQ(caching.cache().stats().hits, 0u);
}

TEST(ResultCache, KeywordOrderDoesNotMatter) {
  DashEngine engine = BuildFoodDbEngine();
  CachingEngine caching(engine, 16);
  (void)caching.Search({"burger", "fries"}, 2, 20);
  (void)caching.Search({"fries", "burger"}, 2, 20);
  EXPECT_EQ(caching.cache().stats().hits, 1u);
}

TEST(ResultCache, LruEvicts) {
  ResultCache cache(2);
  cache.Insert({"a"}, 1, 1, 1, {});
  cache.Insert({"b"}, 1, 1, 1, {});
  ASSERT_TRUE(cache.Lookup({"a"}, 1, 1, 1).has_value());  // touch a
  cache.Insert({"c"}, 1, 1, 1, {});                       // evicts b
  EXPECT_TRUE(cache.Lookup({"a"}, 1, 1, 1).has_value());
  EXPECT_FALSE(cache.Lookup({"b"}, 1, 1, 1).has_value());
  EXPECT_TRUE(cache.Lookup({"c"}, 1, 1, 1).has_value());
  EXPECT_LE(cache.size(), 2u);
}

TEST(ResultCache, GenerationMismatchIsAMiss) {
  ResultCache cache(8);
  cache.Insert({"a"}, 1, 1, /*generation=*/7, {});
  ASSERT_TRUE(cache.Lookup({"a"}, 1, 1, 7).has_value());
  // A new snapshot generation makes the entry stale (and evicts it).
  EXPECT_FALSE(cache.Lookup({"a"}, 1, 1, 8).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Re-inserting under the new generation works.
  cache.Insert({"a"}, 1, 1, 8, {});
  EXPECT_TRUE(cache.Lookup({"a"}, 1, 1, 8).has_value());
}

// The serving-path hazard the generation keying exists for: after an
// incremental index update republishes the snapshot, cached entries miss
// automatically — no manual invalidation call anywhere.
TEST(ResultCache, AutomaticInvalidationAfterIndexUpdate) {
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  UpdatableIndex updatable(dash::testing::MakeFoodDb(), app);
  CachingEngine caching(updatable.publisher(), 16);

  auto before = caching.Search({"burger"}, 3, 0);
  ASSERT_FALSE(before.empty());
  double stale_top_score = before[0].score;
  ASSERT_TRUE(caching.Search({"burger"}, 3, 0).size() == before.size());
  EXPECT_EQ(caching.cache().stats().hits, 1u);  // same generation: a hit

  // A new glowing burger review for Bond's Cafe changes the (American, 9)
  // fragment's statistics and the global df of "burger". The updater
  // publishes a new snapshot, so the cached entry is stale immediately.
  updatable.Insert("comment",
                   {db::Value(207), db::Value(7), db::Value(109),
                    db::Value("burger burger burger"), db::Value("07/11")});

  auto fresh = caching.Search({"burger"}, 3, 0);
  EXPECT_EQ(caching.cache().stats().misses, 2u);
  auto expected = updatable.snapshot()->Search({"burger"}, 3, 0);
  ASSERT_EQ(fresh.size(), expected.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i].url, expected[i].url);
    EXPECT_DOUBLE_EQ(fresh[i].score, expected[i].score);
  }
  // And the update genuinely moved the needle (a stale hit would have
  // answered wrongly).
  EXPECT_NE(fresh[0].score, stale_top_score);
}

TEST(ResultCache, ZeroCapacityNeverStores) {
  ResultCache cache(0);
  cache.Insert({"a"}, 1, 1, 1, {});
  EXPECT_FALSE(cache.Lookup({"a"}, 1, 1, 1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ConcurrentAccessIsSafe) {
  DashEngine engine = BuildFoodDbEngine();
  CachingEngine caching(engine, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&caching, t] {
      const char* keyword = (t % 2 == 0) ? "burger" : "fries";
      for (int i = 0; i < 50; ++i) {
        auto results = caching.Search({keyword}, 2, 20);
        ASSERT_FALSE(results.empty());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(caching.cache().stats().hits + caching.cache().stats().misses,
            200u);
  EXPECT_GT(caching.cache().stats().HitRate(), 0.9);
}

// ---------- Seed-cap search option ----------

TEST(SeedCap, LargeCapIsExact) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "example.com/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine = DashEngine::Build(db, app, options);

  auto by_df = engine.index().KeywordsByDf();
  const std::string hot = by_df.front().first;
  auto uncapped = engine.Search({hot}, 5, 100);
  auto capped = engine.Search({hot}, 5, 100, engine.catalog().size());
  ASSERT_EQ(uncapped.size(), capped.size());
  for (std::size_t i = 0; i < uncapped.size(); ++i) {
    EXPECT_EQ(uncapped[i].url, capped[i].url);
  }
}

TEST(SeedCap, TightCapStillReturnsTopPages) {
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine =
      DashEngine::Build(db, dash::testing::MakeSearchApp(), options);
  // Cap to 1 seed: only the best-scored relevant fragment is explored.
  auto results = engine.Search({"burger"}, 5, 1, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=American&l=10&u=10");
}

}  // namespace
}  // namespace dash::core
