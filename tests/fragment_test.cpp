// Fragment derivation tests: reproduces the paper's Figure 5 literally on
// fooddb, and checks the disjointness/coverage invariants fragments must
// satisfy (every db-page is a disjoint union of fragments).
#include <gtest/gtest.h>

#include "core/crawler.h"
#include "testing/fooddb.h"

namespace dash::core {
namespace {

class FragmentTest : public ::testing::Test {
 protected:
  FragmentTest()
      : db_(dash::testing::MakeFoodDb()),
        app_(dash::testing::MakeSearchApp()),
        crawler_(db_, app_.query) {}

  db::Database db_;
  webapp::WebAppInfo app_;
  Crawler crawler_;
};

TEST_F(FragmentTest, SelectionAttributesCanonicalOrder) {
  ASSERT_EQ(crawler_.selection().size(), 2u);
  EXPECT_EQ(crawler_.selection()[0].column, "cuisine");
  EXPECT_EQ(crawler_.selection()[1].column, "budget");
  EXPECT_EQ(crawler_.num_eq_attributes(), 1u);
  EXPECT_EQ(crawler_.num_range_attributes(), 1u);
  EXPECT_EQ(crawler_.selection_columns(),
            (std::vector<std::string>{"restaurant.cuisine",
                                      "restaurant.budget"}));
}

TEST_F(FragmentTest, ProjectionColumnsResolved) {
  EXPECT_EQ(crawler_.projection_columns(),
            (std::vector<std::string>{"restaurant.name", "restaurant.budget",
                                      "restaurant.rate", "comment.comment",
                                      "customer.uname", "comment.date"}));
}

TEST_F(FragmentTest, DerivesFigure5Fragments) {
  std::vector<Fragment> fragments = crawler_.DeriveFragments();
  ASSERT_EQ(fragments.size(), 5u);
  // Ascending identifier order: American groups first, then Thai.
  EXPECT_EQ(FragmentIdToString(fragments[0].id), "(American, 9)");
  EXPECT_EQ(FragmentIdToString(fragments[1].id), "(American, 10)");
  EXPECT_EQ(FragmentIdToString(fragments[2].id), "(American, 12)");
  EXPECT_EQ(FragmentIdToString(fragments[3].id), "(American, 18)");
  EXPECT_EQ(FragmentIdToString(fragments[4].id), "(Thai, 10)");

  // Row counts per Figure 5.
  EXPECT_EQ(fragments[0].rows.size(), 1u);  // Bond's Cafe
  EXPECT_EQ(fragments[1].rows.size(), 1u);  // Burger Queen
  EXPECT_EQ(fragments[2].rows.size(), 3u);  // Wandy's x3
  EXPECT_EQ(fragments[3].rows.size(), 1u);  // McRonald's
  EXPECT_EQ(fragments[4].rows.size(), 2u);  // Thaifood + Bangkok
}

TEST_F(FragmentTest, Figure5ContentDetail) {
  std::vector<Fragment> fragments = crawler_.DeriveFragments();
  // (American, 12): Wandy's 4.1 without comment survives the outer join.
  const Fragment& wandys = fragments[2];
  int with_comment = 0, without_comment = 0;
  for (const db::Row& row : wandys.rows) {
    EXPECT_EQ(row[0], db::Value("Wandy's"));
    (row[3].is_null() ? without_comment : with_comment)++;
  }
  EXPECT_EQ(without_comment, 1);
  EXPECT_EQ(with_comment, 2);
}

TEST_F(FragmentTest, KeywordTotalsMatchFigure9NodeWeights) {
  FragmentIndexBuild build = crawler_.BuildIndex();
  ASSERT_EQ(build.catalog.size(), 5u);
  auto weight = [&](const db::Row& id) {
    return build.catalog.keyword_total(*build.catalog.Find(id));
  };
  EXPECT_EQ(weight({db::Value("American"), db::Value(9)}), 8u);
  EXPECT_EQ(weight({db::Value("American"), db::Value(10)}), 8u);
  EXPECT_EQ(weight({db::Value("American"), db::Value(12)}), 17u);
  EXPECT_EQ(weight({db::Value("American"), db::Value(18)}), 8u);
  EXPECT_EQ(weight({db::Value("Thai"), db::Value(10)}), 10u);
}

// Property: fragments partition the crawling-query result — their row
// multisets are disjoint by construction (grouping) and their union is the
// full projected join.
TEST_F(FragmentTest, FragmentsPartitionTheJoinResult) {
  std::vector<Fragment> fragments = crawler_.DeriveFragments();
  std::size_t total_rows = 0;
  for (const Fragment& f : fragments) total_rows += f.rows.size();
  db::Table joined = crawler_.EvalJoin();
  EXPECT_EQ(total_rows, joined.row_count());
}

// Property: a db-page (concrete parameters) equals the union of the
// fragments whose identifiers satisfy the parameters — Definition 2's
// reconstruction guarantee, checked via the independent EvalPage oracle.
TEST_F(FragmentTest, PageEqualsUnionOfSatisfyingFragments) {
  std::vector<Fragment> fragments = crawler_.DeriveFragments();
  struct Case {
    const char* cuisine;
    int lo, hi;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"American", 10, 15},   // P1 of Example 1
           {"American", 10, 20},   // P2 of Example 1
           {"American", 9, 9},
           {"Thai", 10, 10},
           {"American", 19, 25},   // empty page
           {"French", 0, 100}}) {  // unknown cuisine
    db::Table page = crawler_.EvalPage({{"cuisine", db::Value(c.cuisine)},
                                        {"min", db::Value(c.lo)},
                                        {"max", db::Value(c.hi)}});
    std::size_t expected = 0;
    for (const Fragment& f : fragments) {
      if (f.id[0] == db::Value(c.cuisine) && db::Value(c.lo) <= f.id[1] &&
          f.id[1] <= db::Value(c.hi)) {
        expected += f.rows.size();
      }
    }
    EXPECT_EQ(page.row_count(), expected)
        << c.cuisine << " [" << c.lo << "," << c.hi << "]";
  }
}

TEST_F(FragmentTest, ExamplePage1MatchesFigure1) {
  // P1: American, budget 10..15 -> Burger Queen + Wandy's x3 = 4 rows.
  db::Table p1 = crawler_.EvalPage({{"cuisine", db::Value("American")},
                                    {"min", db::Value(10)},
                                    {"max", db::Value(15)}});
  EXPECT_EQ(p1.row_count(), 4u);
  // P2: American, 10..20 additionally includes McRonald's.
  db::Table p2 = crawler_.EvalPage({{"cuisine", db::Value("American")},
                                    {"min", db::Value(10)},
                                    {"max", db::Value(20)}});
  EXPECT_EQ(p2.row_count(), 5u);
}

TEST_F(FragmentTest, MissingEqualityParameterThrows) {
  EXPECT_THROW(crawler_.EvalPage({{"min", db::Value(1)}}), std::runtime_error);
}

TEST_F(FragmentTest, UnboundedRangeSideAllowed) {
  db::Table page = crawler_.EvalPage(
      {{"cuisine", db::Value("American")}, {"min", db::Value(12)}});
  EXPECT_EQ(page.row_count(), 4u);  // Wandy's x3 + McRonald's
}

// ---------- FragmentCatalog ----------

TEST(FragmentCatalog, InternIsIdempotent) {
  FragmentCatalog catalog;
  FragmentHandle a = catalog.Intern({db::Value("x"), db::Value(1)});
  FragmentHandle b = catalog.Intern({db::Value("x"), db::Value(1)});
  FragmentHandle c = catalog.Intern({db::Value("y"), db::Value(1)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(FragmentCatalog, CanonicalizeSortsByIdentifier) {
  FragmentCatalog catalog;
  catalog.Intern({db::Value("b")});
  catalog.Intern({db::Value("a")});
  catalog.AddKeywords(0, 7);
  auto mapping = catalog.Canonicalize();
  EXPECT_EQ(mapping[0], 1u);  // "b" moved after "a"
  EXPECT_EQ(mapping[1], 0u);
  EXPECT_EQ(catalog.id(0)[0], db::Value("a"));
  EXPECT_EQ(catalog.keyword_total(1), 7u);  // totals moved with ids
  EXPECT_EQ(*catalog.Find({db::Value("b")}), 1u);
}

TEST(FragmentCatalog, AverageKeywords) {
  FragmentCatalog catalog;
  catalog.AddKeywords(catalog.Intern({db::Value(1)}), 10);
  catalog.AddKeywords(catalog.Intern({db::Value(2)}), 20);
  EXPECT_DOUBLE_EQ(catalog.AverageKeywords(), 15.0);
}

TEST(FragmentIdToString, FormatsLikeThePaper) {
  EXPECT_EQ(FragmentIdToString({db::Value("American"), db::Value(10)}),
            "(American, 10)");
  EXPECT_EQ(FragmentIdToString({db::Value::Null()}), "(NULL)");
}

}  // namespace
}  // namespace dash::core
