// Lookup(string_view) must probe the term dictionary without constructing
// a temporary std::string: behavior parity with the interned-id path plus
// an operator-new counter proving the probe itself is allocation-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string_view>

#include "core/crawler.h"
#include "core/inverted_index.h"
#include "testing/fooddb.h"

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dash::core {
namespace {

FragmentIndexBuild BuildFoodDbIndex() {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  return Crawler(db, app.query).BuildIndex();
}

TEST(LookupAllocation, ParityWithIdPath) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  for (const auto& [keyword, df] : build.index.KeywordsByDf()) {
    auto via_view = build.index.Lookup(std::string_view(keyword));
    util::TermId id = build.index.FindTerm(keyword);
    ASSERT_NE(id, util::kInvalidTermId);
    auto via_id = build.index.LookupId(id);
    ASSERT_EQ(via_view.size(), df);
    ASSERT_EQ(via_view.data(), via_id.data());
    ASSERT_EQ(via_view.size(), via_id.size());
    EXPECT_DOUBLE_EQ(build.index.Idf(keyword), build.index.IdfId(id));
  }
  EXPECT_TRUE(build.index.Lookup("no-such-keyword").empty());
  EXPECT_EQ(build.index.FindTerm("no-such-keyword"), util::kInvalidTermId);
  EXPECT_EQ(build.index.Idf("no-such-keyword"), 0.0);
}

TEST(LookupAllocation, ProbeIsAllocationFree) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  constexpr std::string_view kPresent = "burger";
  constexpr std::string_view kAbsent = "zzz-not-indexed";
  ASSERT_FALSE(build.index.Lookup(kPresent).empty());

  long before = g_allocations.load();
  auto hit = build.index.Lookup(kPresent);
  auto miss = build.index.Lookup(kAbsent);
  double idf = build.index.Idf(kPresent);
  long after = g_allocations.load();

  EXPECT_EQ(after, before);
  EXPECT_FALSE(hit.empty());
  EXPECT_TRUE(miss.empty());
  EXPECT_GT(idf, 0.0);
}

}  // namespace
}  // namespace dash::core
