// Sharded serving tests: group-preserving partitioning, global-IDF
// scoring, and agreement with the single-engine searcher.
#include <gtest/gtest.h>

#include <set>

#include "core/crawler.h"
#include "core/sharded_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"

namespace dash::core {
namespace {

FragmentIndexBuild BuildFor(const db::Database& db,
                            const webapp::WebAppInfo& app) {
  return Crawler(db, app.query).BuildIndex();
}

webapp::WebAppInfo TpchApp() {
  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "example.com/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  return app;
}

TEST(ShardedEngine, PartitioningPreservesFragmentsAndGroups) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app = TpchApp();
  FragmentIndexBuild build = BuildFor(db, app);
  std::size_t total = build.catalog.size();

  ShardedEngine sharded(app, std::move(build), 4);
  EXPECT_EQ(sharded.shard_count(), 4u);
  EXPECT_EQ(sharded.fragment_count(), total);

  // Group atomicity: each customer's fragments live in exactly one shard.
  const FragmentCatalog& catalog = sharded.snapshot()->catalog();
  std::map<std::string, std::size_t> group_shard;
  std::size_t assigned = 0;
  for (std::size_t f = 0; f < catalog.size(); ++f) {
    std::size_t s = sharded.shard_of(static_cast<FragmentHandle>(f));
    ASSERT_LT(s, sharded.shard_count());
    ++assigned;
    std::string eq = catalog.id(static_cast<FragmentHandle>(f))[0].ToString();
    auto [it, inserted] = group_shard.emplace(eq, s);
    EXPECT_EQ(it->second, s) << "customer " << eq << " split across shards";
  }
  EXPECT_EQ(assigned, total);
  // Per-shard counts are consistent with the assignment.
  std::size_t counted = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    counted += sharded.shard_fragment_count(s);
  }
  EXPECT_EQ(counted, total);
  // With 20 customers and 4 shards, the hash should actually spread them.
  std::set<std::size_t> used_shards;
  for (const auto& [eq, s] : group_shard) used_shards.insert(s);
  EXPECT_GT(used_shards.size(), 1u);
}

TEST(ShardedEngine, AgreesWithSingleEngineOnFoodDb) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine single = DashEngine::Build(db, app, options);
  ShardedEngine sharded(app, BuildFor(db, app), 3);

  for (const char* keyword : {"burger", "fries", "coffee", "wandy's"}) {
    auto a = single.Search({keyword}, 5, 20);
    auto b = sharded.Search({keyword}, 5, 20);
    std::multiset<std::string> urls_a, urls_b;
    for (const auto& r : a) urls_a.insert(r.url);
    for (const auto& r : b) urls_b.insert(r.url);
    EXPECT_EQ(urls_a, urls_b) << keyword;
  }
}

TEST(ShardedEngine, AgreesWithSingleEngineOnTpch) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app = TpchApp();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine single = DashEngine::Build(db, app, options);
  ShardedEngine sharded(app, BuildFor(db, app), 5);

  auto by_df = single.index().KeywordsByDf();
  for (const std::string& keyword :
       {by_df.front().first, by_df[by_df.size() / 2].first}) {
    auto a = single.Search({keyword}, 10, 100);
    auto b = sharded.Search({keyword}, 10, 100);
    ASSERT_EQ(a.size(), b.size()) << keyword;
    // Same pages with the same globally-consistent scores.
    std::multiset<std::string> urls_a, urls_b;
    for (const auto& r : a) urls_a.insert(r.url);
    for (const auto& r : b) urls_b.insert(r.url);
    EXPECT_EQ(urls_a, urls_b) << keyword;
  }
}

TEST(ShardedEngine, ScoresUseGlobalDf) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  ShardedEngine sharded(app, BuildFor(db, app), 2);

  // "burger" has global df 3. If a shard holding only one burger fragment
  // scored with local df 1, its score would be 3x too high.
  auto results = sharded.Search({"burger"}, 3, 1);
  ASSERT_FALSE(results.empty());
  // Best single-fragment page: (American,10), occ 2 of 8 words, idf 1/3.
  EXPECT_DOUBLE_EQ(results[0].score, (2.0 / 8.0) / 3.0);
}

TEST(ShardedEngine, ResultsSortedByScore) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app = TpchApp();
  ShardedEngine sharded(app, BuildFor(db, app), 4);
  DashEngine probe = DashEngine::FromParts(app, BuildFor(db, app));
  auto by_df = probe.index().KeywordsByDf();
  auto results = sharded.Search({by_df.front().first}, 10, 50);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

// Tied scores must merge in the same order an unsharded searcher reports:
// by fragment identifier, which is comparable across shards (shard-local
// handles are not).
TEST(ShardedEngine, TiedScoresMergeInIdentifierOrder) {
  db::Schema schema({{"items", "id", db::ValueType::kInt},
                     {"items", "cat", db::ValueType::kString},
                     {"items", "txt", db::ValueType::kString}});
  db::Table items("items", schema);
  for (int i = 0; i < 6; ++i) {
    // Six one-fragment equality groups with identical "amber" statistics,
    // spread across shards by the group hash.
    items.AddRow({1 + i, "g" + std::to_string(i), "amber amber"});
  }
  db::Database db;
  db.AddTable(std::move(items));

  webapp::WebAppInfo app;
  app.name = "Tie";
  app.uri = "example.com/tie";
  app.query = sql::Parse("SELECT * FROM items WHERE items.cat = $cat");
  app.codec =
      webapp::QueryStringCodec(std::vector<webapp::ParamBinding>{{"c", "cat"}});

  DashEngine single = DashEngine::FromParts(app, BuildFor(db, app));
  auto expected = single.Search({"amber"}, 6, 0);
  ASSERT_EQ(expected.size(), 6u);

  for (int shards : {2, 3, 5}) {
    ShardedEngine sharded(app, BuildFor(db, app), shards);
    auto results = sharded.Search({"amber"}, 6, 0);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].url, expected[i].url)
          << shards << " shards, rank " << i;
      EXPECT_DOUBLE_EQ(results[i].score, expected[i].score);
    }
  }
}

TEST(ShardedEngine, SingleShardDegenerate) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  ShardedEngine sharded(app, BuildFor(db, app), 1);
  EXPECT_EQ(sharded.shard_count(), 1u);
  EXPECT_EQ(sharded.fragment_count(), 5u);
  EXPECT_EQ(sharded.Search({"burger"}, 2, 20).size(), 2u);
}

TEST(ShardedEngine, InvalidShardCountRejected) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  EXPECT_THROW(ShardedEngine(app, BuildFor(db, app), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dash::core
