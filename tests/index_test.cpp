// Inverted fragment index tests: Figure 6 reproduction and the index
// contract (posting order, IDF, keyword totals).
#include <gtest/gtest.h>

#include "core/crawler.h"
#include "core/inverted_index.h"
#include "testing/fooddb.h"

namespace dash::core {
namespace {

FragmentIndexBuild BuildFoodDbIndex() {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  return Crawler(db, app.query).BuildIndex();
}

TEST(InvertedIndex, Figure6BurgerPostings) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  auto postings = build.index.Lookup("burger");
  ASSERT_EQ(postings.size(), 3u);
  // Sorted by occurrences descending: (American,10):2 first.
  EXPECT_EQ(FragmentIdToString(build.catalog.id(postings[0].fragment)),
            "(American, 10)");
  EXPECT_EQ(postings[0].occurrences, 2u);
  EXPECT_EQ(postings[1].occurrences, 1u);
  EXPECT_EQ(postings[2].occurrences, 1u);
  // The two TF=1 fragments are (American,12) and (Thai,10).
  std::vector<std::string> tail = {
      FragmentIdToString(build.catalog.id(postings[1].fragment)),
      FragmentIdToString(build.catalog.id(postings[2].fragment))};
  std::sort(tail.begin(), tail.end());
  EXPECT_EQ(tail[0], "(American, 12)");
  EXPECT_EQ(tail[1], "(Thai, 10)");
}

TEST(InvertedIndex, Figure6CoffeeAndFries) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  auto coffee = build.index.Lookup("coffee");
  ASSERT_EQ(coffee.size(), 1u);
  EXPECT_EQ(FragmentIdToString(build.catalog.id(coffee[0].fragment)),
            "(American, 9)");
  auto fries = build.index.Lookup("fries");
  ASSERT_EQ(fries.size(), 1u);
  EXPECT_EQ(FragmentIdToString(build.catalog.id(fries[0].fragment)),
            "(American, 12)");
}

TEST(InvertedIndex, IdfIsInverseDocumentFrequency) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  EXPECT_DOUBLE_EQ(build.index.Idf("burger"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(build.index.Idf("coffee"), 1.0);
  EXPECT_DOUBLE_EQ(build.index.Idf("nonexistent"), 0.0);
  EXPECT_EQ(build.index.Df("burger"), 3u);
}

TEST(InvertedIndex, UnknownKeywordLookupIsEmpty) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  EXPECT_TRUE(build.index.Lookup("zzz").empty());
}

TEST(InvertedIndex, KeywordTotalsEqualSumOfPostings) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  std::vector<std::uint64_t> totals(build.catalog.size(), 0);
  for (const auto& [keyword, df] : build.index.KeywordsByDf()) {
    for (const Posting& p : build.index.Lookup(keyword)) {
      totals[p.fragment] += p.occurrences;
    }
  }
  for (std::size_t f = 0; f < build.catalog.size(); ++f) {
    EXPECT_EQ(totals[f],
              build.catalog.keyword_total(static_cast<FragmentHandle>(f)));
  }
}

TEST(InvertedIndex, AccumulationMergesDuplicatePairs) {
  InvertedFragmentIndex index;
  FragmentCatalog catalog;
  FragmentHandle f = catalog.Intern({db::Value(1)});
  index.AddOccurrences("w", f, 2);
  index.AddOccurrences("w", f, 3);
  index.Finalize(&catalog);
  auto postings = index.Lookup("w");
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].occurrences, 5u);
  EXPECT_EQ(catalog.keyword_total(f), 5u);
}

TEST(InvertedIndex, ZeroOccurrencesIgnored) {
  InvertedFragmentIndex index;
  index.AddOccurrences("w", 0, 0);
  index.Finalize(nullptr);
  EXPECT_TRUE(index.Lookup("w").empty());
  EXPECT_EQ(index.keyword_count(), 0u);
}

TEST(InvertedIndex, LifecycleEnforced) {
  InvertedFragmentIndex index;
  index.AddOccurrences("w", 0, 1);
  index.Finalize(nullptr);
  EXPECT_THROW(index.AddOccurrences("x", 0, 1), std::logic_error);
  EXPECT_THROW(index.Finalize(nullptr), std::logic_error);
}

TEST(InvertedIndex, PostingOrderIsDeterministic) {
  InvertedFragmentIndex index;
  FragmentCatalog catalog;
  FragmentHandle a = catalog.Intern({db::Value(1)});
  FragmentHandle b = catalog.Intern({db::Value(2)});
  FragmentHandle c = catalog.Intern({db::Value(3)});
  index.AddOccurrences("w", c, 5);
  index.AddOccurrences("w", a, 5);
  index.AddOccurrences("w", b, 9);
  index.Finalize(&catalog);
  auto postings = index.Lookup("w");
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0].fragment, b);  // highest TF first
  EXPECT_EQ(postings[1].fragment, a);  // tie broken by handle
  EXPECT_EQ(postings[2].fragment, c);
}

TEST(InvertedIndex, KeywordsByDfSortedDescending) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  auto by_df = build.index.KeywordsByDf();
  ASSERT_FALSE(by_df.empty());
  for (std::size_t i = 1; i < by_df.size(); ++i) {
    EXPECT_GE(by_df[i - 1].second, by_df[i].second);
  }
  // "american" is never indexed: cuisine is a selection attribute, not a
  // projection attribute (Figure 6 indexes projected content only).
  EXPECT_EQ(build.index.Df("american"), 0u);
}

TEST(InvertedIndex, SizeAccounting) {
  FragmentIndexBuild build = BuildFoodDbIndex();
  EXPECT_GT(build.index.keyword_count(), 10u);
  EXPECT_GE(build.index.posting_count(), build.index.keyword_count());
  EXPECT_GT(build.index.SizeBytes(), 0u);
  EXPECT_GT(build.catalog.SizeBytes(), 0u);
}

TEST(InvertedIndex, DebugStringIsStable) {
  FragmentIndexBuild a = BuildFoodDbIndex();
  FragmentIndexBuild b = BuildFoodDbIndex();
  EXPECT_EQ(a.index.ToDebugString(a.catalog), b.index.ToDebugString(b.catalog));
  EXPECT_NE(a.index.ToDebugString(a.catalog).find("burger"),
            std::string::npos);
}

}  // namespace
}  // namespace dash::core
