// Top-k search tests: Example 7 reproduced end to end, Algorithm 1
// behaviours (size threshold, k semantics, consumed seeds), URL
// formulation, and scoring properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dash_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"

namespace dash::core {
namespace {

class TopKTest : public ::testing::Test {
 protected:
  TopKTest()
      : db_(dash::testing::MakeFoodDb()),
        engine_(DashEngine::Build(db_, dash::testing::MakeSearchApp(),
                                  ReferenceBuild())) {}

  static BuildOptions ReferenceBuild() {
    BuildOptions options;
    options.algorithm = CrawlAlgorithm::kReference;
    return options;
  }

  db::Database db_;
  DashEngine engine_;
};

TEST_F(TopKTest, Example7BurgerSearch) {
  // k=2, s=20, keyword "burger" (paper Example 7).
  auto results = engine_.Search({"burger"}, 2, 20);
  ASSERT_EQ(results.size(), 2u);

  // The two result db-pages are (American, [10,12]) and (Thai, [10,10]).
  std::vector<std::string> urls = {results[0].url, results[1].url};
  std::sort(urls.begin(), urls.end());
  EXPECT_EQ(urls[0], "www.example.com/Search?c=American&l=10&u=12");
  EXPECT_EQ(urls[1], "www.example.com/Search?c=Thai&l=10&u=10");
}

TEST_F(TopKTest, Example7Arithmetic) {
  auto results = engine_.Search({"burger"}, 2, 20);
  ASSERT_EQ(results.size(), 2u);
  // Our queue pops the merged American page (TF 3/25) before Thai (1/10).
  // IDF(burger) = 1/3 scales both.
  EXPECT_EQ(results[0].size_words, 25u);
  EXPECT_DOUBLE_EQ(results[0].score, (3.0 / 25.0) * (1.0 / 3.0));
  EXPECT_EQ(results[1].size_words, 10u);
  EXPECT_DOUBLE_EQ(results[1].score, (1.0 / 10.0) * (1.0 / 3.0));
  // Params carry the reconstructed query string values.
  EXPECT_EQ(results[0].params.at("cuisine"), "American");
  EXPECT_EQ(results[0].params.at("min"), "10");
  EXPECT_EQ(results[0].params.at("max"), "12");
}

TEST_F(TopKTest, ConsumedSeedIsNotReturnedSeparately) {
  // (American,12) is absorbed into the merged page; with k=3 the remaining
  // results must not include a bare (American,12) page.
  auto results = engine_.Search({"burger"}, 3, 20);
  for (const auto& r : results) {
    EXPECT_NE(r.url, "www.example.com/Search?c=American&l=12&u=12");
  }
}

TEST_F(TopKTest, SmallThresholdKeepsPagesSmall) {
  // s=1: every seed is already large enough; no merging happens.
  auto results = engine_.Search({"burger"}, 3, 1);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=American&l=10&u=10");
  EXPECT_EQ(results[0].fragments.size(), 1u);
  // Ranked by TF*IDF: 2/8 > 1/10 > 1/17.
  EXPECT_EQ(results[1].url, "www.example.com/Search?c=Thai&l=10&u=10");
  EXPECT_EQ(results[2].url, "www.example.com/Search?c=American&l=12&u=12");
}

TEST_F(TopKTest, LargeThresholdGrowsPagesAcrossGroup) {
  // s larger than the whole American group (8+8+17+8=41 words): the
  // American page absorbs the entire chain and stops only when no
  // neighbors remain. The un-growable Thai page (no neighbors) surfaces
  // first because each merge dilutes the American page's TF.
  auto results = engine_.Search({"burger"}, 2, 1000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=Thai&l=10&u=10");
  EXPECT_EQ(results[1].url, "www.example.com/Search?c=American&l=9&u=18");
  EXPECT_EQ(results[1].size_words, 41u);
  EXPECT_EQ(results[1].fragments.size(), 4u);
}

TEST_F(TopKTest, KLimitsResults) {
  EXPECT_EQ(engine_.Search({"burger"}, 1, 20).size(), 1u);
  EXPECT_EQ(engine_.Search({"burger"}, 0, 20).size(), 0u);
  // Only 3 relevant seeds exist; merging reduces distinct pages to 2.
  EXPECT_EQ(engine_.Search({"burger"}, 10, 20).size(), 2u);
}

TEST_F(TopKTest, UnknownKeywordReturnsNothing) {
  EXPECT_TRUE(engine_.Search({"pizza"}, 5, 20).empty());
  EXPECT_TRUE(engine_.Search({}, 5, 20).empty());
  EXPECT_TRUE(engine_.Search({"!!!"}, 5, 20).empty());
}

TEST_F(TopKTest, QueryIsTokenizedAndCaseNormalized) {
  auto upper = engine_.Search({"BURGER"}, 2, 20);
  auto lower = engine_.Search({"burger"}, 2, 20);
  ASSERT_EQ(upper.size(), lower.size());
  EXPECT_EQ(upper[0].url, lower[0].url);
  // Multi-word input searches both keywords.
  auto multi = engine_.Search({"burger experts"}, 1, 1);
  ASSERT_FALSE(multi.empty());
  EXPECT_EQ(multi[0].url, "www.example.com/Search?c=American&l=10&u=10");
}

TEST_F(TopKTest, MultiKeywordScoresSumPerKeyword) {
  // "coffee" appears only in (American,9); "burger" favors (American,10).
  auto results = engine_.Search({"coffee", "burger"}, 1, 1);
  ASSERT_EQ(results.size(), 1u);
  // (American,9): coffee idf 1 * 1/8 = 0.125 beats burger's 1/3 * 2/8.
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=American&l=9&u=9");
}

TEST_F(TopKTest, ResultPagesAreContiguousIntervals) {
  for (const auto& r : engine_.Search({"burger"}, 5, 30)) {
    for (std::size_t i = 1; i < r.fragments.size(); ++i) {
      EXPECT_EQ(r.fragments[i], r.fragments[i - 1] + 1)
          << "pages over one range attribute are contiguous chains";
    }
  }
}

TEST_F(TopKTest, ResultFragmentsDisjointAcrossResults) {
  auto results = engine_.Search({"burger"}, 5, 20);
  std::set<FragmentHandle> seen;
  for (const auto& r : results) {
    for (FragmentHandle f : r.fragments) {
      EXPECT_TRUE(seen.insert(f).second)
          << "shared fragment => overlapped content in the result list";
    }
  }
}

// ---------- Deterministic ordering on score ties ----------

// Fragments with identical keyword statistics score identically; the
// output order must then be pinned by the fragment identifiers (ascending
// handles in a canonical catalog), not by queue discovery order —
// differential comparison against an independent oracle and the sharded
// gather merge both rely on this total order.
TEST(TopKTieBreak, TiedScoresOrderByFragmentId) {
  db::Schema schema({{"items", "id", db::ValueType::kInt},
                     {"items", "cat", db::ValueType::kString},
                     {"items", "txt", db::ValueType::kString}});
  db::Table items("items", schema);
  // Same "amber" statistics in every fragment (2 occurrences of 4 words);
  // inserted in non-identifier order on purpose.
  items.AddRow({1, "mid", "amber amber"});
  items.AddRow({2, "zed", "amber amber"});
  items.AddRow({3, "ace", "amber amber"});
  db::Database db;
  db.AddTable(std::move(items));

  webapp::WebAppInfo app;
  app.name = "Tie";
  app.uri = "example.com/tie";
  app.query = sql::Parse("SELECT * FROM items WHERE items.cat = $cat");
  app.codec =
      webapp::QueryStringCodec(std::vector<webapp::ParamBinding>{{"c", "cat"}});

  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  DashEngine engine = DashEngine::Build(db, app, options);

  auto results = engine.Search({"amber"}, 3, 0);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].score, results[1].score);
  EXPECT_DOUBLE_EQ(results[1].score, results[2].score);
  EXPECT_EQ(results[0].url, "example.com/tie?c=ace");
  EXPECT_EQ(results[1].url, "example.com/tie?c=mid");
  EXPECT_EQ(results[2].url, "example.com/tie?c=zed");

  // Stable across repeated searches (no per-query state leaks into order).
  auto again = engine.Search({"amber"}, 3, 0);
  ASSERT_EQ(again.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(again[i].url, results[i].url);
  }
}

// ---------- TPC-H workload sanity ----------

class TpchTopKTest : public ::testing::Test {
 protected:
  static DashEngine BuildEngine() {
    db::Database db = tpch::Generate(tpch::Scale::kTiny);
    webapp::WebAppInfo app;
    app.name = "Q2";
    app.uri = "example.com/q2";
    app.query = sql::Parse(
        "SELECT * FROM (customer JOIN orders) JOIN lineitem "
        "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
    app.codec = webapp::QueryStringCodec(
        {{"r", "r"}, {"l", "min"}, {"u", "max"}});
    BuildOptions options;
    options.algorithm = CrawlAlgorithm::kReference;
    return DashEngine::Build(db, app, options);
  }
};

TEST_F(TpchTopKTest, HotKeywordSearchesScaleWithK) {
  DashEngine engine = BuildEngine();
  auto by_df = engine.index().KeywordsByDf();
  ASSERT_FALSE(by_df.empty());
  const std::string hot = by_df.front().first;
  auto k1 = engine.Search({hot}, 1, 100);
  auto k10 = engine.Search({hot}, 10, 100);
  EXPECT_EQ(k1.size(), 1u);
  EXPECT_GE(k10.size(), k1.size());
  EXPECT_LE(k10.size(), 10u);
  // Results come back in pop order with valid URLs.
  for (const auto& r : k10) {
    EXPECT_NE(r.url.find("example.com/q2?r="), std::string::npos);
    EXPECT_GT(r.size_words, 0u);
  }
}

TEST_F(TpchTopKTest, SizeThresholdGrowsPages) {
  DashEngine engine = BuildEngine();
  auto by_df = engine.index().KeywordsByDf();
  const std::string hot = by_df.front().first;
  auto small_s = engine.Search({hot}, 5, 10);
  auto large_s = engine.Search({hot}, 5, 500);
  ASSERT_FALSE(small_s.empty());
  ASSERT_FALSE(large_s.empty());
  double avg_small = 0, avg_large = 0;
  for (const auto& r : small_s) avg_small += static_cast<double>(r.size_words);
  for (const auto& r : large_s) avg_large += static_cast<double>(r.size_words);
  avg_small /= static_cast<double>(small_s.size());
  avg_large /= static_cast<double>(large_s.size());
  EXPECT_GT(avg_large, avg_small);
}

TEST_F(TpchTopKTest, PageMeetsThresholdWhenGroupAllows) {
  DashEngine engine = BuildEngine();
  auto by_df = engine.index().KeywordsByDf();
  const std::string hot = by_df.front().first;
  const std::uint64_t s = 200;
  for (const auto& r : engine.Search({hot}, 5, s)) {
    if (r.size_words < s) {
      // Undersized results are only legal when the whole equality group is
      // exhausted (no neighbors left to absorb).
      auto group = engine.graph().GroupOf(r.fragments.front());
      auto [first, last] = engine.graph().GroupSpan(group);
      EXPECT_EQ(r.fragments.size(),
                static_cast<std::size_t>(last - first + 1));
    }
  }
}

}  // namespace
}  // namespace dash::core
