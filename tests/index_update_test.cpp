// Tests for incremental fragment-index maintenance (paper Section VIII,
// future-work item 1): every update sequence must leave the mirror exactly
// equal to a full rebuild from the mutated database, while recomputing far
// fewer fragments, and repairing outer-join padding transitions.
#include <gtest/gtest.h>

#include "core/index_update.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"
#include "util/random.h"

namespace dash::core {
namespace {

std::string Fingerprint(const FragmentIndexBuild& build) {
  std::string out;
  for (std::size_t f = 0; f < build.catalog.size(); ++f) {
    out += FragmentIdToString(build.catalog.id(static_cast<FragmentHandle>(f)));
    out += "=";
    out += std::to_string(
        build.catalog.keyword_total(static_cast<FragmentHandle>(f)));
    out += ";";
  }
  out += "\n";
  out += build.index.ToDebugString(build.catalog);
  return out;
}

// Full rebuild oracle on the updater's current database state.
std::string RebuildFingerprint(const UpdatableIndex& updatable,
                               const sql::PsjQuery& query) {
  Crawler crawler(updatable.database(), query);
  return Fingerprint(crawler.BuildIndex());
}

class FoodDbUpdateTest : public ::testing::Test {
 protected:
  FoodDbUpdateTest()
      : query_(dash::testing::MakeSearchApp().query),
        updatable_(dash::testing::MakeFoodDb(), query_) {}

  void ExpectConsistent() {
    EXPECT_EQ(Fingerprint(updatable_.build()),
              RebuildFingerprint(updatable_, query_));
  }

  sql::PsjQuery query_;
  UpdatableIndex updatable_;
};

TEST_F(FoodDbUpdateTest, InitialBuildMatchesCrawler) {
  EXPECT_EQ(updatable_.fragment_count(), 5u);
  ExpectConsistent();
  EXPECT_EQ(updatable_.fragments_recomputed(), 0u);
}

TEST_F(FoodDbUpdateTest, InsertCommentUpdatesOneFragment) {
  // New comment for Burger Queen (rid 1) -> only (American, 10) changes.
  updatable_.Insert("comment", {207, 1, 120, "Great shakes", "07/10"});
  EXPECT_EQ(updatable_.fragments_recomputed(), 1u);
  EXPECT_EQ(updatable_.fragment_count(), 5u);
  ExpectConsistent();
  // The new keywords are searchable.
  EXPECT_EQ(updatable_.build().index.Df("shakes"), 1u);
}

TEST_F(FoodDbUpdateTest, InsertRestaurantCreatesFragment) {
  updatable_.Insert("restaurant", {8, "Pizza Palace", "Italian", 14, 4.0});
  EXPECT_EQ(updatable_.fragment_count(), 6u);
  ExpectConsistent();
  auto handle = updatable_.build().catalog.Find(
      {db::Value("Italian"), db::Value(14)});
  ASSERT_TRUE(handle.has_value());
  EXPECT_EQ(updatable_.build().catalog.keyword_total(*handle), 4u);
}

TEST_F(FoodDbUpdateTest, InsertFirstCommentRemovesOuterJoinPadding) {
  // Wandy's rid 3 previously had no comments: its joined row was padded.
  // Adding the first comment must replace the padding, not add to it.
  updatable_.Insert("comment", {208, 3, 109, "Hidden gem", "02/11"});
  ExpectConsistent();
  auto handle = updatable_.build().catalog.Find(
      {db::Value("American"), db::Value(12)});
  ASSERT_TRUE(handle.has_value());
  // Was 17; the padded row (wandy's, 12, 4.1 = 3 words) is replaced by a
  // commented row (3 + hidden, gem, david, 02/11 = 7 words) -> 21.
  EXPECT_EQ(updatable_.build().catalog.keyword_total(*handle), 21u);
}

TEST_F(FoodDbUpdateTest, DeleteLastCommentRestoresPadding) {
  updatable_.Delete("comment", {201, 1, 109, "Burger experts", "06/10"});
  ExpectConsistent();
  auto handle = updatable_.build().catalog.Find(
      {db::Value("American"), db::Value(10)});
  ASSERT_TRUE(handle.has_value());
  // Burger Queen keeps a padded row: burger, queen, 10, 4.3.
  EXPECT_EQ(updatable_.build().catalog.keyword_total(*handle), 4u);
  EXPECT_EQ(updatable_.build().index.Df("experts"), 0u);
}

TEST_F(FoodDbUpdateTest, DeleteRestaurantRemovesFragment) {
  updatable_.Delete("restaurant", {7, "Bond's Cafe", "American", 9, 4.3});
  EXPECT_EQ(updatable_.fragment_count(), 4u);
  ExpectConsistent();
  EXPECT_FALSE(updatable_.build()
                   .catalog.Find({db::Value("American"), db::Value(9)})
                   .has_value());
  EXPECT_EQ(updatable_.build().index.Df("coffee"), 0u);
}

TEST_F(FoodDbUpdateTest, DeleteMissingRowThrows) {
  EXPECT_THROW(updatable_.Delete("comment", {999, 1, 1, "none", "01/01"}),
               std::runtime_error);
}

TEST_F(FoodDbUpdateTest, InsertIntoSharedFragmentTouchesOnlyIt) {
  // A second restaurant lands in the existing (American, 10) fragment.
  updatable_.Insert("restaurant", {9, "Patty Shack", "American", 10, 3.5});
  EXPECT_EQ(updatable_.fragments_recomputed(), 1u);
  EXPECT_EQ(updatable_.fragment_count(), 5u);
  ExpectConsistent();
  auto handle = updatable_.build().catalog.Find(
      {db::Value("American"), db::Value(10)});
  // 8 (Burger Queen + comment) + 4 (patty, shack, 10, 3.5).
  EXPECT_EQ(updatable_.build().catalog.keyword_total(*handle), 12u);
}

TEST_F(FoodDbUpdateTest, GraphIsRepairedAfterUpdates) {
  // New budget value 14 inside the American chain splits edge 12—18.
  updatable_.Insert("restaurant", {8, "Diner 14", "American", 14, 3.0});
  const FragmentGraph& graph = updatable_.graph();
  EXPECT_EQ(graph.node_count(), 6u);
  EXPECT_EQ(graph.edge_count(), 4u);  // 9-10-12-14-18 chain
}

TEST_F(FoodDbUpdateTest, UpdateCostIsLocalized) {
  // Ten updates touch far fewer fragments than ten full rebuilds would.
  for (int i = 0; i < 10; ++i) {
    updatable_.Insert("comment",
                      {300 + i, 1 + (i % 7), 109, "extra note", "01/12"});
  }
  ExpectConsistent();
  EXPECT_LE(updatable_.fragments_recomputed(),
            10u);  // one fragment per touched restaurant
  EXPECT_LT(updatable_.fragments_recomputed(),
            10u * updatable_.fragment_count());
}

// Randomized equivalence sweep on TPC-H tiny / Q2: interleaved inserts and
// deletes, checked against the full-rebuild oracle after every step.
class RandomUpdateTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomUpdateTest, MatchesFullRebuildAfterEveryStep) {
  sql::PsjQuery query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  UpdatableIndex updatable(tpch::Generate(tpch::Scale::kTiny), query);
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));

  std::int64_t next_lid = 100000;
  for (int step = 0; step < 8; ++step) {
    if (rng.NextDouble() < 0.6) {
      // Insert a lineitem for a random existing order.
      const db::Table& orders = updatable.database().table("orders");
      const db::Row& order =
          orders.rows()[rng.Below(orders.row_count())];
      updatable.Insert(
          "lineitem",
          {db::Value(next_lid++), order[0], db::Value(rng.Range(0, 29)),
           db::Value(rng.Range(1, 50)), db::Value(99.5), db::Value(0.05),
           db::Value("1995-01-01"), db::Value("quick brown lineitem")});
    } else {
      // Delete a random lineitem.
      const db::Table& lineitem = updatable.database().table("lineitem");
      db::Row victim = lineitem.rows()[rng.Below(lineitem.row_count())];
      updatable.Delete("lineitem", victim);
    }
    Crawler oracle(updatable.database(), query);
    EXPECT_EQ(Fingerprint(updatable.build()), Fingerprint(oracle.BuildIndex()))
        << "diverged at step " << step;
  }
  // Bounded work: each update recomputes at most a couple of fragments.
  EXPECT_LT(updatable.fragments_recomputed(), 8u * 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUpdateTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace dash::core
