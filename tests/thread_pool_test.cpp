// Thread pool contract: submitted tasks run, ParallelFor covers every
// index exactly once, exceptions propagate to the caller, and the
// destructor joins outstanding work. Plus the serving-path invariant the
// pool must never break: ShardedEngine::Search results are byte-identical
// whatever the pool size.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/crawler.h"
#include "core/sharded_engine.h"
#include "sql/parser.h"
#include "tpch/tpch.h"
#include "util/thread_pool.h"

namespace dash {
namespace {

TEST(ThreadPool, SubmittedTasksRunAndReturnValues) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForWorksWithSingleWorkerAndEmptyRange) {
  util::ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(0, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 0);
  pool.ParallelFor(7, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 7);
}

// Every outer index itself runs a ParallelFor on the same pool, so all
// workers are simultaneously inside nested calls with their helpers
// queued behind each other. The wait loop must keep draining the queue
// (not block in get()) or this saturation pattern deadlocks — it is
// exactly what a parallel fuzz sweep over oracle checks produces.
TEST(ThreadPool, SaturatedNestedParallelForDoesNotDeadlock) {
  util::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(16, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 16 * 8);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  util::ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](std::size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("bad index");
                                  }
                                }),
               std::runtime_error);
  // The pool must stay usable after a failed ParallelFor.
  std::atomic<int> total{0};
  pool.ParallelFor(10, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, DestructorJoinsOutstandingWork) {
  std::atomic<int> completed{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++completed;
      });
    }
  }
  // Destructor returns only after queued tasks ran to completion.
  EXPECT_EQ(completed.load(), 8);
}

webapp::WebAppInfo TpchApp() {
  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "example.com/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  return app;
}

TEST(ThreadPool, ShardedSearchIsPoolSizeInvariant) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app = TpchApp();
  auto build_for = [&] { return core::Crawler(db, app.query).BuildIndex(); };

  core::DashEngine probe = core::DashEngine::FromParts(app, build_for());
  auto by_df = probe.index().KeywordsByDf();
  ASSERT_FALSE(by_df.empty());
  const std::vector<std::vector<std::string>> queries = {
      {by_df.front().first},
      {by_df[by_df.size() / 2].first},
      {by_df.front().first, by_df[by_df.size() / 4].first},
      {by_df.back().first}};

  util::ThreadPool pool1(1), pool2(2), pool8(8);
  core::ShardedEngine e1(app, build_for(), 4, &pool1);
  core::ShardedEngine e2(app, build_for(), 4, &pool2);
  core::ShardedEngine e8(app, build_for(), 4, &pool8);

  for (const auto& keywords : queries) {
    for (int k : {1, 3, 10}) {
      auto r1 = e1.Search(keywords, k, 60);
      auto r2 = e2.Search(keywords, k, 60);
      auto r8 = e8.Search(keywords, k, 60);
      ASSERT_EQ(r1.size(), r2.size());
      ASSERT_EQ(r1.size(), r8.size());
      for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].url, r2[i].url);
        EXPECT_EQ(r1[i].url, r8[i].url);
        EXPECT_EQ(r1[i].score, r2[i].score);
        EXPECT_EQ(r1[i].score, r8[i].score);
        EXPECT_EQ(r1[i].fragments, r2[i].fragments);
        EXPECT_EQ(r1[i].fragments, r8[i].fragments);
        EXPECT_EQ(r1[i].size_words, r2[i].size_words);
        EXPECT_EQ(r1[i].size_words, r8[i].size_words);
        EXPECT_EQ(r1[i].params, r2[i].params);
        EXPECT_EQ(r1[i].params, r8[i].params);
      }
    }
  }
}

}  // namespace
}  // namespace dash
