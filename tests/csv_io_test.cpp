// Table/database persistence tests.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "db/csv_io.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"

namespace dash::db {
namespace {

TEST(CsvIo, TableRoundTrip) {
  Database db = dash::testing::MakeFoodDb();
  std::stringstream buffer;
  SaveTable(db.table("restaurant"), buffer);
  Table loaded = LoadTable(buffer);
  EXPECT_EQ(loaded.name(), "restaurant");
  EXPECT_EQ(loaded.schema().ToString(), db.table("restaurant").schema().ToString());
  EXPECT_EQ(loaded.rows(), db.table("restaurant").rows());
}

TEST(CsvIo, TableRoundTripWithNullsAndSpecials) {
  Table t("t", Schema({{"t", "a", ValueType::kInt},
                       {"t", "b", ValueType::kString},
                       {"t", "c", ValueType::kDouble}}));
  t.AddRow({Value::Null(), "tab\tnewline\n", 1.5});
  t.AddRow({7, Value::Null(), Value::Null()});
  std::stringstream buffer;
  SaveTable(t, buffer);
  Table loaded = LoadTable(buffer);
  EXPECT_EQ(loaded.rows(), t.rows());
}

TEST(CsvIo, MalformedTableRejected) {
  std::stringstream empty("");
  EXPECT_THROW(LoadTable(empty), CsvIoError);
  std::stringstream no_columns("justname\n");
  EXPECT_THROW(LoadTable(no_columns), CsvIoError);
  std::stringstream bad_type("t\ta:widget\n");
  EXPECT_THROW(LoadTable(bad_type), CsvIoError);
  std::stringstream bad_arity("t\ta:int\n1\t2\n");
  EXPECT_THROW(LoadTable(bad_arity), std::runtime_error);
}

TEST(CsvIo, DatabaseRoundTrip) {
  namespace fs = std::filesystem;
  Database db = dash::testing::MakeFoodDb();
  fs::path dir = fs::path(::testing::TempDir()) / "dash_csv_io_test";
  fs::create_directories(dir);

  SaveDatabase(db, dir.string());
  Database loaded = LoadDatabase(dir.string());

  EXPECT_EQ(loaded.TableNames(), db.TableNames());
  for (const std::string& name : db.TableNames()) {
    EXPECT_EQ(loaded.table(name).rows(), db.table(name).rows()) << name;
  }
  ASSERT_EQ(loaded.foreign_keys().size(), db.foreign_keys().size());
  EXPECT_EQ(loaded.foreign_keys()[0].from_table,
            db.foreign_keys()[0].from_table);
  fs::remove_all(dir);
}

TEST(CsvIo, TpchDatabaseRoundTrip) {
  namespace fs = std::filesystem;
  Database db = dash::tpch::Generate(dash::tpch::Scale::kTiny);
  fs::path dir = fs::path(::testing::TempDir()) / "dash_csv_io_tpch";
  fs::create_directories(dir);
  SaveDatabase(db, dir.string());
  Database loaded = LoadDatabase(dir.string());
  for (const std::string& name : db.TableNames()) {
    EXPECT_EQ(loaded.table(name).rows(), db.table(name).rows()) << name;
  }
  fs::remove_all(dir);
}

TEST(CsvIo, MissingDirectoryThrows) {
  Database db = dash::testing::MakeFoodDb();
  EXPECT_THROW(SaveDatabase(db, "/nonexistent/dir"), CsvIoError);
  EXPECT_THROW(LoadDatabase("/nonexistent/dir"), CsvIoError);
}

}  // namespace
}  // namespace dash::db
