// Baseline tests: the DISCOVER-style relational keyword search reproduces
// the paper's Section II example, and the whole-page engine exhibits the
// blow-up and redundancy that motivate fragments (Section IV).
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/page_engine.h"
#include "baseline/rdb_keyword_search.h"
#include "core/dash_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"

namespace dash::baseline {
namespace {

// ---------- Relational keyword search (Section II) ----------

TEST(RelationalKeywordSearch, PaperBurgerExample) {
  db::Database db = dash::testing::MakeFoodDb();
  auto results = RelationalKeywordSearch(db, {"burger"});

  // The paper's three result records:
  //   1) comment 205 ("Thai burger") alone,
  //   2) comment 202 ("Unique burger") alone,
  //   3) restaurant 001 |x| comment 201 ("Burger experts").
  ASSERT_EQ(results.size(), 3u);
  std::vector<std::string> rendered;
  for (const auto& r : results) rendered.push_back(r.ToString(db));
  std::sort(rendered.begin(), rendered.end());
  EXPECT_EQ(rendered[0],
            "comment(201, 1, 109, Burger experts, 06/10) |x| "
            "restaurant(1, Burger Queen, American, 10, 4.3)");
  EXPECT_EQ(rendered[1], "comment(202, 4, 132, Unique burger, 05/10)");
  EXPECT_EQ(rendered[2], "comment(205, 6, 180, Thai burger, 08/11)");
}

TEST(RelationalKeywordSearch, DefectNoContextRows) {
  // The defect Section II calls out: result 205 lacks its restaurant
  // (Bangkok) because that record does not contain "burger".
  db::Database db = dash::testing::MakeFoodDb();
  auto results = RelationalKeywordSearch(db, {"burger"});
  bool any_single_comment = false;
  for (const auto& r : results) {
    if (r.records.size() == 1 && r.records[0].table == "comment") {
      any_single_comment = true;
    }
  }
  EXPECT_TRUE(any_single_comment);
}

TEST(RelationalKeywordSearch, DefectCustomerWithoutComments) {
  // Another Section II defect: searching the author's name returns the
  // bare customer record — the comments David wrote do not contain
  // "david", so they are not joined in.
  db::Database db = dash::testing::MakeFoodDb();
  auto results = RelationalKeywordSearch(db, {"david"});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].records.size(), 1u);
  EXPECT_EQ(results[0].records[0].table, "customer");
}

TEST(RelationalKeywordSearch, MatchesAcrossFkChains) {
  // Multi-keyword query: "queen" matches restaurant 1, "experts" matches
  // comment 201, and the FK link merges them into one joined result.
  db::Database db = dash::testing::MakeFoodDb();
  auto results = RelationalKeywordSearch(db, {"queen", "experts"});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].records.size(), 2u);
  EXPECT_EQ(results[0].ToString(db),
            "comment(201, 1, 109, Burger experts, 06/10) |x| "
            "restaurant(1, Burger Queen, American, 10, 4.3)");
}

TEST(RelationalKeywordSearch, NoMatches) {
  db::Database db = dash::testing::MakeFoodDb();
  EXPECT_TRUE(RelationalKeywordSearch(db, {"pizza"}).empty());
}

TEST(RelationalKeywordSearch, MatchIsCaseInsensitiveSubstring) {
  db::Database db = dash::testing::MakeFoodDb();
  EXPECT_FALSE(RelationalKeywordSearch(db, {"BURG"}).empty());
}

TEST(RecordMatches, ChecksEveryAttribute) {
  db::Row row = {db::Value(1), db::Value("Burger Queen"), db::Value(4.3)};
  EXPECT_TRUE(RecordMatches(row, {"queen"}));
  EXPECT_TRUE(RecordMatches(row, {"4.3"}));
  EXPECT_FALSE(RecordMatches(row, {"king"}));
  EXPECT_TRUE(RecordMatches(row, {"king", "queen"}));  // any keyword
}

// ---------- Whole-page engine (Section IV's intuitive approach) ----------

class PageEngineTest : public ::testing::Test {
 protected:
  PageEngineTest()
      : db_(dash::testing::MakeFoodDb()),
        engine_(db_, dash::testing::MakeSearchApp()) {}

  db::Database db_;
  PageEngine engine_;
};

TEST_F(PageEngineTest, EnumeratesAllCanonicalPages) {
  // American group: 4 range values -> 10 intervals; Thai: 1 -> 1 page.
  EXPECT_EQ(engine_.page_count(), 11u);
  EXPECT_FALSE(engine_.truncated());
}

TEST_F(PageEngineTest, PageBlowUpVersusFragments) {
  // 11 pages vs 5 fragments, and duplicated words: the American chain's
  // content is stored in every covering interval.
  core::Crawler crawler(db_, dash::testing::MakeSearchApp().query);
  core::FragmentIndexBuild build = crawler.BuildIndex();
  EXPECT_GT(engine_.page_count(), build.catalog.size());
  std::uint64_t fragment_words = 0;
  for (std::size_t f = 0; f < build.catalog.size(); ++f) {
    fragment_words +=
        build.catalog.keyword_total(static_cast<core::FragmentHandle>(f));
  }
  EXPECT_GT(engine_.TotalPageWords(), 2 * fragment_words);
}

TEST_F(PageEngineTest, SearchFindsCoveringPages) {
  auto results = engine_.Search({"burger"}, 20);
  // Every page containing a burger fragment qualifies: of the 10 American
  // intervals over budgets {9,10,12,18}, the 8 covering value 10 or 12,
  // plus the Thai page ("Thai burger") -> 9.
  EXPECT_EQ(results.size(), 9u);
  for (const auto& r : results) {
    EXPECT_GT(r.score, 0.0);
    EXPECT_FALSE(r.url.empty());
  }
}

TEST_F(PageEngineTest, TopResultsAreRedundant) {
  // The paper's P1-vs-P2 problem: content-covered pages crowd the top-k.
  auto results = engine_.Search({"burger"}, 10);
  EXPECT_GT(PageEngine::RedundantFraction(results), 0.4);
}

TEST_F(PageEngineTest, DashResultsAreNotRedundant) {
  core::BuildOptions options;
  options.algorithm = core::CrawlAlgorithm::kReference;
  core::DashEngine dash =
      core::DashEngine::Build(db_, dash::testing::MakeSearchApp(), options);
  auto results = dash.Search({"burger"}, 10, 20);
  // Convert for the shared redundancy measure.
  std::vector<PageResult> as_pages;
  for (const auto& r : results) {
    as_pages.push_back(PageResult{r.url, r.score, r.size_words, r.fragments});
  }
  EXPECT_DOUBLE_EQ(PageEngine::RedundantFraction(as_pages), 0.0);
}

TEST_F(PageEngineTest, MaxPagesTruncates) {
  PageEngineOptions options;
  options.max_pages = 3;
  PageEngine truncated(db_, dash::testing::MakeSearchApp(), options);
  EXPECT_EQ(truncated.page_count(), 3u);
  EXPECT_TRUE(truncated.truncated());
}

TEST_F(PageEngineTest, IndexSizeExceedsFragmentIndex) {
  core::Crawler crawler(db_, dash::testing::MakeSearchApp().query);
  core::FragmentIndexBuild build = crawler.BuildIndex();
  EXPECT_GT(engine_.IndexSizeBytes(), build.index.SizeBytes());
}

TEST(PageEngine, RejectsMultiRangeQueries) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  app.query = sql::Parse(
      "SELECT name FROM restaurant "
      "WHERE budget BETWEEN $a AND $b AND rate BETWEEN $c AND $d");
  app.codec = webapp::QueryStringCodec(
      {{"a", "a"}, {"b", "b"}, {"c", "c"}, {"d", "d"}});
  EXPECT_THROW(PageEngine(db, app), std::runtime_error);
}

TEST(PageEngine, NoRangeAttributeYieldsOnePagePerFragment) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  app.query = sql::Parse("SELECT name, budget FROM restaurant "
                         "WHERE cuisine = $cuisine");
  app.codec = webapp::QueryStringCodec(
      std::vector<webapp::ParamBinding>{{"c", "cuisine"}});
  PageEngine engine(db, app);
  EXPECT_EQ(engine.page_count(), 2u);  // American, Thai
}

TEST(RedundantFraction, EmptyAndDisjoint) {
  EXPECT_DOUBLE_EQ(PageEngine::RedundantFraction({}), 0.0);
  std::vector<PageResult> disjoint = {
      {"u1", 1.0, 5, {0, 1}},
      {"u2", 0.5, 5, {2}},
  };
  EXPECT_DOUBLE_EQ(PageEngine::RedundantFraction(disjoint), 0.0);
  std::vector<PageResult> covered = {
      {"u1", 1.0, 5, {0, 1, 2}},
      {"u2", 0.5, 5, {1, 2}},
  };
  EXPECT_DOUBLE_EQ(PageEngine::RedundantFraction(covered), 0.5);
}

}  // namespace
}  // namespace dash::baseline
