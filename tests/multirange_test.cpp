// End-to-end coverage of the non-standard selection shapes: equality-only
// queries (every db-page is a single fragment) and multi-range-attribute
// queries (the generic empty-box fragment graph drives page assembly).
#include <gtest/gtest.h>

#include <set>

#include "core/dash_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"

namespace dash::core {
namespace {

DashEngine BuildEngine(const std::string& sql,
                       std::vector<webapp::ParamBinding> bindings) {
  webapp::WebAppInfo app;
  app.name = "App";
  app.uri = "example.com/app";
  app.query = sql::Parse(sql);
  app.codec = webapp::QueryStringCodec(std::move(bindings));
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  return DashEngine::Build(dash::testing::MakeFoodDb(), app, options);
}

// ---------- Equality-only (zero range attributes) ----------

TEST(EqualityOnly, PagesAreSingleFragments) {
  DashEngine engine = BuildEngine(
      "SELECT name, budget, rate FROM restaurant WHERE cuisine = $c",
      {{"c", "c"}});
  EXPECT_EQ(engine.catalog().size(), 2u);      // American, Thai
  EXPECT_EQ(engine.graph().edge_count(), 0u);  // no combinable pages
  // Even a huge size threshold cannot grow a page: no neighbors exist.
  auto results = engine.Search({"wandy's"}, 3, 100000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].fragments.size(), 1u);
  EXPECT_EQ(results[0].url, "example.com/app?c=American");
}

TEST(EqualityOnly, UrlHasNoRangeParameters) {
  DashEngine engine = BuildEngine(
      "SELECT name, budget, rate FROM restaurant WHERE cuisine = $c",
      {{"c", "c"}});
  auto results = engine.Search({"thaifood"}, 1, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].url, "example.com/app?c=Thai");
  EXPECT_EQ(results[0].params.size(), 1u);
}

// ---------- Two range attributes (generic graph) ----------

class TwoRangeTest : public ::testing::Test {
 protected:
  TwoRangeTest()
      : engine_(BuildEngine(
            "SELECT name, cuisine FROM restaurant "
            "WHERE budget BETWEEN $bl AND $bu AND rate BETWEEN $rl AND $ru",
            {{"bl", "bl"}, {"bu", "bu"}, {"rl", "rl"}, {"ru", "ru"}})) {}

  DashEngine engine_;
};

TEST_F(TwoRangeTest, FragmentsArePointsInTheRangePlane) {
  // Distinct (budget, rate) pairs: (10,4.3),(18,2.2),(12,4.1),(12,4.2),
  // (10,4.8),(10,3.9),(9,4.3) -> 7 fragments in one group.
  EXPECT_EQ(engine_.catalog().size(), 7u);
  EXPECT_EQ(engine_.graph().num_groups(), 1u);
  EXPECT_EQ(engine_.graph().num_range_attributes(), 2u);
  EXPECT_GT(engine_.graph().edge_count(), 0u);
}

TEST_F(TwoRangeTest, SearchAssemblesBoxPages) {
  auto results = engine_.Search({"wandy's"}, 2, 10);
  ASSERT_FALSE(results.empty());
  const SearchResult& r = results[0];
  // The page's parameters span the bounding box of its fragments.
  ASSERT_EQ(r.params.size(), 4u);
  db::Value bl = db::Value::Parse(r.params.at("bl"), db::ValueType::kInt);
  db::Value bu = db::Value::Parse(r.params.at("bu"), db::ValueType::kInt);
  db::Value rl = db::Value::Parse(r.params.at("rl"), db::ValueType::kDouble);
  db::Value ru = db::Value::Parse(r.params.at("ru"), db::ValueType::kDouble);
  for (FragmentHandle f : r.fragments) {
    const db::Row& id = engine_.catalog().id(f);
    EXPECT_TRUE(!(id[0] < bl) && !(bu < id[0]));
    EXPECT_TRUE(!(id[1] < rl) && !(ru < id[1]));
  }
  // Both Wandy's variants (12,4.1) and (12,4.2) are box-adjacent, so the
  // expansion merges them.
  EXPECT_GE(r.fragments.size(), 2u);
}

TEST_F(TwoRangeTest, ExpansionFollowsBoxAdjacency) {
  // Every result's fragment set must be connected in the fragment graph.
  for (const auto& r : engine_.Search({"american"}, 3, 15)) {
    if (r.fragments.size() < 2) continue;
    // BFS over the subgraph induced by the page's fragments.
    std::set<FragmentHandle> members(r.fragments.begin(), r.fragments.end());
    std::set<FragmentHandle> reached = {r.fragments[0]};
    std::vector<FragmentHandle> frontier = {r.fragments[0]};
    while (!frontier.empty()) {
      FragmentHandle f = frontier.back();
      frontier.pop_back();
      for (FragmentHandle n : engine_.graph().Neighbors(f)) {
        if (members.contains(n) && reached.insert(n).second) {
          frontier.push_back(n);
        }
      }
    }
    EXPECT_EQ(reached.size(), members.size()) << "disconnected page";
  }
}

}  // namespace
}  // namespace dash::core
