// Snapshot publication under concurrency: N reader threads search while a
// writer applies incremental inserts/deletes. Every answer a reader gets
// must byte-match a quiescent re-search of the exact snapshot it was served
// from (published snapshots are immutable), readers must only ever observe
// published snapshots in publication order, and generations must strictly
// increase. The suite is the designated race detector for the serving
// path: it runs under the tsan preset like every other test.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/crawler.h"
#include "core/index_snapshot.h"
#include "core/index_update.h"
#include "testing/fooddb.h"

namespace dash::core {
namespace {

TEST(SnapshotPublisher, EmptyPublisherHasNothingPublished) {
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.Current(), nullptr);
  EXPECT_EQ(publisher.CurrentGeneration(), 0u);
}

TEST(SnapshotPublisher, RejectsNullAndNonMonotonePublication) {
  db::Database db = dash::testing::MakeFoodDb();
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  SnapshotPtr first =
      IndexSnapshot::Create(app, Crawler(db, app.query).BuildIndex());
  SnapshotPtr second =
      IndexSnapshot::Create(app, Crawler(db, app.query).BuildIndex());
  ASSERT_GT(second->generation(), first->generation());

  SnapshotPublisher publisher;
  EXPECT_THROW(publisher.Publish(nullptr), std::invalid_argument);
  publisher.Publish(second);
  EXPECT_EQ(publisher.CurrentGeneration(), second->generation());
  // Re-publishing the same generation (or an older one) must be refused —
  // generation keys in the result cache rely on strict monotonicity.
  EXPECT_THROW(publisher.Publish(second), std::logic_error);
  EXPECT_THROW(publisher.Publish(first), std::logic_error);
  EXPECT_EQ(publisher.Current(), second);
}

TEST(SnapshotPublisher, GenerationsStrictlyIncreaseAcrossUpdates) {
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  UpdatableIndex updatable(dash::testing::MakeFoodDb(), app);
  std::uint64_t generation = updatable.snapshot()->generation();
  ASSERT_GT(generation, 0u);

  updatable.Insert("comment", {300, 1, 109, "first burger", "07/11"});
  ASSERT_GT(updatable.snapshot()->generation(), generation);
  generation = updatable.snapshot()->generation();

  updatable.Delete("comment", {300, 1, 109, "first burger", "07/11"});
  EXPECT_GT(updatable.snapshot()->generation(), generation);
}

TEST(SnapshotConcurrency, ReadersRaceWriterWithoutTearing) {
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  UpdatableIndex updatable(dash::testing::MakeFoodDb(), app);
  const SnapshotPublisher& publisher = updatable.publisher();

  constexpr int kOps = 40;
  constexpr int kReaders = 4;
  constexpr std::size_t kMaxObservations = 4096;
  const std::vector<std::vector<std::string>> probes = {
      {"burger"}, {"fries"}, {"burger", "coffee"}};

  struct Observation {
    SnapshotPtr snapshot;
    std::size_t probe = 0;
    std::vector<SearchResult> results;
  };
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::size_t iteration = 0;
      while (!done.load(std::memory_order_acquire)) {
        SnapshotPtr snapshot = publisher.Current();
        std::size_t probe = iteration++ % probes.size();
        std::vector<SearchResult> results =
            snapshot->Search(probes[probe], 3, 0);
        if (observed[t].size() < kMaxObservations) {
          observed[t].push_back(
              {std::move(snapshot), probe, std::move(results)});
        }
      }
    });
  }

  // The writer: every op publishes exactly one new snapshot, recorded here
  // in publication order (the initial full-crawl snapshot included).
  std::vector<SnapshotPtr> published;
  published.reserve(kOps + 1);
  published.push_back(updatable.snapshot());
  std::vector<db::Row> live;
  for (int op = 0; op < kOps; ++op) {
    if (op % 3 == 2 && !live.empty()) {
      updatable.Delete("comment", live.back());
      live.pop_back();
    } else {
      db::Row row{db::Value(300 + op), db::Value(1 + op % 7), db::Value(109),
                  db::Value(op % 2 == 0 ? "burger blitz" : "curly fries"),
                  db::Value("07/11")};
      updatable.Insert("comment", row);
      live.push_back(std::move(row));
    }
    published.push_back(updatable.snapshot());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // Publication itself was strictly monotone.
  for (std::size_t i = 1; i < published.size(); ++i) {
    ASSERT_GT(published[i]->generation(), published[i - 1]->generation());
  }
  std::set<const IndexSnapshot*> published_set;
  for (const SnapshotPtr& snapshot : published) {
    published_set.insert(snapshot.get());
  }

  for (int t = 0; t < kReaders; ++t) {
    SCOPED_TRACE("reader " + std::to_string(t));
    ASSERT_FALSE(observed[t].empty());
    std::uint64_t last_generation = 0;
    for (const Observation& obs : observed[t]) {
      // Readers only ever see snapshots the writer actually published,
      // and see them in publication order.
      ASSERT_EQ(published_set.count(obs.snapshot.get()), 1u);
      ASSERT_GE(obs.snapshot->generation(), last_generation);
      last_generation = obs.snapshot->generation();
      // The racy answer byte-matches a quiescent re-search of the same
      // generation: the snapshot a reader was served never mutated.
      std::vector<SearchResult> replay =
          obs.snapshot->Search(probes[obs.probe], 3, 0);
      ASSERT_EQ(replay.size(), obs.results.size());
      for (std::size_t i = 0; i < replay.size(); ++i) {
        ASSERT_EQ(replay[i].url, obs.results[i].url);
        ASSERT_EQ(replay[i].fragments, obs.results[i].fragments);
        ASSERT_EQ(replay[i].score, obs.results[i].score);
        ASSERT_EQ(replay[i].params, obs.results[i].params);
      }
    }
  }
}

}  // namespace
}  // namespace dash::core
