// Fixed-seed block of the differential fuzzing harness (tools/dash_fuzz),
// run under ctest so the harness itself — generator, oracles, and the
// invariants they pin down — is tier-1-guarded. The block is split into
// ranges so `ctest -j` spreads the work, and carries the `fuzz` label so
// the asan/tsan presets can select it (`ctest -L fuzz`).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "testing/instance_gen.h"
#include "testing/oracles.h"
#include "util/thread_pool.h"

namespace dash::testing {
namespace {

// Must match tools/dash_fuzz.cc so a failing seed here replays with
// `dash_fuzz --seed N`.
std::uint64_t WorkloadSeed(std::uint64_t seed) { return seed ^ 0x5EEDF00DULL; }

// Seeds are independent, so the range fans out over the shared worker
// pool (like `dash_fuzz --threads`); each seed's check stays bit-for-bit
// deterministic and failures are reported in seed order.
void CheckSeedRange(std::uint64_t first, std::uint64_t last) {
  const std::size_t count = static_cast<std::size_t>(last - first + 1);
  std::vector<std::string> failures(count);
  util::ThreadPool::Shared().ParallelFor(count, [&](std::size_t i) {
    std::uint64_t seed = first + i;
    RandomInstance inst = GenerateInstance(seed);
    OracleReport report = CheckInstance(inst, WorkloadSeed(seed));
    if (!report.ok()) {
      failures[i] = "replay: dash_fuzz --seed " + std::to_string(seed) +
                    "\n" + report.ToString();
    }
  });
  for (const std::string& failure : failures) {
    if (!failure.empty()) {
      ADD_FAILURE() << failure;
      return;  // one seed's dump is enough to debug
    }
  }
}

TEST(FuzzSmoke, Seeds1To30) { CheckSeedRange(1, 30); }
TEST(FuzzSmoke, Seeds31To60) { CheckSeedRange(31, 60); }
TEST(FuzzSmoke, Seeds61To90) { CheckSeedRange(61, 90); }
TEST(FuzzSmoke, Seeds91To120) { CheckSeedRange(91, 120); }

// Directed shapes the random sweep hits only occasionally.
TEST(FuzzSmoke, DirectedFourTableChain) {
  GenOptions options;
  options.force_tables = 4;
  for (std::uint64_t seed = 500; seed < 505; ++seed) {
    RandomInstance inst = GenerateInstance(seed, options);
    OracleReport report = CheckInstance(inst, WorkloadSeed(seed));
    EXPECT_TRUE(report.ok()) << inst.summary << "\n" << report.ToString();
  }
}

TEST(FuzzSmoke, DirectedTwoRangeAttributes) {
  GenOptions options;
  options.force_eq = 0;
  options.force_range = 2;
  for (std::uint64_t seed = 600; seed < 605; ++seed) {
    RandomInstance inst = GenerateInstance(seed, options);
    OracleReport report = CheckInstance(inst, WorkloadSeed(seed));
    EXPECT_TRUE(report.ok()) << inst.summary << "\n" << report.ToString();
  }
}

TEST(FuzzSmoke, DirectedEmptyRoot) {
  GenOptions options;
  options.empty_root = true;
  for (std::uint64_t seed = 700; seed < 705; ++seed) {
    RandomInstance inst = GenerateInstance(seed, options);
    OracleReport report = CheckInstance(inst, WorkloadSeed(seed));
    EXPECT_TRUE(report.ok()) << inst.summary << "\n" << report.ToString();
  }
}

TEST(FuzzSmoke, DirectedOuterJoin) {
  GenOptions options;
  options.force_outer = 1;
  for (std::uint64_t seed = 800; seed < 805; ++seed) {
    RandomInstance inst = GenerateInstance(seed, options);
    OracleReport report = CheckInstance(inst, WorkloadSeed(seed));
    EXPECT_TRUE(report.ok()) << inst.summary << "\n" << report.ToString();
  }
}

}  // namespace
}  // namespace dash::testing
