// Composition tests: the extension modules chained the way a deployment
// would chain them — crawl, prune, persist, reload, shard, update — must
// commute with the direct path.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/index_io.h"
#include "core/multi_app.h"
#include "core/index_update.h"
#include "core/pruning.h"
#include "core/result_cache.h"
#include "core/sharded_engine.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"

namespace dash::core {
namespace {

webapp::WebAppInfo TpchApp() {
  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "example.com/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
  return app;
}

std::multiset<std::string> Urls(const std::vector<SearchResult>& results) {
  std::multiset<std::string> urls;
  for (const auto& r : results) urls.insert(r.url);
  return urls;
}

TEST(Composition, CrawlPruneSaveLoadSearch) {
  // MR crawl -> prune -> persist -> reload: the reloaded engine answers
  // like the engine pruned in memory.
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app = TpchApp();
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kIntegrated;
  options.min_fragment_keywords = 40;
  DashEngine pruned = DashEngine::Build(db, app, options);

  std::stringstream buffer;
  SaveEngine(pruned, buffer);
  DashEngine loaded = LoadEngine(buffer);

  EXPECT_EQ(loaded.catalog().size(), pruned.catalog().size());
  auto by_df = pruned.index().KeywordsByDf();
  ASSERT_FALSE(by_df.empty());
  const std::string hot = by_df.front().first;
  EXPECT_EQ(Urls(loaded.Search({hot}, 5, 100)),
            Urls(pruned.Search({hot}, 5, 100)));
}

TEST(Composition, UpdateThenShardThenSearch) {
  // Incremental updates feed a sharded serving deployment.
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  UpdatableIndex updatable(dash::testing::MakeFoodDb(), app.query);
  updatable.Insert("restaurant", {8, "Shard Shack", "American", 11, 4.4});
  updatable.Insert("comment", {210, 8, 120, "Sharded burgers", "01/12"});

  ShardedEngine sharded(app, updatable.CopyBuild(), 3);
  EXPECT_EQ(sharded.fragment_count(), 6u);
  auto results = sharded.Search({"sharded"}, 1, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].url, "www.example.com/Search?c=American&l=11&u=11");
}

TEST(Composition, UpdateInvalidatesResultCache) {
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  UpdatableIndex updatable(dash::testing::MakeFoodDb(), app);

  // The cache follows the updater's publication point; entries key on the
  // published snapshot's generation.
  CachingEngine caching(updatable.publisher(), 16);
  EXPECT_TRUE(caching.Search({"shiny"}, 1, 1).empty());

  // The database changes; the updater publishes a new snapshot and the
  // cached entry goes stale automatically (stale empty answer must not
  // stick — no invalidation call anywhere).
  updatable.Insert("restaurant", {9, "Shiny Diner", "American", 13, 4.9});
  EXPECT_EQ(caching.Search({"shiny"}, 1, 1).size(), 1u);
  EXPECT_EQ(caching.cache().stats().hits, 0u);
}

TEST(Composition, PrunedShardedAgreesWithPrunedSingle) {
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app = TpchApp();
  FragmentIndexBuild build = Crawler(db, app.query).BuildIndex();
  FragmentIndexBuild pruned = PruneFragments(build, 40, nullptr);

  DashEngine single = DashEngine::FromParts(app, PruneFragments(build, 40));
  ShardedEngine sharded(app, std::move(pruned), 4);
  EXPECT_EQ(sharded.fragment_count(), single.catalog().size());

  auto by_df = single.index().KeywordsByDf();
  const std::string hot = by_df.front().first;
  EXPECT_EQ(Urls(sharded.Search({hot}, 8, 120)),
            Urls(single.Search({hot}, 8, 120)));
}

TEST(Composition, MirrorEnginesFromDifferentCrawlAlgorithmsDeduplicate) {
  // SW-built and INT-built engines over the same app produce identical
  // content hashes, so a federation of both collapses to one result set.
  db::Database db = dash::testing::MakeFoodDb();
  BuildOptions sw, integrated;
  sw.algorithm = CrawlAlgorithm::kStepwise;
  integrated.algorithm = CrawlAlgorithm::kIntegrated;

  webapp::WebAppInfo a = dash::testing::MakeSearchApp();
  webapp::WebAppInfo b = dash::testing::MakeSearchApp();
  b.name = "SearchB";
  b.uri = "b.example.com/Search";

  MultiAppEngine multi;
  multi.AddApp(DashEngine::Build(db, a, sw));
  multi.AddApp(DashEngine::Build(db, b, integrated));
  auto results = multi.Search({"burger"}, 10, 20);
  EXPECT_EQ(results.size(), 2u);  // deduplicated to one app's pages
}

}  // namespace
}  // namespace dash::core
