// Tests for the shared MapReduce plumbing of the crawl pipelines
// (core/mr_common.h): table export, row codecs, join jobs over trees, and
// phase snapshotting.
#include <gtest/gtest.h>

#include "core/crawler.h"
#include "core/mr_common.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "util/csv.h"

namespace dash::core {
namespace {

TEST(MrCommon, ExportTablePreservesRowsAndSchema) {
  db::Database db = dash::testing::MakeFoodDb();
  MrTable exported = ExportTable(db.table("restaurant"));
  EXPECT_EQ(exported.data.size(), 7u);
  EXPECT_EQ(exported.schema.size(), 5u);
  for (const mr::Record& r : exported.data) {
    EXPECT_TRUE(r.key.empty());
    db::Row row = ParseEncodedRow(exported.schema, r.value);
    EXPECT_EQ(row.size(), 5u);
  }
}

TEST(MrCommon, EncodeParseRowRoundTrip) {
  db::Schema schema({{"t", "a", db::ValueType::kInt},
                     {"t", "b", db::ValueType::kString},
                     {"t", "c", db::ValueType::kDouble}});
  db::Row row = {7, "text with\ttab", 2.5};
  EXPECT_EQ(ParseEncodedRow(schema, EncodeRow(row)), row);
  db::Row nulls = {db::Value::Null(), db::Value::Null(), db::Value::Null()};
  EXPECT_EQ(ParseEncodedRow(schema, EncodeRow(nulls)), nulls);
}

TEST(MrCommon, ParseEncodedRowArityChecked) {
  db::Schema schema({{"t", "a", db::ValueType::kInt}});
  EXPECT_THROW(ParseEncodedRow(schema, "1\t2"), std::runtime_error);
}

TEST(MrCommon, MrJoinInnerMatchesExpectedRows) {
  db::Database db = dash::testing::MakeFoodDb();
  mr::Cluster cluster;
  MrTable joined = MrJoin(cluster, "test", ExportTable(db.table("comment")),
                          ExportTable(db.table("customer")), "comment.uid",
                          "customer.uid", sql::JoinKind::kInner, 2);
  EXPECT_EQ(joined.data.size(), 6u);  // every comment has its customer
  EXPECT_EQ(joined.schema.size(), 5u + 2u);
  // Column positions survive: customer.uname is the last field.
  int uname = joined.schema.IndexOf("customer.uname");
  EXPECT_EQ(uname, 6);
}

TEST(MrCommon, MrJoinLeftOuterPadsNulls) {
  db::Database db = dash::testing::MakeFoodDb();
  mr::Cluster cluster;
  MrTable joined = MrJoin(cluster, "test", ExportTable(db.table("restaurant")),
                          ExportTable(db.table("comment")), "restaurant.rid",
                          "comment.rid", sql::JoinKind::kLeftOuter, 2);
  EXPECT_EQ(joined.data.size(), 8u);
  int comment_col = joined.schema.IndexOf("comment.comment");
  std::size_t padded = 0;
  for (const mr::Record& r : joined.data) {
    db::Row row = ParseEncodedRow(joined.schema, r.value);
    if (row[static_cast<std::size_t>(comment_col)].is_null()) ++padded;
  }
  EXPECT_EQ(padded, 2u);
}

TEST(MrCommon, MrJoinTreeMatchesSingleNodeJoin) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = dash::testing::MakeSearchApp().query;
  mr::Cluster cluster;
  MrTable joined = MrJoinTree(
      cluster, db, *query.from,
      [&db](const std::string& rel) { return ExportTable(db.table(rel)); },
      2, "test-");
  Crawler crawler(db, query);
  EXPECT_EQ(joined.data.size(), crawler.EvalJoin().row_count());
  // One MR job per internal join node.
  EXPECT_EQ(cluster.history().size(), 2u);
}

TEST(MrCommon, SnapshotPhaseSumsJobWindow) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = dash::testing::MakeSearchApp().query;
  mr::Cluster cluster;
  MrJoinTree(
      cluster, db, *query.from,
      [&db](const std::string& rel) { return ExportTable(db.table(rel)); },
      2, "t-");
  CrawlPhase all = SnapshotPhase(cluster, 0, "all");
  CrawlPhase last = SnapshotPhase(cluster, 1, "last");
  EXPECT_EQ(all.metrics.jobs, 2u);
  EXPECT_EQ(last.metrics.jobs, 1u);
  EXPECT_GE(all.metrics.map_input_records, last.metrics.map_input_records);
  EXPECT_EQ(all.name, "all");
}

TEST(MrCommon, ResolvedJoinEdgesForQ3Shape) {
  db::Database db = dash::testing::MakeFoodDb();
  sql::PsjQuery query = sql::Parse(
      "SELECT * FROM restaurant LEFT JOIN (comment JOIN customer) "
      "WHERE cuisine = $c");
  auto edges = ResolvedJoinEdges(db, *query.from);
  ASSERT_EQ(edges.size(), 2u);
  // Post-order: inner (comment, customer) first, then the outer join.
  EXPECT_EQ(edges[0].first, "comment.uid");
  EXPECT_EQ(edges[0].second, "customer.uid");
  EXPECT_EQ(edges[1].first, "restaurant.rid");
  EXPECT_EQ(edges[1].second, "comment.rid");
}

TEST(MrCommon, InvertedListReducerSortsAndSums) {
  InvertedListReducer reducer;
  class Capture : public mr::Emitter {
   public:
    void Emit(std::string key, std::string value) override {
      records.push_back({std::move(key), std::move(value)});
    }
    mr::Dataset records;
  } out;
  auto pair = [](const char* frag, const char* occ) {
    return util::EncodeFields(std::vector<std::string>{frag, occ});
  };
  reducer.Reduce("w", {pair("A", "1"), pair("B", "5"), pair("A", "2")}, out);
  ASSERT_EQ(out.records.size(), 1u);
  auto fields = util::DecodeFields(out.records[0].value);
  // B:5 first (highest TF), then A:3 (summed).
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "B");
  EXPECT_EQ(fields[1], "5");
  EXPECT_EQ(fields[2], "A");
  EXPECT_EQ(fields[3], "3");
}

}  // namespace
}  // namespace dash::core
