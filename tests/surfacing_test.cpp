// Surfacing-baseline tests (paper Section I's rejected alternative):
// the trial-query-string crawler wastes invocations on empty/duplicate
// pages and cannot guarantee coverage, while Dash's database crawl covers
// every fragment by construction.
#include <gtest/gtest.h>

#include "baseline/surfacing.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"

namespace dash::baseline {
namespace {

TEST(Surfacing, InformedProbingEventuallyCoversFoodDb) {
  db::Database db = dash::testing::MakeFoodDb();
  SurfacingOptions options;
  options.strategy = ProbeStrategy::kInformed;
  options.max_invocations = 500;
  SurfacingReport report =
      SurfaceDbPages(db, dash::testing::MakeSearchApp(), options);
  EXPECT_EQ(report.fragments_total, 5u);
  EXPECT_EQ(report.fragments_covered, 5u);
  // Even with perfect value knowledge, waste is substantial: most random
  // (cuisine, lo, hi) combinations repeat already-seen content.
  EXPECT_GT(report.invocations, report.distinct_pages);
  EXPECT_GT(report.WasteFraction(), 0.0);
}

TEST(Surfacing, BlindProbingWastesAndMissesContent) {
  db::Database db = dash::testing::MakeFoodDb();
  SurfacingOptions options;
  options.strategy = ProbeStrategy::kBlind;
  options.max_invocations = 300;
  SurfacingReport report =
      SurfaceDbPages(db, dash::testing::MakeSearchApp(), options);
  // The blind dictionary never guesses "American"/"Thai": all empty pages,
  // nothing covered — the paper's completeness objection.
  EXPECT_EQ(report.fragments_covered, 0u);
  EXPECT_EQ(report.empty_pages, report.invocations);
  EXPECT_DOUBLE_EQ(report.WasteFraction(), 1.0);
}

TEST(Surfacing, ReportsArithmeticIsConsistent) {
  db::Database db = dash::testing::MakeFoodDb();
  SurfacingOptions options;
  options.max_invocations = 100;
  SurfacingReport report =
      SurfaceDbPages(db, dash::testing::MakeSearchApp(), options);
  EXPECT_EQ(report.invocations,
            report.empty_pages + report.duplicate_pages +
                report.distinct_pages);
  EXPECT_LE(report.fragments_covered, report.fragments_total);
}

TEST(Surfacing, DeterministicForFixedSeed) {
  db::Database db = dash::testing::MakeFoodDb();
  SurfacingOptions options;
  options.max_invocations = 50;
  options.seed = 123;
  SurfacingReport a = SurfaceDbPages(db, dash::testing::MakeSearchApp(), options);
  SurfacingReport b = SurfaceDbPages(db, dash::testing::MakeSearchApp(), options);
  EXPECT_EQ(a.invocations, b.invocations);
  EXPECT_EQ(a.distinct_pages, b.distinct_pages);
  EXPECT_EQ(a.fragments_covered, b.fragments_covered);
}

TEST(Surfacing, BudgetBoundsCoverageOnTpch) {
  // On a real-sized parameter space, a small invocation budget covers only
  // part of the content even with informed probing — the completeness gap
  // versus Dash's exhaustive database crawl.
  db::Database db = tpch::Generate(tpch::Scale::kTiny);
  webapp::WebAppInfo app;
  app.name = "Q2";
  app.uri = "example.com/q2";
  app.query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  app.codec =
      webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});

  SurfacingOptions options;
  options.max_invocations = 60;
  SurfacingReport report = SurfaceDbPages(db, app, options);
  EXPECT_EQ(report.invocations, 60u);
  EXPECT_GT(report.fragments_covered, 0u);
  EXPECT_LT(report.FragmentCoverage(), 1.0);
}

}  // namespace
}  // namespace dash::baseline
