// Cross-module property tests: randomized sweeps checking the system's
// invariants against independent oracles (brute-force recomputation,
// single-node relational operators, round-trips).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/dash_engine.h"
#include "core/mr_common.h"
#include "db/ops.h"
#include "sql/parser.h"
#include "testing/fooddb.h"
#include "tpch/tpch.h"
#include "util/random.h"

namespace dash {
namespace {

// ---------------------------------------------------------------------
// Top-k search invariants, swept over (k, s) on fooddb and TPC-H tiny.
// ---------------------------------------------------------------------

struct TopKCase {
  int k;
  std::uint64_t s;
};

class TopKPropertyTest : public ::testing::TestWithParam<TopKCase> {
 protected:
  static const core::DashEngine& Engine() {
    static const core::DashEngine engine = [] {
      core::BuildOptions options;
      options.algorithm = core::CrawlAlgorithm::kReference;
      webapp::WebAppInfo app;
      app.name = "Q2";
      app.uri = "example.com/q2";
      app.query = sql::Parse(
          "SELECT * FROM (customer JOIN orders) JOIN lineitem "
          "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
      app.codec =
          webapp::QueryStringCodec({{"r", "r"}, {"l", "min"}, {"u", "max"}});
      return core::DashEngine::Build(tpch::Generate(tpch::Scale::kTiny), app,
                                     options);
    }();
    return engine;
  }
};

TEST_P(TopKPropertyTest, ResultInvariantsHold) {
  const auto [k, s] = GetParam();
  const core::DashEngine& engine = Engine();
  // One hot, one warm keyword.
  auto by_df = engine.index().KeywordsByDf();
  ASSERT_GE(by_df.size(), 2u);
  for (const std::string& keyword :
       {by_df.front().first, by_df[by_df.size() / 2].first}) {
    auto results = engine.Search({keyword}, k, s);
    EXPECT_LE(results.size(), static_cast<std::size_t>(k));

    std::set<std::vector<core::FragmentHandle>> seen_pages;
    std::set<core::FragmentHandle> seen_fragments;
    for (const auto& r : results) {
      // (1) No duplicate pages, no shared fragments across results.
      EXPECT_TRUE(seen_pages.insert(r.fragments).second);
      for (core::FragmentHandle f : r.fragments) {
        EXPECT_TRUE(seen_fragments.insert(f).second);
      }
      // (2) Pages are contiguous runs within one equality group.
      for (std::size_t i = 1; i < r.fragments.size(); ++i) {
        EXPECT_EQ(r.fragments[i], r.fragments[i - 1] + 1);
        EXPECT_EQ(engine.graph().GroupOf(r.fragments[i]),
                  engine.graph().GroupOf(r.fragments[0]));
      }
      // (3) Reported size equals the sum of member keyword totals.
      std::uint64_t words = 0;
      for (core::FragmentHandle f : r.fragments) {
        words += engine.catalog().keyword_total(f);
      }
      EXPECT_EQ(r.size_words, words);
      // (4) Score equals the independent recomputation from postings.
      std::uint64_t occ = 0;
      for (const core::Posting& p : engine.index().Lookup(keyword)) {
        if (std::binary_search(r.fragments.begin(), r.fragments.end(),
                               p.fragment)) {
          occ += p.occurrences;
        }
      }
      double expected = words == 0 ? 0.0
                                   : engine.index().Idf(keyword) *
                                         static_cast<double>(occ) /
                                         static_cast<double>(words);
      EXPECT_NEAR(r.score, expected, 1e-12);
      EXPECT_GT(occ, 0u) << "every result page must contain the keyword";
      // (5) Undersized pages are only legal when the group is exhausted.
      if (r.size_words < s) {
        auto [first, last] = engine.graph().GroupSpan(
            engine.graph().GroupOf(r.fragments.front()));
        EXPECT_EQ(r.fragments.size(),
                  static_cast<std::size_t>(last - first + 1));
      }
      // (6) URL parameters reproduce the page's equality value and the
      // min/max of its range values.
      const db::Row& first_id = engine.catalog().id(r.fragments.front());
      const db::Row& last_id = engine.catalog().id(r.fragments.back());
      EXPECT_EQ(r.params.at("r"), first_id[0].ToString());
      EXPECT_EQ(r.params.at("min"), first_id[1].ToString());
      EXPECT_EQ(r.params.at("max"), last_id[1].ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKPropertyTest,
    ::testing::Values(TopKCase{1, 1}, TopKCase{1, 100}, TopKCase{5, 1},
                      TopKCase{5, 100}, TopKCase{5, 1000}, TopKCase{10, 50},
                      TopKCase{20, 200}, TopKCase{20, 100000}),
    [](const ::testing::TestParamInfo<TopKCase>& info) {
      return "k" + std::to_string(info.param.k) + "_s" +
             std::to_string(info.param.s);
    });

// ---------------------------------------------------------------------
// MR repartition join == in-memory hash join, on random tables with NULLs
// and duplicate keys.
// ---------------------------------------------------------------------

class MrJoinPropertyTest : public ::testing::TestWithParam<int> {};

db::Table RandomTable(const std::string& name, util::SplitMix64& rng,
                      int rows, int key_range) {
  db::Table t(name, db::Schema({{name, "k", db::ValueType::kInt},
                                {name, "payload", db::ValueType::kString}}));
  for (int i = 0; i < rows; ++i) {
    db::Value key = rng.NextDouble() < 0.1
                        ? db::Value::Null()
                        : db::Value(rng.Range(0, key_range));
    t.AddRow({key, name + "_row" + std::to_string(i)});
  }
  return t;
}

std::multiset<std::string> RowBag(const db::Table& table) {
  std::multiset<std::string> bag;
  for (const std::string& line : table.ExportRows()) bag.insert(line);
  return bag;
}

std::multiset<std::string> RecordBag(const core::MrTable& table) {
  std::multiset<std::string> bag;
  for (const mr::Record& r : table.data) bag.insert(r.value);
  return bag;
}

TEST_P(MrJoinPropertyTest, MatchesHashJoin) {
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  db::Table left = RandomTable("l", rng, 60, 12);
  db::Table right = RandomTable("r", rng, 40, 12);

  for (auto kind : {sql::JoinKind::kInner, sql::JoinKind::kLeftOuter}) {
    db::Table oracle = db::HashJoin(left, right, "l.k", "r.k",
                                    kind == sql::JoinKind::kInner
                                        ? db::JoinType::kInner
                                        : db::JoinType::kLeftOuter);
    mr::ClusterConfig config;
    config.block_size_bytes = 256;  // multiple map tasks
    mr::Cluster cluster(config);
    core::MrTable mr_result =
        core::MrJoin(cluster, "prop", core::ExportTable(left),
                     core::ExportTable(right), "l.k", "r.k", kind, 3);
    EXPECT_EQ(RecordBag(mr_result), RowBag(oracle))
        << "kind=" << (kind == sql::JoinKind::kInner ? "inner" : "left");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrJoinPropertyTest, ::testing::Range(1, 11));

// ---------------------------------------------------------------------
// Export/parse round-trip on random typed rows.
// ---------------------------------------------------------------------

class RoundTripPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripPropertyTest, ExportParsePreservesRows) {
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 977);
  db::Table t("t", db::Schema({{"t", "i", db::ValueType::kInt},
                               {"t", "d", db::ValueType::kDouble},
                               {"t", "s", db::ValueType::kString}}));
  const std::string alphabet = "ab\tc\nd\\e:fg h/';%";
  for (int row = 0; row < 50; ++row) {
    db::Value i = rng.NextDouble() < 0.2 ? db::Value::Null()
                                         : db::Value(rng.Range(-1000, 1000));
    // Cents-valued doubles, like the generator produces.
    db::Value d = rng.NextDouble() < 0.2
                      ? db::Value::Null()
                      : db::Value(static_cast<double>(rng.Range(-99999, 99999)) /
                                  100.0);
    std::string text;
    for (int c = 0; c < 8; ++c) text += alphabet[rng.Below(alphabet.size())];
    t.AddRow({i, d, db::Value(text)});
  }
  auto lines = t.ExportRows();
  for (std::size_t r = 0; r < lines.size(); ++r) {
    EXPECT_EQ(t.ParseRow(lines[r]), t.rows()[r]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest, ::testing::Range(1, 6));

// ---------------------------------------------------------------------
// Value ordering is a total order consistent with equality and hashing.
// ---------------------------------------------------------------------

TEST(ValueProperties, OrderingIsTotalAndHashConsistent) {
  util::SplitMix64 rng(99);
  std::vector<db::Value> values = {db::Value::Null(), db::Value(""),
                                   db::Value("a")};
  for (int i = 0; i < 30; ++i) {
    values.push_back(db::Value(rng.Range(-5, 5)));
    values.push_back(db::Value(static_cast<double>(rng.Range(-50, 50)) / 10.0));
    values.push_back(db::Value(std::string(1, static_cast<char>(
                                                  'a' + rng.Below(5)))));
  }
  for (const db::Value& a : values) {
    for (const db::Value& b : values) {
      // Antisymmetry + equality/hash consistency.
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash());
        EXPECT_FALSE(a < b);
        EXPECT_FALSE(b < a);
      } else {
        EXPECT_TRUE((a < b) != (b < a));
      }
      for (const db::Value& c : values) {
        if (a < b && b < c) {
          EXPECT_LT(a, c);  // transitivity
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Fragment coverage on TPC-H: random concrete parameters — the db-page
// materialized by the oracle equals the union of satisfying fragments.
// ---------------------------------------------------------------------

class PageCoveragePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PageCoveragePropertyTest, PagesAreFragmentUnions) {
  static const db::Database db = tpch::Generate(tpch::Scale::kTiny);
  sql::PsjQuery query = sql::Parse(
      "SELECT * FROM (customer JOIN orders) JOIN lineitem "
      "WHERE customer.cid = $r AND qty BETWEEN $min AND $max");
  core::Crawler crawler(db, query);
  static const std::vector<core::Fragment> fragments =
      core::Crawler(db, sql::Parse(
                            "SELECT * FROM (customer JOIN orders) JOIN "
                            "lineitem WHERE customer.cid = $r AND qty "
                            "BETWEEN $min AND $max"))
          .DeriveFragments();

  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 31);
  for (int trial = 0; trial < 5; ++trial) {
    std::int64_t cid = rng.Range(0, 19);
    std::int64_t lo = rng.Range(1, 40);
    std::int64_t hi = lo + rng.Range(0, 10);
    db::Table page = crawler.EvalPage({{"r", db::Value(cid)},
                                       {"min", db::Value(lo)},
                                       {"max", db::Value(hi)}});
    std::size_t expected = 0;
    for (const core::Fragment& f : fragments) {
      if (f.id[0] == db::Value(cid) && db::Value(lo) <= f.id[1] &&
          f.id[1] <= db::Value(hi)) {
        expected += f.rows.size();
      }
    }
    EXPECT_EQ(page.row_count(), expected)
        << "cid=" << cid << " range=[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageCoveragePropertyTest,
                         ::testing::Range(1, 5));

}  // namespace
}  // namespace dash
