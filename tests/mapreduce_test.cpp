// Tests for the simulated MapReduce cluster: semantics (wordcount, join,
// grouping, combiners), determinism across node counts, and metrics
// accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "mapreduce/cluster.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/tokenizer.h"

namespace dash::mr {
namespace {

// Classic wordcount — the paper's Section II inverted-file warm-up.
class WordCountMapper : public Mapper {
 public:
  void Map(const Record& record, Emitter& out) override {
    for (const std::string& w : util::Tokenize(record.value)) {
      out.Emit(w, "1");
    }
  }
};

class SumReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    std::uint64_t total = 0;
    for (const std::string& v : values) total += std::stoull(v);
    out.Emit(key, std::to_string(total));
  }
};

Dataset WordCountInput() {
  return {{"", "the quick brown fox"},
          {"", "the lazy dog"},
          {"", "the quick dog"}};
}

std::map<std::string, std::string> ToMap(const Dataset& data) {
  std::map<std::string, std::string> out;
  for (const Record& r : data) out[r.key] = r.value;
  return out;
}

TEST(Cluster, WordCount) {
  Cluster cluster;
  JobConfig job;
  job.name = "wordcount";
  Dataset out = cluster.Run(
      job, WordCountInput(), [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  auto counts = ToMap(out);
  EXPECT_EQ(counts.at("the"), "3");
  EXPECT_EQ(counts.at("quick"), "2");
  EXPECT_EQ(counts.at("dog"), "2");
  EXPECT_EQ(counts.at("fox"), "1");
  EXPECT_EQ(counts.size(), 6u);
}

TEST(Cluster, EmptyInputProducesEmptyOutput) {
  Cluster cluster;
  JobConfig job;
  Dataset out = cluster.Run(
      job, {}, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  EXPECT_TRUE(out.empty());
  ASSERT_EQ(cluster.history().size(), 1u);
  EXPECT_EQ(cluster.history()[0].map_input_records, 0u);
}

TEST(Cluster, OutputDeterministicAcrossNodeCounts) {
  // The whole point of the deterministic shuffle: 1 node == 8 nodes.
  Dataset reference;
  for (int nodes : {1, 2, 4, 8}) {
    ClusterConfig config;
    config.num_nodes = nodes;
    config.block_size_bytes = 16;  // force many map tasks
    Cluster cluster(config);
    JobConfig job;
    job.num_reduce_tasks = 3;
    Dataset out = cluster.Run(
        job, WordCountInput(),
        [] { return std::make_unique<WordCountMapper>(); },
        [] { return std::make_unique<SumReducer>(); });
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << "nodes=" << nodes;
    }
  }
}

TEST(Cluster, CombinerPreservesResultAndShrinksShuffle) {
  Dataset input;
  for (int i = 0; i < 200; ++i) input.push_back({"", "a a a b"});

  ClusterConfig config;
  config.block_size_bytes = 64;
  Cluster plain(config), combined(config);
  JobConfig job;

  Dataset out1 = plain.Run(
      job, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  Dataset out2 = combined.Run(
      job, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); },
      [] { return std::make_unique<SumReducer>(); });

  EXPECT_EQ(ToMap(out1), ToMap(out2));
  EXPECT_LT(combined.history()[0].map_output_records,
            plain.history()[0].map_output_records);
}

TEST(Cluster, ValuesArriveInEmissionOrderWithinMapTask) {
  // Single map task (one block): grouping must preserve emission order.
  class SeqMapper : public Mapper {
   public:
    void Map(const Record& record, Emitter& out) override {
      out.Emit("k", record.value);
    }
  };
  class ConcatReducer : public Reducer {
   public:
    void Reduce(const std::string& key, const std::vector<std::string>& values,
                Emitter& out) override {
      std::string all;
      for (const auto& v : values) all += v;
      out.Emit(key, all);
    }
  };
  Cluster cluster;
  JobConfig job;
  Dataset out = cluster.Run(
      job, {{"", "1"}, {"", "2"}, {"", "3"}},
      [] { return std::make_unique<SeqMapper>(); },
      [] { return std::make_unique<ConcatReducer>(); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "123");
}

TEST(Cluster, MetricsAccounting) {
  Cluster cluster;
  JobConfig job;
  job.name = "metrics";
  job.num_reduce_tasks = 2;
  Dataset input = WordCountInput();
  Dataset out = cluster.Run(
      job, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });

  ASSERT_EQ(cluster.history().size(), 1u);
  // history() returns a snapshot by value; copy the element (binding a
  // reference into the temporary vector would dangle).
  const JobMetrics m = cluster.history()[0];
  EXPECT_EQ(m.job_name, "metrics");
  EXPECT_EQ(m.map_input_records, input.size());
  EXPECT_EQ(m.map_input_bytes, DatasetBytes(input));
  EXPECT_EQ(m.map_output_records, 10u);  // 10 word occurrences emitted
  EXPECT_EQ(m.reduce_output_records, out.size());
  EXPECT_EQ(m.reduce_output_bytes, DatasetBytes(out));
  EXPECT_EQ(m.reduce_tasks, 2u);
  EXPECT_GE(m.map_tasks, 1u);
}

TEST(Cluster, BlockSizeControlsMapTasks) {
  Dataset input;
  for (int i = 0; i < 100; ++i) input.push_back({"", "0123456789"});
  ClusterConfig config;
  config.block_size_bytes = 100;  // 10 records per split
  Cluster cluster(config);
  JobConfig job;
  cluster.Run(
      job, input, [] { return std::make_unique<IdentityMapper>(); },
      [] { return std::make_unique<IdentityReducer>(); });
  EXPECT_EQ(cluster.history()[0].map_tasks, 10u);
}

TEST(Cluster, IdentityPipelinePreservesPayload) {
  Cluster cluster;
  JobConfig job;
  Dataset input = {{"b", "2"}, {"a", "1"}, {"b", "3"}};
  Dataset out = cluster.Run(
      job, input, [] { return std::make_unique<IdentityMapper>(); },
      [] { return std::make_unique<IdentityReducer>(); });
  ASSERT_EQ(out.size(), 3u);
  // Same multiset of records.
  auto sorted = [](Dataset d) {
    std::sort(d.begin(), d.end(), [](const Record& x, const Record& y) {
      return std::tie(x.key, x.value) < std::tie(y.key, y.value);
    });
    return d;
  };
  EXPECT_EQ(sorted(out), sorted(input));
}

TEST(Cluster, InvalidConfigRejected) {
  ClusterConfig config;
  config.num_nodes = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
  ClusterConfig config2;
  config2.block_size_bytes = 0;
  EXPECT_THROW(Cluster{config2}, std::invalid_argument);
}

TEST(Cluster, MissingFactoriesRejected) {
  Cluster cluster;
  JobConfig job;
  EXPECT_THROW(
      cluster.Run(job, {}, nullptr,
                  [] { return std::make_unique<IdentityReducer>(); }),
      std::invalid_argument);
}

TEST(Cluster, MapperExceptionPropagates) {
  class ThrowingMapper : public Mapper {
   public:
    void Map(const Record&, Emitter&) override {
      throw std::runtime_error("boom");
    }
  };
  Cluster cluster;
  JobConfig job;
  EXPECT_THROW(cluster.Run(
                   job, {{"", "x"}},
                   [] { return std::make_unique<ThrowingMapper>(); },
                   [] { return std::make_unique<IdentityReducer>(); }),
               std::runtime_error);
}

TEST(Cluster, FaultToleranceReexecutesTasksIdentically) {
  Dataset input;
  for (int i = 0; i < 100; ++i) input.push_back({"", "alpha beta gamma"});

  ClusterConfig reliable;
  reliable.block_size_bytes = 64;
  Cluster stable(reliable);

  ClusterConfig flaky = reliable;
  flaky.task_failure_probability = 0.4;
  flaky.fault_seed = 99;
  Cluster failing(flaky);

  JobConfig job;
  job.num_reduce_tasks = 3;
  Dataset expected = stable.Run(
      job, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  Dataset actual = failing.Run(
      job, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });

  // Re-executed tasks change nothing about the output...
  EXPECT_EQ(actual, expected);
  // ...but the retries are visible in the metrics.
  EXPECT_GT(failing.history()[0].task_retries, 0u);
  EXPECT_EQ(stable.history()[0].task_retries, 0u);
}

TEST(Cluster, FaultInjectionIsDeterministic) {
  ClusterConfig flaky;
  flaky.task_failure_probability = 0.3;
  flaky.fault_seed = 7;
  flaky.block_size_bytes = 32;
  JobConfig job;
  std::uint64_t first_retries = 0;
  for (int round = 0; round < 2; ++round) {
    Cluster cluster(flaky);
    cluster.Run(
        job, WordCountInput(),
        [] { return std::make_unique<WordCountMapper>(); },
        [] { return std::make_unique<SumReducer>(); });
    if (round == 0) {
      first_retries = cluster.history()[0].task_retries;
    } else {
      EXPECT_EQ(cluster.history()[0].task_retries, first_retries);
    }
  }
}

TEST(Cluster, PermanentFailureExhaustsAttemptsAndThrows) {
  ClusterConfig doomed;
  doomed.task_failure_probability = 1.0;
  doomed.max_task_attempts = 3;
  Cluster cluster(doomed);
  JobConfig job;
  EXPECT_THROW(cluster.Run(
                   job, WordCountInput(),
                   [] { return std::make_unique<WordCountMapper>(); },
                   [] { return std::make_unique<SumReducer>(); }),
               std::runtime_error);
}

TEST(Metrics, SumAndModeledTime) {
  JobMetrics a;
  a.map_input_bytes = 1000;
  a.map_output_bytes = 500;
  a.map_tasks = 2;
  a.reduce_tasks = 2;
  JobMetrics b = a;
  JobMetrics total = SumMetrics({a, b});
  EXPECT_EQ(total.jobs, 2u);
  EXPECT_EQ(total.map_input_bytes, 2000u);
  EXPECT_EQ(total.map_tasks, 4u);

  CostModel cost;
  // Two jobs must pay two job-startup overheads.
  EXPECT_GE(total.ModeledSec(cost), 2 * cost.per_job_overhead_sec);
  // More data => more modeled time.
  JobMetrics big = a;
  big.map_output_bytes = 500'000'000;
  EXPECT_GT(big.ModeledSec(cost), a.ModeledSec(cost));
}

}  // namespace
}  // namespace dash::mr
