// Multi-application search tests (paper Section VIII item 2): federation
// over several web applications with duplicate-content elimination.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/multi_app.h"
#include "sql/parser.h"
#include "testing/fooddb.h"

namespace dash::core {
namespace {

DashEngine BuildEngine(webapp::WebAppInfo app) {
  BuildOptions options;
  options.algorithm = CrawlAlgorithm::kReference;
  static db::Database db = dash::testing::MakeFoodDb();
  return DashEngine::Build(db, std::move(app), options);
}

// A second application generating pages with the SAME content as Search
// but under different URLs (mirror deployment) — the paper's duplicated-
// content case.
webapp::WebAppInfo MakeMirrorApp() {
  webapp::WebAppInfo app = dash::testing::MakeSearchApp();
  app.name = "Mirror";
  app.uri = "mirror.example.com/Find";
  return app;
}

// A third application projecting different attributes: overlapping topic,
// different content; must NOT be deduplicated against Search.
webapp::WebAppInfo MakeRatingApp() {
  webapp::WebAppInfo app;
  app.name = "Ratings";
  app.uri = "www.example.com/Ratings";
  app.query = sql::Parse(
      "SELECT name, rate, comment FROM restaurant LEFT JOIN comment "
      "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max");
  app.codec = webapp::QueryStringCodec(
      {{"c", "cuisine"}, {"l", "min"}, {"u", "max"}});
  return app;
}

TEST(MultiApp, RejectsDuplicateNames) {
  MultiAppEngine multi;
  multi.AddApp(BuildEngine(dash::testing::MakeSearchApp()));
  EXPECT_THROW(multi.AddApp(BuildEngine(dash::testing::MakeSearchApp())),
               std::runtime_error);
  EXPECT_EQ(multi.app_count(), 1u);
}

TEST(MultiApp, AppLookup) {
  MultiAppEngine multi;
  multi.AddApp(BuildEngine(dash::testing::MakeSearchApp()));
  EXPECT_EQ(multi.app("Search").app().uri, "www.example.com/Search");
  EXPECT_THROW(multi.app("Nope"), std::runtime_error);
}

TEST(MultiApp, MirroredContentIsDeduplicated) {
  MultiAppEngine multi;
  multi.AddApp(BuildEngine(dash::testing::MakeSearchApp()));
  multi.AddApp(BuildEngine(MakeMirrorApp()));

  // Without dedup, every page would appear twice (identical content under
  // two URLs). With dedup the result list matches a single app's.
  auto results = multi.Search({"burger"}, 10, 20);
  ASSERT_EQ(results.size(), 2u);
  std::set<std::uint64_t> hashes;
  for (const auto& r : results) {
    EXPECT_TRUE(hashes.insert(r.content_hash).second);
  }
}

TEST(MultiApp, DifferentContentSurvivesDedup) {
  MultiAppEngine multi;
  multi.AddApp(BuildEngine(dash::testing::MakeSearchApp()));
  multi.AddApp(BuildEngine(MakeRatingApp()));

  // The Ratings app projects fewer attributes, so its fragments carry
  // different keyword bags: both apps' pages must appear.
  auto results = multi.Search({"burger"}, 10, 20);
  std::set<std::string> apps;
  for (const auto& r : results) apps.insert(r.app);
  EXPECT_EQ(apps.size(), 2u);
}

TEST(MultiApp, ResultsSortedByScoreAndCapped) {
  MultiAppEngine multi;
  multi.AddApp(BuildEngine(dash::testing::MakeSearchApp()));
  multi.AddApp(BuildEngine(MakeRatingApp()));
  auto results = multi.Search({"burger"}, 3, 1);
  EXPECT_LE(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].result.score, results[i].result.score);
  }
}

TEST(MultiApp, EmptyEngineReturnsNothing) {
  MultiAppEngine multi;
  EXPECT_TRUE(multi.Search({"burger"}, 5, 20).empty());
}

TEST(MultiApp, PageContentHashIsOrderIndependent) {
  DashEngine engine = BuildEngine(dash::testing::MakeSearchApp());
  auto results = engine.Search({"burger"}, 2, 1000);  // multi-fragment page
  ASSERT_FALSE(results.empty());
  SearchResult r = results.back();
  ASSERT_GE(r.fragments.size(), 2u);
  std::uint64_t h = MultiAppEngine::PageContentHash(engine, r);
  std::reverse(r.fragments.begin(), r.fragments.end());
  EXPECT_EQ(MultiAppEngine::PageContentHash(engine, r), h);
}

}  // namespace
}  // namespace dash::core
