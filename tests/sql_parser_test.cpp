// Tests for the PSJ SQL dialect parser and query AST analysis.
#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dash::sql {
namespace {

TEST(Parser, SelectStarSimple) {
  PsjQuery q = Parse("SELECT * FROM r WHERE x = $p");
  EXPECT_TRUE(q.projection.empty());
  ASSERT_TRUE(q.from != nullptr);
  EXPECT_EQ(q.from->relation, "r");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].column, "x");
  EXPECT_EQ(q.where[0].op, db::CompareOp::kEq);
  EXPECT_EQ(q.where[0].parameter, "p");
}

TEST(Parser, ProjectionList) {
  PsjQuery q = Parse("SELECT a, b, r.c FROM r WHERE a = $x");
  ASSERT_EQ(q.projection.size(), 3u);
  EXPECT_EQ(q.projection[2], "r.c");
}

TEST(Parser, BetweenDesugarsToRangePredicates) {
  PsjQuery q = Parse("SELECT * FROM r WHERE b BETWEEN $lo AND $hi");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].op, db::CompareOp::kGe);
  EXPECT_EQ(q.where[0].parameter, "lo");
  EXPECT_EQ(q.where[1].op, db::CompareOp::kLe);
  EXPECT_EQ(q.where[1].parameter, "hi");
}

TEST(Parser, ComparisonOperators) {
  PsjQuery q = Parse("SELECT * FROM r WHERE a >= $x AND b <= $y AND c = $z");
  ASSERT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where[0].op, db::CompareOp::kGe);
  EXPECT_EQ(q.where[1].op, db::CompareOp::kLe);
  EXPECT_EQ(q.where[2].op, db::CompareOp::kEq);
}

TEST(Parser, JoinTreeLeftAssociative) {
  PsjQuery q = Parse("SELECT * FROM a JOIN b JOIN c WHERE a.x = $p");
  // ((a JOIN b) JOIN c)
  ASSERT_FALSE(q.from->IsLeaf());
  EXPECT_EQ(q.from->right->relation, "c");
  ASSERT_FALSE(q.from->left->IsLeaf());
  EXPECT_EQ(q.from->left->left->relation, "a");
  EXPECT_EQ(q.from->left->right->relation, "b");
  EXPECT_EQ(q.Relations(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Parser, ParenthesizedJoinTree) {
  PsjQuery q =
      Parse("SELECT * FROM (c JOIN o) JOIN (l JOIN p) WHERE c.id = $r");
  ASSERT_FALSE(q.from->IsLeaf());
  EXPECT_EQ(q.from->left->left->relation, "c");
  EXPECT_EQ(q.from->right->left->relation, "l");
  EXPECT_EQ(q.from->right->right->relation, "p");
}

TEST(Parser, LeftJoinKinds) {
  PsjQuery q = Parse(
      "SELECT * FROM r LEFT JOIN s LEFT OUTER JOIN t INNER JOIN u "
      "WHERE r.a = $x");
  // (((r LJ s) LJ t) J u)
  EXPECT_EQ(q.from->kind, JoinKind::kInner);
  EXPECT_EQ(q.from->left->kind, JoinKind::kLeftOuter);
  EXPECT_EQ(q.from->left->left->kind, JoinKind::kLeftOuter);
}

TEST(Parser, ExplicitOnClause) {
  PsjQuery q = Parse("SELECT * FROM r JOIN s ON r.id = s.rid WHERE r.a = $x");
  EXPECT_EQ(q.from->on_left, "r.id");
  EXPECT_EQ(q.from->on_right, "s.rid");
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  PsjQuery q = Parse("select * from r left join s where a between $l and $h");
  EXPECT_EQ(q.from->kind, JoinKind::kLeftOuter);
  EXPECT_EQ(q.where.size(), 2u);
}

TEST(Parser, ParenthesizedConditions) {
  PsjQuery q = Parse(
      "SELECT * FROM r WHERE (cuisine = $c) AND (budget BETWEEN $l AND $u)");
  EXPECT_EQ(q.where.size(), 3u);
}

TEST(Parser, ErrorsAreReported) {
  EXPECT_THROW(Parse(""), ParseError);
  EXPECT_THROW(Parse("SELECT FROM r"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM r WHERE"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM r WHERE a = b"), ParseError);  // no $param
  EXPECT_THROW(Parse("SELECT * FROM r WHERE a < $x"), ParseError);  // bad op
  EXPECT_THROW(Parse("SELECT * FROM r WHERE a = $"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM r WHERE a = $x garbage"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM (r JOIN s WHERE a = $x"), ParseError);
}

TEST(Parser, ToStringRoundTripsThroughParse) {
  PsjQuery q = Parse(
      "SELECT name, budget FROM (restaurant LEFT JOIN comment) JOIN customer "
      "WHERE cuisine = $c AND budget BETWEEN $l AND $u");
  PsjQuery q2 = Parse(q.ToString());
  EXPECT_EQ(q.ToString(), q2.ToString());
  EXPECT_EQ(q.Relations(), q2.Relations());
}

// ---------- SelectionAttributes (fragment identifier layout) ----------

TEST(SelectionAttributes, EqualityThenRangeCanonicalOrder) {
  PsjQuery q = Parse(
      "SELECT * FROM r WHERE budget BETWEEN $l AND $u AND cuisine = $c");
  auto attrs = q.SelectionAttributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].column, "cuisine");  // equality first
  EXPECT_FALSE(attrs[0].is_range);
  EXPECT_EQ(attrs[0].eq_parameter, "c");
  EXPECT_EQ(attrs[1].column, "budget");
  EXPECT_TRUE(attrs[1].is_range);
  EXPECT_EQ(attrs[1].min_parameter, "l");
  EXPECT_EQ(attrs[1].max_parameter, "u");
}

TEST(SelectionAttributes, HalfOpenRange) {
  PsjQuery q = Parse("SELECT * FROM r WHERE a = $x AND b >= $lo");
  auto attrs = q.SelectionAttributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_TRUE(attrs[1].is_range);
  EXPECT_EQ(attrs[1].min_parameter, "lo");
  EXPECT_TRUE(attrs[1].max_parameter.empty());
}

TEST(SelectionAttributes, MixedPredicatesOnSameAttributeRejected) {
  EXPECT_THROW(
      Parse("SELECT * FROM r WHERE a = $x AND a >= $y").SelectionAttributes(),
      std::runtime_error);
  EXPECT_THROW(
      Parse("SELECT * FROM r WHERE a >= $y AND a = $x").SelectionAttributes(),
      std::runtime_error);
  EXPECT_THROW(
      Parse("SELECT * FROM r WHERE a = $x AND a = $y").SelectionAttributes(),
      std::runtime_error);
  EXPECT_THROW(
      Parse("SELECT * FROM r WHERE a >= $x AND a >= $y").SelectionAttributes(),
      std::runtime_error);
}

TEST(SelectionAttributes, QueryCopyIsDeep) {
  PsjQuery q = Parse("SELECT * FROM a JOIN b WHERE a.x = $p");
  PsjQuery copy = q;
  EXPECT_EQ(copy.ToString(), q.ToString());
  EXPECT_NE(copy.from.get(), q.from.get());
}

}  // namespace
}  // namespace dash::sql
