# Empty dependencies file for bench_reduce_tasks.
# This may be replaced when dependencies are built.
