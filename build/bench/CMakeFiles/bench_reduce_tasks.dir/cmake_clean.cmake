file(REMOVE_RECURSE
  "CMakeFiles/bench_reduce_tasks.dir/bench_reduce_tasks.cpp.o"
  "CMakeFiles/bench_reduce_tasks.dir/bench_reduce_tasks.cpp.o.d"
  "bench_reduce_tasks"
  "bench_reduce_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduce_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
