file(REMOVE_RECURSE
  "CMakeFiles/bench_index_update.dir/bench_index_update.cpp.o"
  "CMakeFiles/bench_index_update.dir/bench_index_update.cpp.o.d"
  "bench_index_update"
  "bench_index_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
