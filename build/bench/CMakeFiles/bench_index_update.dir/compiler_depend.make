# Empty compiler generated dependencies file for bench_index_update.
# This may be replaced when dependencies are built.
