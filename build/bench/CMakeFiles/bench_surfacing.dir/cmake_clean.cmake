file(REMOVE_RECURSE
  "CMakeFiles/bench_surfacing.dir/bench_surfacing.cpp.o"
  "CMakeFiles/bench_surfacing.dir/bench_surfacing.cpp.o.d"
  "bench_surfacing"
  "bench_surfacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_surfacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
