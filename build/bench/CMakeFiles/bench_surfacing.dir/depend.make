# Empty dependencies file for bench_surfacing.
# This may be replaced when dependencies are built.
