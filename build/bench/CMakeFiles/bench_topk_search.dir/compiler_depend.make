# Empty compiler generated dependencies file for bench_topk_search.
# This may be replaced when dependencies are built.
