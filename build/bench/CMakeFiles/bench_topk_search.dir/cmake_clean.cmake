file(REMOVE_RECURSE
  "CMakeFiles/bench_topk_search.dir/bench_topk_search.cpp.o"
  "CMakeFiles/bench_topk_search.dir/bench_topk_search.cpp.o.d"
  "bench_topk_search"
  "bench_topk_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topk_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
