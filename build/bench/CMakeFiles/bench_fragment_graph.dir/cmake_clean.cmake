file(REMOVE_RECURSE
  "CMakeFiles/bench_fragment_graph.dir/bench_fragment_graph.cpp.o"
  "CMakeFiles/bench_fragment_graph.dir/bench_fragment_graph.cpp.o.d"
  "bench_fragment_graph"
  "bench_fragment_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragment_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
