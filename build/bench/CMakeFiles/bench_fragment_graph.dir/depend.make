# Empty dependencies file for bench_fragment_graph.
# This may be replaced when dependencies are built.
