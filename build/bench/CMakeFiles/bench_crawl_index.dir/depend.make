# Empty dependencies file for bench_crawl_index.
# This may be replaced when dependencies are built.
