file(REMOVE_RECURSE
  "CMakeFiles/bench_crawl_index.dir/bench_crawl_index.cpp.o"
  "CMakeFiles/bench_crawl_index.dir/bench_crawl_index.cpp.o.d"
  "bench_crawl_index"
  "bench_crawl_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crawl_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
