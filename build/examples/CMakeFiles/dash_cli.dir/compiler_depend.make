# Empty compiler generated dependencies file for dash_cli.
# This may be replaced when dependencies are built.
