file(REMOVE_RECURSE
  "CMakeFiles/dash_cli.dir/dash_cli.cpp.o"
  "CMakeFiles/dash_cli.dir/dash_cli.cpp.o.d"
  "dash_cli"
  "dash_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
