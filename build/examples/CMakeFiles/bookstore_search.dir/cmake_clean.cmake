file(REMOVE_RECURSE
  "CMakeFiles/bookstore_search.dir/bookstore_search.cpp.o"
  "CMakeFiles/bookstore_search.dir/bookstore_search.cpp.o.d"
  "bookstore_search"
  "bookstore_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
