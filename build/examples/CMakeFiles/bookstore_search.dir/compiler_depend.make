# Empty compiler generated dependencies file for bookstore_search.
# This may be replaced when dependencies are built.
