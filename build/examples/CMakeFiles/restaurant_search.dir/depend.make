# Empty dependencies file for restaurant_search.
# This may be replaced when dependencies are built.
