file(REMOVE_RECURSE
  "CMakeFiles/restaurant_search.dir/restaurant_search.cpp.o"
  "CMakeFiles/restaurant_search.dir/restaurant_search.cpp.o.d"
  "restaurant_search"
  "restaurant_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
