file(REMOVE_RECURSE
  "CMakeFiles/tpch_search.dir/tpch_search.cpp.o"
  "CMakeFiles/tpch_search.dir/tpch_search.cpp.o.d"
  "tpch_search"
  "tpch_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
