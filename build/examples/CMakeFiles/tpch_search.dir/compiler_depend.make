# Empty compiler generated dependencies file for tpch_search.
# This may be replaced when dependencies are built.
