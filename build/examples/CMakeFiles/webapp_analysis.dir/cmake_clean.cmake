file(REMOVE_RECURSE
  "CMakeFiles/webapp_analysis.dir/webapp_analysis.cpp.o"
  "CMakeFiles/webapp_analysis.dir/webapp_analysis.cpp.o.d"
  "webapp_analysis"
  "webapp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webapp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
