# Empty dependencies file for webapp_analysis.
# This may be replaced when dependencies are built.
