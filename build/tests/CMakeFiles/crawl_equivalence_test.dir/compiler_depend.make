# Empty compiler generated dependencies file for crawl_equivalence_test.
# This may be replaced when dependencies are built.
