file(REMOVE_RECURSE
  "CMakeFiles/crawl_equivalence_test.dir/crawl_equivalence_test.cpp.o"
  "CMakeFiles/crawl_equivalence_test.dir/crawl_equivalence_test.cpp.o.d"
  "crawl_equivalence_test"
  "crawl_equivalence_test.pdb"
  "crawl_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
