file(REMOVE_RECURSE
  "CMakeFiles/mr_common_test.dir/mr_common_test.cpp.o"
  "CMakeFiles/mr_common_test.dir/mr_common_test.cpp.o.d"
  "mr_common_test"
  "mr_common_test.pdb"
  "mr_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
