file(REMOVE_RECURSE
  "CMakeFiles/app_runtime_test.dir/app_runtime_test.cpp.o"
  "CMakeFiles/app_runtime_test.dir/app_runtime_test.cpp.o.d"
  "app_runtime_test"
  "app_runtime_test.pdb"
  "app_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
