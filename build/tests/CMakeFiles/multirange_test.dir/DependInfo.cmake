
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multirange_test.cpp" "tests/CMakeFiles/multirange_test.dir/multirange_test.cpp.o" "gcc" "tests/CMakeFiles/multirange_test.dir/multirange_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dash_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/dash_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/testing/CMakeFiles/dash_fixtures.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/dash_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/webapp/CMakeFiles/dash_webapp.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dash_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/dash_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
