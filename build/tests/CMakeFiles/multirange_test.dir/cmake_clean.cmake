file(REMOVE_RECURSE
  "CMakeFiles/multirange_test.dir/multirange_test.cpp.o"
  "CMakeFiles/multirange_test.dir/multirange_test.cpp.o.d"
  "multirange_test"
  "multirange_test.pdb"
  "multirange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
