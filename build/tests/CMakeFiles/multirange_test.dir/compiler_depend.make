# Empty compiler generated dependencies file for multirange_test.
# This may be replaced when dependencies are built.
