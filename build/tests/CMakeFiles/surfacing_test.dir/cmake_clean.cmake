file(REMOVE_RECURSE
  "CMakeFiles/surfacing_test.dir/surfacing_test.cpp.o"
  "CMakeFiles/surfacing_test.dir/surfacing_test.cpp.o.d"
  "surfacing_test"
  "surfacing_test.pdb"
  "surfacing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfacing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
