# Empty dependencies file for surfacing_test.
# This may be replaced when dependencies are built.
