# Empty compiler generated dependencies file for index_update_test.
# This may be replaced when dependencies are built.
