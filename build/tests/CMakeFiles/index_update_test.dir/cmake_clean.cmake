file(REMOVE_RECURSE
  "CMakeFiles/index_update_test.dir/index_update_test.cpp.o"
  "CMakeFiles/index_update_test.dir/index_update_test.cpp.o.d"
  "index_update_test"
  "index_update_test.pdb"
  "index_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
