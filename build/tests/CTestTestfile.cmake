# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/webapp_test[1]_include.cmake")
include("/root/repo/build/tests/fragment_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/crawl_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/topk_test[1]_include.cmake")
include("/root/repo/build/tests/index_update_test[1]_include.cmake")
include("/root/repo/build/tests/index_io_test[1]_include.cmake")
include("/root/repo/build/tests/multi_app_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/csv_io_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/app_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/surfacing_test[1]_include.cmake")
include("/root/repo/build/tests/sharded_engine_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/mr_common_test[1]_include.cmake")
include("/root/repo/build/tests/multirange_test[1]_include.cmake")
include("/root/repo/build/tests/result_cache_test[1]_include.cmake")
include("/root/repo/build/tests/composition_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
