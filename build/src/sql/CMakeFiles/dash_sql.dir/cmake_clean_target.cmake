file(REMOVE_RECURSE
  "libdash_sql.a"
)
