# Empty dependencies file for dash_sql.
# This may be replaced when dependencies are built.
