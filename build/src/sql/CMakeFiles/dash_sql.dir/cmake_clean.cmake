file(REMOVE_RECURSE
  "CMakeFiles/dash_sql.dir/eval.cc.o"
  "CMakeFiles/dash_sql.dir/eval.cc.o.d"
  "CMakeFiles/dash_sql.dir/parser.cc.o"
  "CMakeFiles/dash_sql.dir/parser.cc.o.d"
  "CMakeFiles/dash_sql.dir/psj_query.cc.o"
  "CMakeFiles/dash_sql.dir/psj_query.cc.o.d"
  "libdash_sql.a"
  "libdash_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
