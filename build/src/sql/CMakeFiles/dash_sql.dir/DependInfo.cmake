
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/eval.cc" "src/sql/CMakeFiles/dash_sql.dir/eval.cc.o" "gcc" "src/sql/CMakeFiles/dash_sql.dir/eval.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/dash_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/dash_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/psj_query.cc" "src/sql/CMakeFiles/dash_sql.dir/psj_query.cc.o" "gcc" "src/sql/CMakeFiles/dash_sql.dir/psj_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/dash_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
