# Empty compiler generated dependencies file for dash_webapp.
# This may be replaced when dependencies are built.
