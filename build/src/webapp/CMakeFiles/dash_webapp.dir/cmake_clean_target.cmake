file(REMOVE_RECURSE
  "libdash_webapp.a"
)
