
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webapp/app_runtime.cc" "src/webapp/CMakeFiles/dash_webapp.dir/app_runtime.cc.o" "gcc" "src/webapp/CMakeFiles/dash_webapp.dir/app_runtime.cc.o.d"
  "/root/repo/src/webapp/http.cc" "src/webapp/CMakeFiles/dash_webapp.dir/http.cc.o" "gcc" "src/webapp/CMakeFiles/dash_webapp.dir/http.cc.o.d"
  "/root/repo/src/webapp/query_string.cc" "src/webapp/CMakeFiles/dash_webapp.dir/query_string.cc.o" "gcc" "src/webapp/CMakeFiles/dash_webapp.dir/query_string.cc.o.d"
  "/root/repo/src/webapp/servlet_analyzer.cc" "src/webapp/CMakeFiles/dash_webapp.dir/servlet_analyzer.cc.o" "gcc" "src/webapp/CMakeFiles/dash_webapp.dir/servlet_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/dash_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/dash_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
