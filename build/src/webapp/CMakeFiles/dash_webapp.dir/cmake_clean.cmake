file(REMOVE_RECURSE
  "CMakeFiles/dash_webapp.dir/app_runtime.cc.o"
  "CMakeFiles/dash_webapp.dir/app_runtime.cc.o.d"
  "CMakeFiles/dash_webapp.dir/http.cc.o"
  "CMakeFiles/dash_webapp.dir/http.cc.o.d"
  "CMakeFiles/dash_webapp.dir/query_string.cc.o"
  "CMakeFiles/dash_webapp.dir/query_string.cc.o.d"
  "CMakeFiles/dash_webapp.dir/servlet_analyzer.cc.o"
  "CMakeFiles/dash_webapp.dir/servlet_analyzer.cc.o.d"
  "libdash_webapp.a"
  "libdash_webapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_webapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
