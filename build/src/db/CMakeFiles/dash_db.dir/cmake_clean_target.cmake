file(REMOVE_RECURSE
  "libdash_db.a"
)
