# Empty dependencies file for dash_db.
# This may be replaced when dependencies are built.
