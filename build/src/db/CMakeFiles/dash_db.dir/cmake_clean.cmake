file(REMOVE_RECURSE
  "CMakeFiles/dash_db.dir/csv_io.cc.o"
  "CMakeFiles/dash_db.dir/csv_io.cc.o.d"
  "CMakeFiles/dash_db.dir/database.cc.o"
  "CMakeFiles/dash_db.dir/database.cc.o.d"
  "CMakeFiles/dash_db.dir/ops.cc.o"
  "CMakeFiles/dash_db.dir/ops.cc.o.d"
  "CMakeFiles/dash_db.dir/schema.cc.o"
  "CMakeFiles/dash_db.dir/schema.cc.o.d"
  "CMakeFiles/dash_db.dir/table.cc.o"
  "CMakeFiles/dash_db.dir/table.cc.o.d"
  "CMakeFiles/dash_db.dir/value.cc.o"
  "CMakeFiles/dash_db.dir/value.cc.o.d"
  "libdash_db.a"
  "libdash_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
