# Empty dependencies file for dash_fixtures.
# This may be replaced when dependencies are built.
