file(REMOVE_RECURSE
  "CMakeFiles/dash_fixtures.dir/fooddb.cc.o"
  "CMakeFiles/dash_fixtures.dir/fooddb.cc.o.d"
  "libdash_fixtures.a"
  "libdash_fixtures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_fixtures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
