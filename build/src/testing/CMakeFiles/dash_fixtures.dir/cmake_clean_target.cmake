file(REMOVE_RECURSE
  "libdash_fixtures.a"
)
