# Empty compiler generated dependencies file for dash_baseline.
# This may be replaced when dependencies are built.
