file(REMOVE_RECURSE
  "CMakeFiles/dash_baseline.dir/page_engine.cc.o"
  "CMakeFiles/dash_baseline.dir/page_engine.cc.o.d"
  "CMakeFiles/dash_baseline.dir/rdb_keyword_search.cc.o"
  "CMakeFiles/dash_baseline.dir/rdb_keyword_search.cc.o.d"
  "CMakeFiles/dash_baseline.dir/surfacing.cc.o"
  "CMakeFiles/dash_baseline.dir/surfacing.cc.o.d"
  "libdash_baseline.a"
  "libdash_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
