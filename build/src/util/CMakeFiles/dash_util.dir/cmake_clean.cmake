file(REMOVE_RECURSE
  "CMakeFiles/dash_util.dir/csv.cc.o"
  "CMakeFiles/dash_util.dir/csv.cc.o.d"
  "CMakeFiles/dash_util.dir/logging.cc.o"
  "CMakeFiles/dash_util.dir/logging.cc.o.d"
  "CMakeFiles/dash_util.dir/string_util.cc.o"
  "CMakeFiles/dash_util.dir/string_util.cc.o.d"
  "CMakeFiles/dash_util.dir/tokenizer.cc.o"
  "CMakeFiles/dash_util.dir/tokenizer.cc.o.d"
  "libdash_util.a"
  "libdash_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
