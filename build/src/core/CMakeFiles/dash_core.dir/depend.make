# Empty dependencies file for dash_core.
# This may be replaced when dependencies are built.
