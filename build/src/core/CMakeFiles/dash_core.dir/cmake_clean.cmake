file(REMOVE_RECURSE
  "CMakeFiles/dash_core.dir/crawler.cc.o"
  "CMakeFiles/dash_core.dir/crawler.cc.o.d"
  "CMakeFiles/dash_core.dir/dash_engine.cc.o"
  "CMakeFiles/dash_core.dir/dash_engine.cc.o.d"
  "CMakeFiles/dash_core.dir/fragment.cc.o"
  "CMakeFiles/dash_core.dir/fragment.cc.o.d"
  "CMakeFiles/dash_core.dir/fragment_graph.cc.o"
  "CMakeFiles/dash_core.dir/fragment_graph.cc.o.d"
  "CMakeFiles/dash_core.dir/index_io.cc.o"
  "CMakeFiles/dash_core.dir/index_io.cc.o.d"
  "CMakeFiles/dash_core.dir/index_update.cc.o"
  "CMakeFiles/dash_core.dir/index_update.cc.o.d"
  "CMakeFiles/dash_core.dir/inverted_index.cc.o"
  "CMakeFiles/dash_core.dir/inverted_index.cc.o.d"
  "CMakeFiles/dash_core.dir/mr_common.cc.o"
  "CMakeFiles/dash_core.dir/mr_common.cc.o.d"
  "CMakeFiles/dash_core.dir/mr_integrated.cc.o"
  "CMakeFiles/dash_core.dir/mr_integrated.cc.o.d"
  "CMakeFiles/dash_core.dir/mr_stepwise.cc.o"
  "CMakeFiles/dash_core.dir/mr_stepwise.cc.o.d"
  "CMakeFiles/dash_core.dir/multi_app.cc.o"
  "CMakeFiles/dash_core.dir/multi_app.cc.o.d"
  "CMakeFiles/dash_core.dir/pruning.cc.o"
  "CMakeFiles/dash_core.dir/pruning.cc.o.d"
  "CMakeFiles/dash_core.dir/result_cache.cc.o"
  "CMakeFiles/dash_core.dir/result_cache.cc.o.d"
  "CMakeFiles/dash_core.dir/sharded_engine.cc.o"
  "CMakeFiles/dash_core.dir/sharded_engine.cc.o.d"
  "CMakeFiles/dash_core.dir/topk_search.cc.o"
  "CMakeFiles/dash_core.dir/topk_search.cc.o.d"
  "libdash_core.a"
  "libdash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
