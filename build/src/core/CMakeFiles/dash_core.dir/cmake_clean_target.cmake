file(REMOVE_RECURSE
  "libdash_core.a"
)
