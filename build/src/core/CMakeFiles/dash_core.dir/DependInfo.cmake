
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/crawler.cc" "src/core/CMakeFiles/dash_core.dir/crawler.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/crawler.cc.o.d"
  "/root/repo/src/core/dash_engine.cc" "src/core/CMakeFiles/dash_core.dir/dash_engine.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/dash_engine.cc.o.d"
  "/root/repo/src/core/fragment.cc" "src/core/CMakeFiles/dash_core.dir/fragment.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/fragment.cc.o.d"
  "/root/repo/src/core/fragment_graph.cc" "src/core/CMakeFiles/dash_core.dir/fragment_graph.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/fragment_graph.cc.o.d"
  "/root/repo/src/core/index_io.cc" "src/core/CMakeFiles/dash_core.dir/index_io.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/index_io.cc.o.d"
  "/root/repo/src/core/index_update.cc" "src/core/CMakeFiles/dash_core.dir/index_update.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/index_update.cc.o.d"
  "/root/repo/src/core/inverted_index.cc" "src/core/CMakeFiles/dash_core.dir/inverted_index.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/inverted_index.cc.o.d"
  "/root/repo/src/core/mr_common.cc" "src/core/CMakeFiles/dash_core.dir/mr_common.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/mr_common.cc.o.d"
  "/root/repo/src/core/mr_integrated.cc" "src/core/CMakeFiles/dash_core.dir/mr_integrated.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/mr_integrated.cc.o.d"
  "/root/repo/src/core/mr_stepwise.cc" "src/core/CMakeFiles/dash_core.dir/mr_stepwise.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/mr_stepwise.cc.o.d"
  "/root/repo/src/core/multi_app.cc" "src/core/CMakeFiles/dash_core.dir/multi_app.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/multi_app.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/core/CMakeFiles/dash_core.dir/pruning.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/pruning.cc.o.d"
  "/root/repo/src/core/result_cache.cc" "src/core/CMakeFiles/dash_core.dir/result_cache.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/result_cache.cc.o.d"
  "/root/repo/src/core/sharded_engine.cc" "src/core/CMakeFiles/dash_core.dir/sharded_engine.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/sharded_engine.cc.o.d"
  "/root/repo/src/core/topk_search.cc" "src/core/CMakeFiles/dash_core.dir/topk_search.cc.o" "gcc" "src/core/CMakeFiles/dash_core.dir/topk_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/dash_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dash_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/dash_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/webapp/CMakeFiles/dash_webapp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
