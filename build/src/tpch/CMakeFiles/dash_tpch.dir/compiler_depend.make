# Empty compiler generated dependencies file for dash_tpch.
# This may be replaced when dependencies are built.
