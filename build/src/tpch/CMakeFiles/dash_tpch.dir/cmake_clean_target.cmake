file(REMOVE_RECURSE
  "libdash_tpch.a"
)
