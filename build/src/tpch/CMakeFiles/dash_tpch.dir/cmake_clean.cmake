file(REMOVE_RECURSE
  "CMakeFiles/dash_tpch.dir/tpch.cc.o"
  "CMakeFiles/dash_tpch.dir/tpch.cc.o.d"
  "libdash_tpch.a"
  "libdash_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
