
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/tpch.cc" "src/tpch/CMakeFiles/dash_tpch.dir/tpch.cc.o" "gcc" "src/tpch/CMakeFiles/dash_tpch.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/dash_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
