file(REMOVE_RECURSE
  "libdash_mr.a"
)
