file(REMOVE_RECURSE
  "CMakeFiles/dash_mr.dir/cluster.cc.o"
  "CMakeFiles/dash_mr.dir/cluster.cc.o.d"
  "CMakeFiles/dash_mr.dir/metrics.cc.o"
  "CMakeFiles/dash_mr.dir/metrics.cc.o.d"
  "libdash_mr.a"
  "libdash_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
