# Empty dependencies file for dash_mr.
# This may be replaced when dependencies are built.
