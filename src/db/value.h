// Typed attribute values for the in-memory relational engine.
//
// A Value is one of: NULL, 64-bit integer, double, or string. Ordering and
// equality are defined within a type; cross-type comparison falls back to a
// stable (type-rank, value) order so Values can key std::map/sort without
// surprises. NULLs order before everything and are equal only to NULL —
// matching what the crawler needs (grouping) rather than SQL ternary logic,
// which the engine does not expose.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dash::db {

enum class ValueType { kNull, kInt, kDouble, kString };

std::string_view ValueTypeName(ValueType t);

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(std::int64_t v) : v_(v) {}          // NOLINT(runtime/explicit)
  Value(int v) : v_(std::int64_t{v}) {}     // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(v_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  // Typed accessors; precondition: matching type().
  std::int64_t AsInt() const { return std::get<std::int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  // Numeric view: kInt/kDouble as double; precondition: numeric type.
  double AsNumber() const;

  // Round-trippable text form. NULL -> "". Integers without decimal point,
  // doubles with shortest round-trip formatting.
  std::string ToString() const;

  // Parses `text` as `type` ("": NULL for any type). Returns Null on
  // malformed numeric input.
  static Value Parse(std::string_view text, ValueType type);

  // Equality is consistent with <=>, so Value(5) == Value(5.0): mixed
  // numeric keys that join successfully also group together.
  friend bool operator==(const Value& a, const Value& b) {
    return (a <=> b) == std::strong_ordering::equal;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b);

  std::size_t Hash() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHash {
  std::size_t operator()(const Row& row) const;
};

// Hash over a subset of row columns; used by hash joins and grouping.
std::size_t HashRowSlice(const Row& row, const std::vector<int>& cols);

}  // namespace dash::db
