#include "db/csv_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/csv.h"
#include "util/string_util.h"

namespace dash::db {

namespace {

ValueType ParseType(std::string_view name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "null") return ValueType::kNull;
  throw CsvIoError("unknown column type '" + std::string(name) + "'");
}

}  // namespace

void SaveTable(const Table& table, std::ostream& out) {
  std::vector<std::string> header;
  header.push_back(table.name());
  for (const Column& c : table.schema().columns()) {
    header.push_back(c.name + ":" + std::string(ValueTypeName(c.type)));
  }
  out << util::EncodeFields(header) << "\n";
  for (const std::string& line : table.ExportRows()) {
    out << line << "\n";
  }
}

Table LoadTable(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw CsvIoError("empty table file");
  }
  std::vector<std::string> header = util::DecodeFields(line);
  if (header.size() < 2) {
    throw CsvIoError("malformed table header: " + line);
  }
  std::string name = header[0];
  Schema schema;
  for (std::size_t i = 1; i < header.size(); ++i) {
    auto colon = header[i].rfind(':');
    if (colon == std::string::npos) {
      throw CsvIoError("malformed column spec '" + header[i] + "'");
    }
    schema.AddColumn(Column{name, header[i].substr(0, colon),
                            ParseType(std::string_view(header[i]).substr(
                                colon + 1))});
  }
  Table table(std::move(name), std::move(schema));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    table.AddRow(table.ParseRow(line));
  }
  return table;
}

void SaveDatabase(const Database& db, const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw CsvIoError("'" + dir + "' is not a directory");
  }
  for (const std::string& name : db.TableNames()) {
    std::ofstream out(fs::path(dir) / (name + ".tbl"), std::ios::trunc);
    if (!out) throw CsvIoError("cannot write table '" + name + "'");
    SaveTable(db.table(name), out);
  }
  std::ofstream catalog(fs::path(dir) / "_catalog", std::ios::trunc);
  if (!catalog) throw CsvIoError("cannot write catalog");
  for (const ForeignKey& fk : db.foreign_keys()) {
    catalog << util::EncodeFields(std::vector<std::string>{
                   fk.from_table, fk.from_column, fk.to_table, fk.to_column})
            << "\n";
  }
}

Database LoadDatabase(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw CsvIoError("'" + dir + "' is not a directory");
  }
  Database db;
  std::vector<fs::path> tables;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tbl") tables.push_back(entry.path());
  }
  std::sort(tables.begin(), tables.end());
  for (const fs::path& path : tables) {
    std::ifstream in(path);
    if (!in) throw CsvIoError("cannot read '" + path.string() + "'");
    db.AddTable(LoadTable(in));
  }
  std::ifstream catalog(fs::path(dir) / "_catalog");
  if (catalog) {
    std::string line;
    while (std::getline(catalog, line)) {
      if (line.empty()) continue;
      std::vector<std::string> fields = util::DecodeFields(line);
      if (fields.size() != 4) {
        throw CsvIoError("malformed foreign key line: " + line);
      }
      db.AddForeignKey({fields[0], fields[1], fields[2], fields[3]});
    }
  }
  return db;
}

}  // namespace dash::db
