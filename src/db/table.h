// An in-memory relation: schema + row storage.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace dash::db {

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::size_t row_count() const { return rows_.size(); }

  // Appends a row; throws std::runtime_error on arity mismatch.
  void AddRow(Row row);

  // Removes the first row equal to `row`; returns false when absent.
  bool RemoveFirstMatch(const Row& row);

  // Convenience accessor: rows()[r][schema().IndexOf(col)].
  const Value& At(std::size_t r, std::string_view col) const;

  // Total bytes of row payload (Value storage, strings by content size).
  // Used to report Table-II-style dataset sizes.
  std::size_t PayloadBytes() const;

  // Serializes every row as tab-escaped text (util::EncodeFields order =
  // schema order). Used to export relations into the MapReduce cluster,
  // mirroring the paper's "records ... exported from a database to a MR
  // cluster" step.
  std::vector<std::string> ExportRows() const;

  // Parses one exported line back into a typed Row for this schema.
  Row ParseRow(std::string_view line) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace dash::db
