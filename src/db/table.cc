#include "db/table.h"

#include <stdexcept>

#include "util/csv.h"

namespace dash::db {

void Table::AddRow(Row row) {
  if (row.size() != schema_.size()) {
    throw std::runtime_error("row arity " + std::to_string(row.size()) +
                             " does not match schema " + schema_.ToString() +
                             " of table '" + name_ + "'");
  }
  rows_.push_back(std::move(row));
}

bool Table::RemoveFirstMatch(const Row& row) {
  for (auto it = rows_.begin(); it != rows_.end(); ++it) {
    if (*it == row) {
      rows_.erase(it);
      return true;
    }
  }
  return false;
}

const Value& Table::At(std::size_t r, std::string_view col) const {
  return rows_[r][static_cast<std::size_t>(schema_.IndexOf(col))];
}

std::size_t Table::PayloadBytes() const {
  std::size_t bytes = 0;
  for (const Row& row : rows_) {
    for (const Value& v : row) {
      switch (v.type()) {
        case ValueType::kNull:
          bytes += 1;
          break;
        case ValueType::kInt:
        case ValueType::kDouble:
          bytes += 8;
          break;
        case ValueType::kString:
          bytes += v.AsString().size();
          break;
      }
    }
  }
  return bytes;
}

std::vector<std::string> Table::ExportRows() const {
  std::vector<std::string> out;
  out.reserve(rows_.size());
  std::vector<std::string> fields;
  for (const Row& row : rows_) {
    fields.clear();
    fields.reserve(row.size());
    for (const Value& v : row) fields.push_back(v.ToString());
    out.push_back(util::EncodeFields(fields));
  }
  return out;
}

Row Table::ParseRow(std::string_view line) const {
  std::vector<std::string> fields = util::DecodeFields(line);
  if (fields.size() != schema_.size()) {
    throw std::runtime_error("exported line has " +
                             std::to_string(fields.size()) +
                             " fields, expected " +
                             std::to_string(schema_.size()));
  }
  Row row;
  row.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    row.push_back(Value::Parse(fields[i], schema_.column(i).type));
  }
  return row;
}

}  // namespace dash::db
