#include "db/database.h"

#include <stdexcept>

#include "util/string_util.h"

namespace dash::db {

Table& Database::AddTable(Table table) {
  std::string name = table.name();
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) {
    throw std::runtime_error("duplicate table '" + name + "'");
  }
  return it->second;
}

bool Database::HasTable(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

const Table& Database::table(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::runtime_error("unknown table '" + std::string(name) + "'");
  }
  return it->second;
}

Table& Database::mutable_table(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::runtime_error("unknown table '" + std::string(name) + "'");
  }
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void Database::AddForeignKey(ForeignKey fk) {
  if (!HasTable(fk.from_table) || !HasTable(fk.to_table)) {
    throw std::runtime_error("foreign key references unknown table: " +
                             fk.from_table + " -> " + fk.to_table);
  }
  // Validate the columns exist up front so later joins cannot fail lazily.
  (void)table(fk.from_table).schema().IndexOf(fk.from_column);
  (void)table(fk.to_table).schema().IndexOf(fk.to_column);
  fks_.push_back(std::move(fk));
}

std::pair<std::string, std::string> Database::JoinColumns(
    std::string_view left_table, std::string_view right_table) const {
  for (const ForeignKey& fk : fks_) {
    if (util::EqualsIgnoreCase(fk.from_table, left_table) &&
        util::EqualsIgnoreCase(fk.to_table, right_table)) {
      return {fk.from_column, fk.to_column};
    }
    if (util::EqualsIgnoreCase(fk.from_table, right_table) &&
        util::EqualsIgnoreCase(fk.to_table, left_table)) {
      return {fk.to_column, fk.from_column};
    }
  }
  throw std::runtime_error("no foreign key links '" + std::string(left_table) +
                           "' and '" + std::string(right_table) + "'");
}

}  // namespace dash::db
