#include "db/ops.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/string_util.h"

namespace dash::db {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLe:
      return "<=";
  }
  return "?";
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  auto cmp = lhs <=> rhs;
  switch (op) {
    case CompareOp::kEq:
      return cmp == std::strong_ordering::equal;
    case CompareOp::kGe:
      return cmp != std::strong_ordering::less;
    case CompareOp::kLe:
      return cmp != std::strong_ordering::greater;
  }
  return false;
}

Table HashJoin(const Table& left, const Table& right,
               std::string_view left_col, std::string_view right_col,
               JoinType type, std::string result_name) {
  int li = left.schema().IndexOf(left_col);
  int ri = right.schema().IndexOf(right_col);

  // Build side: right relation, keyed by join value. NULL keys never match.
  std::unordered_map<Value, std::vector<const Row*>, ValueHash> build;
  build.reserve(right.row_count());
  for (const Row& r : right.rows()) {
    const Value& key = r[static_cast<std::size_t>(ri)];
    if (key.is_null()) continue;
    build[key].push_back(&r);
  }

  if (result_name.empty()) {
    result_name = left.name() + "_join_" + right.name();
  }
  Table out(std::move(result_name),
            Schema::Concat(left.schema(), right.schema()));

  const std::size_t right_width = right.schema().size();
  for (const Row& l : left.rows()) {
    const Value& key = l[static_cast<std::size_t>(li)];
    auto it = key.is_null() ? build.end() : build.find(key);
    if (it != build.end()) {
      for (const Row* r : it->second) {
        Row joined = l;
        joined.insert(joined.end(), r->begin(), r->end());
        out.AddRow(std::move(joined));
      }
    } else if (type == JoinType::kLeftOuter) {
      Row joined = l;
      joined.resize(joined.size() + right_width);  // NULL padding
      out.AddRow(std::move(joined));
    }
  }
  return out;
}

std::pair<std::string, std::string> FindJoinColumns(
    const Database& db, const Schema& left_schema,
    std::string_view right_table) {
  for (const ForeignKey& fk : db.foreign_keys()) {
    // Case 1: FK points from a left relation to the right table.
    // Case 2: FK points from the right table into a left relation.
    for (bool flip : {false, true}) {
      const std::string& lt = flip ? fk.to_table : fk.from_table;
      const std::string& lc = flip ? fk.to_column : fk.from_column;
      const std::string& rt = flip ? fk.from_table : fk.to_table;
      const std::string& rc = flip ? fk.from_column : fk.to_column;
      if (!util::EqualsIgnoreCase(rt, right_table)) continue;
      std::string qualified = lt + "." + lc;
      if (left_schema.Find(qualified).has_value()) return {qualified, rc};
    }
  }
  throw std::runtime_error("no foreign key links schema " +
                           left_schema.ToString() + " with table '" +
                           std::string(right_table) + "'");
}

std::pair<std::string, std::string> FindJoinColumns(const Database& db,
                                                    const Schema& left_schema,
                                                    const Schema& right_schema) {
  for (const ForeignKey& fk : db.foreign_keys()) {
    for (bool flip : {false, true}) {
      const std::string& lt = flip ? fk.to_table : fk.from_table;
      const std::string& lc = flip ? fk.to_column : fk.from_column;
      const std::string& rt = flip ? fk.from_table : fk.to_table;
      const std::string& rc = flip ? fk.from_column : fk.to_column;
      std::string lq = lt + "." + lc;
      std::string rq = rt + "." + rc;
      if (left_schema.Find(lq).has_value() && right_schema.Find(rq).has_value()) {
        return {lq, rq};
      }
    }
  }
  throw std::runtime_error("no foreign key links schema " +
                           left_schema.ToString() + " with schema " +
                           right_schema.ToString());
}

Table Filter(const Table& in, const std::function<bool(const Row&)>& pred,
             std::string result_name) {
  Table out(result_name.empty() ? in.name() : std::move(result_name),
            in.schema());
  for (const Row& r : in.rows()) {
    if (pred(r)) out.AddRow(r);
  }
  return out;
}

Table Project(const Table& in, const std::vector<std::string>& columns,
              std::string result_name) {
  std::vector<int> idx;
  std::vector<Column> cols;
  idx.reserve(columns.size());
  for (const std::string& c : columns) {
    int i = in.schema().IndexOf(c);
    idx.push_back(i);
    cols.push_back(in.schema().column(static_cast<std::size_t>(i)));
  }
  Table out(result_name.empty() ? in.name() : std::move(result_name),
            Schema(std::move(cols)));
  for (const Row& r : in.rows()) {
    Row projected;
    projected.reserve(idx.size());
    for (int i : idx) projected.push_back(r[static_cast<std::size_t>(i)]);
    out.AddRow(std::move(projected));
  }
  return out;
}

Table GroupCount(const Table& in, const std::vector<std::string>& group_cols,
                 std::string count_name, std::string result_name) {
  std::vector<int> idx;
  std::vector<Column> cols;
  for (const std::string& c : group_cols) {
    int i = in.schema().IndexOf(c);
    idx.push_back(i);
    cols.push_back(in.schema().column(static_cast<std::size_t>(i)));
  }
  cols.push_back(Column{"", std::move(count_name), ValueType::kInt});

  std::unordered_map<Row, std::int64_t, RowHash> counts;
  counts.reserve(in.row_count());
  // First-seen order for deterministic output. Pointers into the map stay
  // valid across rehash (unordered_map never relocates nodes), so each key
  // is stored exactly once and copied exactly once into the output row.
  std::vector<const std::pair<const Row, std::int64_t>*> order;
  for (const Row& r : in.rows()) {
    Row key;
    key.reserve(idx.size());
    for (int i : idx) key.push_back(r[static_cast<std::size_t>(i)]);
    auto [it, inserted] = counts.emplace(std::move(key), 0);
    if (inserted) order.push_back(&*it);
    ++it->second;
  }

  Table out(result_name.empty() ? in.name() + "_counts" : std::move(result_name),
            Schema(std::move(cols)));
  for (const auto* group : order) {
    Row row;
    row.reserve(group->first.size() + 1);
    row.insert(row.end(), group->first.begin(), group->first.end());
    row.push_back(Value(group->second));
    out.AddRow(std::move(row));
  }
  return out;
}

Table SortBy(const Table& in, const std::vector<std::string>& columns) {
  std::vector<int> idx;
  for (const std::string& c : columns) idx.push_back(in.schema().IndexOf(c));
  std::vector<Row> rows = in.rows();
  std::stable_sort(rows.begin(), rows.end(), [&idx](const Row& a, const Row& b) {
    for (int i : idx) {
      auto cmp = a[static_cast<std::size_t>(i)] <=> b[static_cast<std::size_t>(i)];
      if (cmp != std::strong_ordering::equal) return cmp == std::strong_ordering::less;
    }
    return false;
  });
  Table out(in.name(), in.schema());
  for (Row& r : rows) out.AddRow(std::move(r));
  return out;
}

}  // namespace dash::db
