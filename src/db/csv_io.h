// Table and database persistence as delimited text files.
//
// A deployment of Dash crawls a *customer's* database; this module is the
// loading dock — tables round-trip through a simple self-describing format
// (one header line "relation<TAB>col:type..." followed by tab-escaped
// rows), and a whole database is a directory of `<table>.tbl` files plus a
// `_catalog` file carrying the foreign keys.
#pragma once

#include <iosfwd>
#include <string>

#include "db/database.h"

namespace dash::db {

class CsvIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Writes one table (header + rows).
void SaveTable(const Table& table, std::ostream& out);

// Reads one table; throws CsvIoError on malformed input.
Table LoadTable(std::istream& in);

// Saves every table to `<dir>/<name>.tbl` and the foreign keys to
// `<dir>/_catalog`. The directory must exist.
void SaveDatabase(const Database& db, const std::string& dir);

// Inverse of SaveDatabase.
Database LoadDatabase(const std::string& dir);

}  // namespace dash::db
