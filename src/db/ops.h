// Relational operators: hash join (inner / left outer), selection,
// projection, group-by count.
//
// These power the single-node reference crawler and the example web
// applications; the MapReduce crawlers re-express the same joins as job
// chains (src/core/mr_*.cc).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "db/database.h"
#include "db/table.h"

namespace dash::db {

enum class JoinType { kInner, kLeftOuter };

// Comparison operators permitted in PSJ selection conditions
// (paper Definition 1 restricts to =, >=, <=).
enum class CompareOp { kEq, kGe, kLe };

std::string_view CompareOpName(CompareOp op);

// True iff `lhs op rhs` holds; any NULL operand fails every comparison.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

// Hash-joins `left` and `right` on left_col = right_col. The output schema
// is Schema::Concat(left, right); for kLeftOuter, unmatched left rows pad
// the right columns with NULL (exactly what the paper's
// "restaurant LEFT JOIN comment" produces for comment-less Wandy's).
Table HashJoin(const Table& left, const Table& right,
               std::string_view left_col, std::string_view right_col,
               JoinType type, std::string result_name = "");

// Resolves FK-implied join columns between a (possibly already joined)
// left schema and `right_table`, scanning the catalog's foreign keys for a
// link between any relation present in `left_schema` and the right table.
// Returns {left_column_qualified, right_column_name}.
std::pair<std::string, std::string> FindJoinColumns(
    const Database& db, const Schema& left_schema,
    std::string_view right_table);

// Generalization for joining two already-joined sides (e.g. Q3's
// (C |x| O) |x| (L |x| P)): finds an FK linking any relation in
// `left_schema` with any relation in `right_schema`. Returns qualified
// column names {left, right}.
std::pair<std::string, std::string> FindJoinColumns(const Database& db,
                                                    const Schema& left_schema,
                                                    const Schema& right_schema);

// Rows of `in` satisfying `pred`.
Table Filter(const Table& in, const std::function<bool(const Row&)>& pred,
             std::string result_name = "");

// Keeps the named columns, in the given order.
Table Project(const Table& in, const std::vector<std::string>& columns,
              std::string result_name = "");

// SELECT group_cols, COUNT(*) FROM in GROUP BY group_cols — the paper's
// "aggregate query" of the integrated algorithm, step (1). The count column
// is appended with the given name (default "theta").
Table GroupCount(const Table& in, const std::vector<std::string>& group_cols,
                 std::string count_name = "theta",
                 std::string result_name = "");

// Stable sort of a copy of `in` by the given columns ascending.
Table SortBy(const Table& in, const std::vector<std::string>& columns);

}  // namespace dash::db
