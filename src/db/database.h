// Database catalog: named tables plus foreign-key metadata.
//
// Foreign keys matter to Dash twice: the servlet SQL in the paper joins
// relations without ON clauses (the join condition is implied by the FK,
// e.g. comment.rid -> restaurant.rid), and the DISCOVER-style baseline walks
// FK links to join keyword-matching records.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "db/table.h"

namespace dash::db {

struct ForeignKey {
  std::string from_table;
  std::string from_column;
  std::string to_table;  // referenced (primary-key side)
  std::string to_column;
};

class Database {
 public:
  // Adds a table; throws std::runtime_error on duplicate name.
  Table& AddTable(Table table);

  bool HasTable(std::string_view name) const;
  const Table& table(std::string_view name) const;
  Table& mutable_table(std::string_view name);

  std::vector<std::string> TableNames() const;

  void AddForeignKey(ForeignKey fk);
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  // Finds the FK-implied join columns between two tables, in either
  // direction. Returns {left_column, right_column} as names resolvable in
  // the respective tables' schemas; throws if no FK links them.
  std::pair<std::string, std::string> JoinColumns(
      std::string_view left_table, std::string_view right_table) const;

 private:
  std::map<std::string, Table, std::less<>> tables_;
  std::vector<ForeignKey> fks_;
};

}  // namespace dash::db
