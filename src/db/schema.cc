#include "db/schema.h"

#include "util/string_util.h"

namespace dash::db {

std::optional<int> Schema::Find(std::string_view name) const {
  std::string_view rel, col = name;
  if (auto dot = name.find('.'); dot != std::string_view::npos) {
    rel = name.substr(0, dot);
    col = name.substr(dot + 1);
  }
  std::optional<int> found;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!util::EqualsIgnoreCase(c.name, col)) continue;
    if (!rel.empty() && !util::EqualsIgnoreCase(c.relation, rel)) continue;
    if (found.has_value()) {
      throw std::runtime_error("ambiguous column reference '" +
                               std::string(name) + "' in schema " + ToString());
    }
    found = static_cast<int>(i);
  }
  return found;
}

int Schema::IndexOf(std::string_view name) const {
  auto idx = Find(name);
  if (!idx.has_value()) {
    throw std::runtime_error("unknown column '" + std::string(name) +
                             "' in schema " + ToString());
  }
  return *idx;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].Qualified();
    out += ':';
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace dash::db
