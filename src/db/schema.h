// Relation schemas with qualified-name resolution.
//
// Columns carry both a relation qualifier and a bare name; lookups accept
// either "budget" or "restaurant.budget" and fail loudly on ambiguity, which
// matters once joined schemas concatenate columns from several relations.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "db/value.h"

namespace dash::db {

struct Column {
  std::string relation;  // qualifier; may be empty for derived columns
  std::string name;
  ValueType type = ValueType::kString;

  std::string Qualified() const {
    return relation.empty() ? name : relation + "." + name;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  std::size_t size() const { return columns_.size(); }
  const Column& column(std::size_t i) const { return columns_[i]; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  // Resolves `name` ("col" or "rel.col", case-insensitive) to a column
  // index. Returns nullopt if absent; throws std::runtime_error when a bare
  // name is ambiguous across relations.
  std::optional<int> Find(std::string_view name) const;

  // Like Find but throws std::runtime_error when the column is absent.
  int IndexOf(std::string_view name) const;

  // Concatenation of two schemas (join output).
  static Schema Concat(const Schema& a, const Schema& b);

  // Human-readable "rel.col:type, ..." list for error messages.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace dash::db
