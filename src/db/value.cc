#include "db/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace dash::db {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

double Value::AsNumber() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      double d = AsDouble();
      // Shortest representation that round-trips and reads naturally
      // ("4.3", not "4.2999999999999998").
      std::snprintf(buf, sizeof(buf), "%.12g", d);
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

Value Value::Parse(std::string_view text, ValueType type) {
  if (text.empty()) return Null();
  switch (type) {
    case ValueType::kNull:
      return Null();
    case ValueType::kInt: {
      std::int64_t v;
      return util::ParseInt64(text, &v) ? Value(v) : Null();
    }
    case ValueType::kDouble: {
      double v;
      return util::ParseDouble(text, &v) ? Value(v) : Null();
    }
    case ValueType::kString:
      return Value(std::string(text));
  }
  return Null();
}

std::strong_ordering operator<=>(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) {
    // Mixed numeric comparison keeps int/double interoperable.
    bool a_num = a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
    bool b_num = b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
    if (a_num && b_num) {
      double x = a.AsNumber(), y = b.AsNumber();
      if (x < y) return std::strong_ordering::less;
      if (x > y) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    return a.v_.index() <=> b.v_.index();
  }
  switch (a.type()) {
    case ValueType::kNull:
      return std::strong_ordering::equal;
    case ValueType::kInt:
      return a.AsInt() <=> b.AsInt();
    case ValueType::kDouble: {
      double x = a.AsDouble(), y = b.AsDouble();
      if (x < y) return std::strong_ordering::less;
      if (x > y) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    case ValueType::kString:
      return a.AsString().compare(b.AsString()) <=> 0;
  }
  return std::strong_ordering::equal;
}

std::size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case ValueType::kInt:
      return std::hash<std::int64_t>()(AsInt());
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like the equivalent int so mixed-type keys
      // that compare equal hash equal.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<std::int64_t>()(static_cast<std::int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::size_t RowHash::operator()(const Row& row) const {
  std::size_t h = 1469598103934665603ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

std::size_t HashRowSlice(const Row& row, const std::vector<int>& cols) {
  std::size_t h = 1469598103934665603ULL;
  for (int c : cols) {
    h ^= row[static_cast<std::size_t>(c)].Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace dash::db
