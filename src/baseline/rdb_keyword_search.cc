#include "baseline/rdb_keyword_search.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/string_util.h"

namespace dash::baseline {

namespace {

// Union-find over matched-record indices.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

bool RecordMatches(const db::Row& row,
                   const std::vector<std::string>& keywords) {
  for (const db::Value& v : row) {
    if (v.is_null()) continue;
    std::string text = v.ToString();
    for (const std::string& kw : keywords) {
      if (util::ContainsIgnoreCase(text, kw)) return true;
    }
  }
  return false;
}

std::string JoinedResult::ToString(const db::Database& db) const {
  std::string out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i) out += " |x| ";
    const db::Table& table = db.table(records[i].table);
    out += records[i].table;
    out += "(";
    const db::Row& row = table.rows()[records[i].row_index];
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ", ";
      out += row[c].ToString();
    }
    out += ")";
  }
  return out;
}

std::vector<JoinedResult> RelationalKeywordSearch(
    const db::Database& db, const std::vector<std::string>& keywords) {
  // Step (i): per-relation candidate records.
  std::vector<MatchedRecord> matches;
  for (const std::string& name : db.TableNames()) {
    const db::Table& table = db.table(name);
    for (std::size_t r = 0; r < table.row_count(); ++r) {
      if (RecordMatches(table.rows()[r], keywords)) {
        matches.push_back(MatchedRecord{name, r});
      }
    }
  }

  // Step (ii): connect matches linked through foreign keys.
  DisjointSets sets(matches.size());
  for (const db::ForeignKey& fk : db.foreign_keys()) {
    const db::Table& from = db.table(fk.from_table);
    const db::Table& to = db.table(fk.to_table);
    int fc = from.schema().IndexOf(fk.from_column);
    int tc = to.schema().IndexOf(fk.to_column);

    // Index the referenced side's matches by key value.
    std::unordered_map<db::Value, std::vector<std::size_t>, db::ValueHash>
        to_matches;
    for (std::size_t m = 0; m < matches.size(); ++m) {
      if (matches[m].table != fk.to_table) continue;
      const db::Value& key =
          to.rows()[matches[m].row_index][static_cast<std::size_t>(tc)];
      if (!key.is_null()) to_matches[key].push_back(m);
    }
    for (std::size_t m = 0; m < matches.size(); ++m) {
      if (matches[m].table != fk.from_table) continue;
      const db::Value& key =
          from.rows()[matches[m].row_index][static_cast<std::size_t>(fc)];
      if (key.is_null()) continue;
      auto it = to_matches.find(key);
      if (it == to_matches.end()) continue;
      for (std::size_t other : it->second) sets.Union(m, other);
    }
  }

  // Emit one joined result per connected component.
  std::map<std::size_t, JoinedResult> components;
  for (std::size_t m = 0; m < matches.size(); ++m) {
    components[sets.Find(m)].records.push_back(matches[m]);
  }
  std::vector<JoinedResult> results;
  results.reserve(components.size());
  for (auto& [_, result] : components) {
    std::sort(result.records.begin(), result.records.end(),
              [](const MatchedRecord& a, const MatchedRecord& b) {
                if (a.table != b.table) return a.table < b.table;
                return a.row_index < b.row_index;
              });
    results.push_back(std::move(result));
  }
  std::sort(results.begin(), results.end(),
            [](const JoinedResult& a, const JoinedResult& b) {
              if (a.records[0].table != b.records[0].table) {
                return a.records[0].table < b.records[0].table;
              }
              return a.records[0].row_index < b.records[0].row_index;
            });
  return results;
}

}  // namespace dash::baseline
