#include "baseline/surfacing.h"

#include <algorithm>
#include <array>
#include <unordered_set>
#include <utility>

#include "core/crawler.h"
#include "db/ops.h"

namespace dash::baseline {

namespace {

// What a crawler without database access guesses with: a generic word
// list for text fields and small integers for numeric ones.
constexpr std::array<std::string_view, 12> kBlindDictionary = {
    "a",    "the",  "test",   "food",  "new",   "best",
    "shop", "main", "search", "north", "south", "list"};

std::uint64_t PageContentSignature(const db::Table& page) {
  // Order-independent content hash over rendered rows.
  std::uint64_t h = 0;
  for (const db::Row& row : page.rows()) {
    std::uint64_t row_hash = 1469598103934665603ULL;
    for (const db::Value& v : row) {
      row_hash ^= v.Hash();
      row_hash *= 1099511628211ULL;
    }
    h += row_hash;
  }
  return h;
}

}  // namespace

SurfacingReport SurfaceDbPages(const db::Database& db,
                               const webapp::WebAppInfo& app,
                               const SurfacingOptions& options) {
  core::Crawler crawler(db, app.query);
  const auto& selection = crawler.selection();
  std::vector<core::Fragment> fragments = crawler.DeriveFragments();

  // Per-attribute probe value pools.
  std::vector<std::vector<db::Value>> pools(selection.size());
  if (options.strategy == ProbeStrategy::kInformed) {
    for (std::size_t d = 0; d < selection.size(); ++d) {
      std::set<db::Value> values;
      for (const core::Fragment& f : fragments) values.insert(f.id[d]);
      pools[d].assign(values.begin(), values.end());
    }
  } else {
    // Blind probing: fragment identifiers are unknown, so guess.
    for (std::size_t d = 0; d < selection.size(); ++d) {
      bool numeric = !fragments.empty() &&
                     fragments[0].id[d].type() != db::ValueType::kString;
      if (numeric) {
        for (int v = 0; v <= 100; v += 5) pools[d].push_back(db::Value(v));
      } else {
        for (std::string_view w : kBlindDictionary) {
          pools[d].push_back(db::Value(std::string(w)));
        }
      }
    }
  }

  webapp::WebApplication runtime(db, app);
  util::SplitMix64 rng(options.seed);
  SurfacingReport report;
  report.fragments_total = fragments.size();

  std::unordered_set<std::uint64_t> seen_pages;
  std::vector<bool> covered(fragments.size(), false);
  std::size_t covered_count = 0;

  for (std::size_t i = 0; i < options.max_invocations; ++i) {
    // Draw one trial parameter assignment.
    std::map<std::string, std::string> params;
    std::vector<db::Value> eq_values(selection.size());
    std::vector<std::pair<db::Value, db::Value>> ranges(selection.size());
    bool skip = false;
    for (std::size_t d = 0; d < selection.size(); ++d) {
      if (pools[d].empty()) {
        skip = true;
        break;
      }
      const sql::SelectionAttribute& attr = selection[d];
      if (!attr.is_range) {
        eq_values[d] = pools[d][rng.Below(pools[d].size())];
        params[attr.eq_parameter] = eq_values[d].ToString();
      } else {
        db::Value a = pools[d][rng.Below(pools[d].size())];
        db::Value b = pools[d][rng.Below(pools[d].size())];
        if (b < a) std::swap(a, b);
        ranges[d] = {a, b};
        if (!attr.min_parameter.empty()) {
          params[attr.min_parameter] = a.ToString();
        }
        if (!attr.max_parameter.empty()) {
          params[attr.max_parameter] = b.ToString();
        }
      }
    }
    if (skip) break;

    // Invoke the application with the trial query string.
    webapp::HttpRequest request =
        webapp::ParseUrl(app.UrlFor(params));
    db::Table page = runtime.ResultFor(request);
    ++report.invocations;

    if (page.row_count() == 0) {
      ++report.empty_pages;
      continue;
    }
    if (!seen_pages.insert(PageContentSignature(page)).second) {
      ++report.duplicate_pages;
      continue;
    }
    ++report.distinct_pages;

    // Coverage accounting: which fragments satisfied this assignment.
    for (std::size_t f = 0; f < fragments.size(); ++f) {
      if (covered[f]) continue;
      bool satisfied = true;
      for (std::size_t d = 0; d < selection.size() && satisfied; ++d) {
        const db::Value& v = fragments[f].id[d];
        if (!selection[d].is_range) {
          satisfied = v == eq_values[d];
        } else {
          satisfied = !(v < ranges[d].first) && !(ranges[d].second < v);
        }
      }
      if (satisfied) {
        covered[f] = true;
        ++covered_count;
      }
    }
    if (covered_count == fragments.size() &&
        options.strategy == ProbeStrategy::kInformed) {
      // Full coverage reached; keep probing only if the budget demands a
      // fixed invocation count (we stop — the interesting number is how
      // many invocations full coverage took).
      report.fragments_covered = covered_count;
      return report;
    }
  }
  report.fragments_covered = covered_count;
  return report;
}

}  // namespace dash::baseline
