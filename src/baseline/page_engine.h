// The "intuitive approach" baseline (paper Section IV): materialize every
// db-page the application can generate, treat each as an independent
// document, and build a conventional page-level inverted file.
//
// This is what Dash's fragment design avoids. The engine exists to
// reproduce the motivation quantitatively: against the fragment index it
// shows (i) combinatorial page counts and index blow-up from overlapped
// content, and (ii) redundant results — pages in the same top-k whose
// content covers one another (the paper's P1-vs-P2 example).
//
// Page enumeration: every equality-value combination, crossed with every
// ordered pair (lo <= hi) of observed range values — the canonical query
// strings a user could issue whose results differ. With r distinct range
// values per equality group that is r*(r+1)/2 pages per group, versus r
// fragments for Dash.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/crawler.h"
#include "webapp/query_string.h"

namespace dash::baseline {

struct PageResult {
  std::string url;
  double score = 0;
  std::uint64_t size_words = 0;
  // Fragment handles whose union is this page (for overlap analysis).
  std::vector<core::FragmentHandle> fragments;
};

struct PageEngineOptions {
  // Safety valve: stop enumerating after this many pages (0 = unlimited).
  std::size_t max_pages = 0;
};

class PageEngine {
 public:
  // Crawls `db` through `app`'s query and materializes all pages.
  PageEngine(const db::Database& db, webapp::WebAppInfo app,
             PageEngineOptions options = {});

  // Conventional page-level TF/IDF top-k (IDF = 1/number of pages
  // containing the keyword; TF normalized by page size, mirroring Dash's
  // scoring so the comparison is apples-to-apples).
  std::vector<PageResult> Search(const std::vector<std::string>& keywords,
                                 int k) const;

  std::size_t page_count() const { return pages_.size(); }
  // Bytes of posting-list storage (keyword text + postings).
  std::size_t IndexSizeBytes() const;
  // Total words across all materialized pages (duplicated content counts
  // every time — the storage the paper says explodes).
  std::uint64_t TotalPageWords() const;
  double build_seconds() const { return build_seconds_; }
  bool truncated() const { return truncated_; }

  // Fraction of results in `results` whose fragment set is contained in
  // another result's fragment set — the redundancy measure motivating
  // fragments (P1 covered by P2 => one of them is redundant).
  static double RedundantFraction(const std::vector<PageResult>& results);

 private:
  struct Page {
    std::vector<core::FragmentHandle> fragments;
    std::uint64_t words = 0;
    std::string url;
  };

  webapp::WebAppInfo app_;
  std::vector<Page> pages_;
  // keyword -> (page, occurrences), sorted by occurrences descending.
  std::unordered_map<std::string,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      postings_;
  double build_seconds_ = 0;
  bool truncated_ = false;
};

}  // namespace dash::baseline
