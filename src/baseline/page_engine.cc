#include "baseline/page_engine.h"

#include <algorithm>
#include <stdexcept>

#include "util/stopwatch.h"
#include "util/tokenizer.h"

namespace dash::baseline {

namespace {

// Keyword counts of one fragment.
struct FragmentDoc {
  db::Row id;
  std::unordered_map<std::string, std::size_t> counts;
  std::uint64_t words = 0;
};

}  // namespace

PageEngine::PageEngine(const db::Database& db, webapp::WebAppInfo app,
                       PageEngineOptions options)
    : app_(std::move(app)) {
  util::Stopwatch watch;
  core::Crawler crawler(db, app_.query);
  const auto& selection = crawler.selection();
  const std::size_t num_eq = crawler.num_eq_attributes();
  const std::size_t num_range = crawler.num_range_attributes();
  if (num_range > 1) {
    throw std::runtime_error(
        "PageEngine enumerates pages for at most one range attribute");
  }

  // Tokenize fragments once; pages below are unions of fragment runs.
  std::vector<FragmentDoc> docs;
  for (core::Fragment& frag : crawler.DeriveFragments()) {
    FragmentDoc doc;
    doc.id = std::move(frag.id);
    util::TokenCounter counter;
    for (const db::Row& row : frag.rows) {
      core::Crawler::CountRowKeywords(row, counter);
    }
    doc.counts.insert(counter.counts().begin(), counter.counts().end());
    doc.words = counter.total();
    docs.push_back(std::move(doc));
  }

  auto url_for = [&](const db::Row& first_id, const db::Row& last_id) {
    std::map<std::string, std::string> params;
    for (std::size_t d = 0; d < selection.size(); ++d) {
      const sql::SelectionAttribute& attr = selection[d];
      if (!attr.is_range) {
        params[attr.eq_parameter] = first_id[d].ToString();
      } else {
        if (!attr.min_parameter.empty()) {
          params[attr.min_parameter] = first_id[d].ToString();
        }
        if (!attr.max_parameter.empty()) {
          params[attr.max_parameter] = last_id[d].ToString();
        }
      }
    }
    return app_.UrlFor(params);
  };

  auto emit_page = [&](std::size_t lo, std::size_t hi,
                       const std::unordered_map<std::string, std::size_t>&
                           counts,
                       std::uint64_t words) {
    std::uint32_t page = static_cast<std::uint32_t>(pages_.size());
    Page p;
    for (std::size_t f = lo; f <= hi; ++f) {
      p.fragments.push_back(static_cast<core::FragmentHandle>(f));
    }
    p.words = words;
    p.url = url_for(docs[lo].id, docs[hi].id);
    pages_.push_back(std::move(p));
    for (const auto& [keyword, count] : counts) {
      postings_[keyword].emplace_back(page, static_cast<std::uint32_t>(count));
    }
  };

  // Enumerate pages per equality group.
  std::size_t begin = 0;
  while (begin < docs.size() && !truncated_) {
    std::size_t end = begin + 1;
    while (end < docs.size()) {
      bool same = true;
      for (std::size_t d = 0; d < num_eq; ++d) {
        if (!(docs[begin].id[d] == docs[end].id[d])) {
          same = false;
          break;
        }
      }
      if (!same) break;
      ++end;
    }

    if (num_range == 0) {
      // One page per fragment: the query pins every selection attribute.
      for (std::size_t f = begin; f < end && !truncated_; ++f) {
        emit_page(f, f, docs[f].counts, docs[f].words);
        if (options.max_pages != 0 && pages_.size() >= options.max_pages) {
          truncated_ = true;
        }
      }
    } else {
      // Every [lo, hi] range-value interval is a distinct page.
      for (std::size_t lo = begin; lo < end && !truncated_; ++lo) {
        std::unordered_map<std::string, std::size_t> counts;
        std::uint64_t words = 0;
        for (std::size_t hi = lo; hi < end && !truncated_; ++hi) {
          for (const auto& [keyword, count] : docs[hi].counts) {
            counts[keyword] += count;
          }
          words += docs[hi].words;
          emit_page(lo, hi, counts, words);
          if (options.max_pages != 0 && pages_.size() >= options.max_pages) {
            truncated_ = true;
          }
        }
      }
    }
    begin = end;
  }

  // Inverted-file order: occurrences descending.
  for (auto& [keyword, list] : postings_) {
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
  }
  build_seconds_ = watch.ElapsedSeconds();
}

std::vector<PageResult> PageEngine::Search(
    const std::vector<std::string>& keywords, int k) const {
  std::vector<std::string> terms;
  for (const std::string& raw : keywords) {
    for (std::string& tok : util::Tokenize(raw)) {
      if (std::find(terms.begin(), terms.end(), tok) == terms.end()) {
        terms.push_back(std::move(tok));
      }
    }
  }
  std::unordered_map<std::uint32_t, double> scores;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    double idf = 1.0 / static_cast<double>(it->second.size());
    for (const auto& [page, occ] : it->second) {
      const Page& p = pages_[page];
      if (p.words == 0) continue;
      scores[page] +=
          idf * static_cast<double>(occ) / static_cast<double>(p.words);
    }
  }
  std::vector<std::pair<std::uint32_t, double>> ranked(scores.begin(),
                                                       scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (k >= 0 && ranked.size() > static_cast<std::size_t>(k)) {
    ranked.resize(static_cast<std::size_t>(k));
  }
  std::vector<PageResult> results;
  results.reserve(ranked.size());
  for (const auto& [page, score] : ranked) {
    const Page& p = pages_[page];
    results.push_back(PageResult{p.url, score, p.words, p.fragments});
  }
  return results;
}

std::size_t PageEngine::IndexSizeBytes() const {
  std::size_t bytes = 0;
  for (const auto& [keyword, list] : postings_) {
    bytes += keyword.size() + list.size() * sizeof(list[0]);
  }
  return bytes;
}

std::uint64_t PageEngine::TotalPageWords() const {
  std::uint64_t total = 0;
  for (const Page& p : pages_) total += p.words;
  return total;
}

double PageEngine::RedundantFraction(const std::vector<PageResult>& results) {
  if (results.empty()) return 0.0;
  std::size_t redundant = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (i == j) continue;
      const auto& a = results[i].fragments;
      const auto& b = results[j].fragments;
      if (a.size() > b.size() ||
          (a.size() == b.size() && i < j)) {  // count each mutual pair once
        continue;
      }
      if (std::includes(b.begin(), b.end(), a.begin(), a.end())) {
        ++redundant;
        break;
      }
    }
  }
  return static_cast<double>(redundant) / static_cast<double>(results.size());
}

}  // namespace dash::baseline
