// DISCOVER-style relational keyword search (paper Section II's review of
// [14], [18], [20], [26]).
//
// The classical approach Dash argues against: (i) locate records whose
// attribute values contain any queried keyword, then (ii) join matching
// records that are linked through referential (foreign-key) constraints.
// Running the paper's own example — keyword "burger" over fooddb — yields
// its three result records: comment 205 alone, comment 202 alone, and
// restaurant 001 joined with comment 201.
//
// Implemented as: match records per relation, build a graph over matching
// records with edges for FK links between them, and emit one result per
// connected component (the joined tuple). This exposes exactly the defects
// Section II lists: results without their context rows (no restaurant for
// 205) and raw ids in the output.
#pragma once

#include <string>
#include <vector>

#include "db/database.h"

namespace dash::baseline {

struct MatchedRecord {
  std::string table;
  std::size_t row_index = 0;
};

// One joined result: FK-connected matching records.
struct JoinedResult {
  std::vector<MatchedRecord> records;

  // Human-readable rendering: "table(v1, v2, ...) |x| table2(...)".
  std::string ToString(const db::Database& db) const;
};

// Case-insensitive substring/keyword match over every attribute value.
bool RecordMatches(const db::Row& row, const std::vector<std::string>& keywords);

// Runs the two-step search. Results are deterministic: ordered by
// (first table name, first row index).
std::vector<JoinedResult> RelationalKeywordSearch(
    const db::Database& db, const std::vector<std::string>& keywords);

}  // namespace dash::baseline
