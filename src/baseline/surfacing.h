// The "surfacing" baseline — the pre-Dash way of reaching db-pages that
// Section I describes and rejects: "search engines may submit as many
// trial query strings as possible to web applications to generate
// db-pages ... [this] cannot guarantee the completeness of collected
// db-pages ... may generate many valueless db-pages, e.g., empty pages
// [and] pages with identical contents. In addition, both websites hosting
// web applications and search engines will be easily exhausted by such
// overwhelming web application invocations." (Cf. Google's DeepWeb
// surfacing, ref. [19].)
//
// SurfacingCrawler invokes a WebApplication with trial query strings under
// an invocation budget and records what that buys: how many invocations
// produced empty pages, how many produced a page whose content was already
// seen, and how much of the application's distinct content was actually
// discovered. Two probing strategies are provided:
//
//   * kBlind      — the crawler knows only the URL fields: it probes
//                   values drawn from small dictionaries / numeric ranges
//                   (what a crawler without database access can do);
//   * kInformed   — the crawler samples real attribute values from the
//                   database (the paper's best case for surfacing, still
//                   quadratically wasteful on range parameters).
//
// bench_surfacing compares both against Dash's database crawling, which
// touches every fragment exactly once by construction.
//
// Concurrency audit (analyze preset / dash_lint): SurfaceDbPages is a pure
// function of (db, app, options) with no shared mutable state — the probe
// dictionaries are constexpr, the RNG is a stack-local SplitMix64 seeded
// from options.seed, and all accounting lives in locals. It is safe to run
// concurrent surfacing crawls with distinct reports; nothing here may grow
// namespace-scope mutable state without a dash::Mutex + DASH_GUARDED_BY
// (dash_lint rule global-state).
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "util/random.h"
#include "webapp/app_runtime.h"

namespace dash::baseline {

enum class ProbeStrategy { kBlind, kInformed };

struct SurfacingOptions {
  ProbeStrategy strategy = ProbeStrategy::kInformed;
  std::size_t max_invocations = 1000;
  std::uint64_t seed = 7;
};

struct SurfacingReport {
  std::size_t invocations = 0;
  std::size_t empty_pages = 0;
  std::size_t duplicate_pages = 0;   // content identical to an earlier page
  std::size_t distinct_pages = 0;
  // Coverage of the application's atomic content: fraction of the
  // database-derivable fragments whose content appeared in at least one
  // surfaced page.
  std::size_t fragments_total = 0;
  std::size_t fragments_covered = 0;

  double FragmentCoverage() const {
    return fragments_total == 0
               ? 1.0
               : static_cast<double>(fragments_covered) /
                     static_cast<double>(fragments_total);
  }
  double WasteFraction() const {
    return invocations == 0
               ? 0.0
               : static_cast<double>(empty_pages + duplicate_pages) /
                     static_cast<double>(invocations);
  }
};

// Runs the surfacing crawl against `app` (whose database is needed for
// kInformed value sampling and for coverage accounting).
SurfacingReport SurfaceDbPages(const db::Database& db,
                               const webapp::WebAppInfo& app,
                               const SurfacingOptions& options = {});

}  // namespace dash::baseline
