#include "tpch/tpch.h"

#include <array>
#include <cstdio>

#include "util/random.h"

namespace dash::tpch {

namespace {

using db::Column;
using db::Schema;
using db::Table;
using db::Value;
using db::ValueType;

constexpr std::array<std::string_view, 5> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

constexpr std::array<std::string_view, 25> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",       "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",        "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",       "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",        "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

constexpr std::array<std::string_view, 5> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"};

constexpr std::array<std::string_view, 5> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};

constexpr std::array<std::string_view, 3> kStatuses = {"F", "O", "P"};

// TPC-H-flavoured word stock; the head of the Zipf distribution, so these
// become the "hot" keywords. The tail is synthetic ("termNNNN"), giving a
// long, sparse cold end.
constexpr std::array<std::string_view, 96> kCommonWords = {
    "furiously", "quickly",  "slyly",    "carefully", "blithely", "express",
    "regular",   "special",  "final",    "pending",   "ironic",   "bold",
    "even",      "silent",   "daring",   "unusual",   "packages", "deposits",
    "requests",  "accounts", "instructions", "foxes", "pinto",    "beans",
    "theodolites", "platelets", "pearls", "dolphins",  "warhorses", "asymptotes",
    "courts",    "ideas",    "dependencies", "excuses", "sentiments", "realms",
    "sauternes", "dugouts",  "braids",   "frets",     "sheaves",  "hockey",
    "players",   "about",    "above",    "according", "across",   "against",
    "along",     "alongside", "among",   "around",    "atop",     "beside",
    "between",   "beyond",   "detect",   "haggle",    "sleep",    "nag",
    "wake",      "cajole",   "boost",    "breach",    "doze",     "engage",
    "grow",      "hang",     "hinder",   "integrate", "kindle",   "lose",
    "maintain",  "mold",     "nod",      "poach",     "promise",  "snooze",
    "solve",     "thrash",   "twist",    "unwind",    "wander",   "affix",
    "print",     "serve",    "believe",  "doubt",     "run",      "play",
    "use",       "impress",  "sublate",  "x-ray",     "ship",     "burnished"};

constexpr std::size_t kVocabularySize = 5000;

std::vector<std::string> BuildVocabulary() {
  std::vector<std::string> vocab;
  vocab.reserve(kVocabularySize);
  for (std::string_view w : kCommonWords) vocab.emplace_back(w);
  for (std::size_t i = vocab.size(); i < kVocabularySize; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "term%04zu", i);
    vocab.emplace_back(buf);
  }
  return vocab;
}

const util::ZipfSampler& CommentSampler() {
  static const util::ZipfSampler sampler(kVocabularySize, 1.0);
  return sampler;
}

std::string MakeComment(util::SplitMix64& rng, int min_words, int max_words) {
  const auto& vocab = Vocabulary();
  const auto& sampler = CommentSampler();
  int n = static_cast<int>(rng.Range(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out.push_back(' ');
    out += vocab[sampler.Sample(rng)];
  }
  return out;
}

std::string MakeDate(util::SplitMix64& rng) {
  int year = static_cast<int>(rng.Range(1992, 1998));
  int month = static_cast<int>(rng.Range(1, 12));
  int day = static_cast<int>(rng.Range(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

Table MakeRegion() {
  Table t("region", Schema({{"region", "rid", ValueType::kInt},
                            {"region", "name", ValueType::kString},
                            {"region", "comment", ValueType::kString}}));
  util::SplitMix64 rng(0xF00D);
  for (std::size_t i = 0; i < kRegions.size(); ++i) {
    t.AddRow({Value(static_cast<std::int64_t>(i)),
              Value(std::string(kRegions[i])), Value(MakeComment(rng, 4, 10))});
  }
  return t;
}

Table MakeNation() {
  Table t("nation", Schema({{"nation", "nid", ValueType::kInt},
                            {"nation", "name", ValueType::kString},
                            {"nation", "rid", ValueType::kInt},
                            {"nation", "comment", ValueType::kString}}));
  util::SplitMix64 rng(0xBEEF);
  for (std::size_t i = 0; i < kNations.size(); ++i) {
    t.AddRow({Value(static_cast<std::int64_t>(i)),
              Value(std::string(kNations[i])),
              Value(static_cast<std::int64_t>(i % kRegions.size())),
              Value(MakeComment(rng, 6, 14))});
  }
  return t;
}

}  // namespace

std::string_view ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kSmall:
      return "small";
    case Scale::kMedium:
      return "medium";
    case Scale::kLarge:
      return "large";
  }
  return "?";
}

ScaleSpec SpecFor(Scale scale) {
  // Ratios mirror the paper's Table II (medium = 5x small, large = 10x
  // small), downscaled to laptop size.
  switch (scale) {
    case Scale::kTiny:
      return {20, 3, 3, 30};
    case Scale::kSmall:
      return {200, 10, 4, 200};
    case Scale::kMedium:
      return {1000, 10, 4, 1000};
    case Scale::kLarge:
      return {2000, 10, 4, 2000};
  }
  return {};
}

const std::vector<std::string>& Vocabulary() {
  static const std::vector<std::string> vocab = BuildVocabulary();
  return vocab;
}

db::Database Generate(Scale scale, std::uint64_t seed) {
  const ScaleSpec spec = SpecFor(scale);
  util::SplitMix64 rng(seed);

  db::Database database;
  database.AddTable(MakeRegion());
  database.AddTable(MakeNation());

  // ---- customer ----
  {
    Table t("customer", Schema({{"customer", "cid", ValueType::kInt},
                                {"customer", "name", ValueType::kString},
                                {"customer", "nid", ValueType::kInt},
                                {"customer", "acctbal", ValueType::kDouble},
                                {"customer", "mktsegment", ValueType::kString},
                                {"customer", "comment", ValueType::kString}}));
    for (int c = 0; c < spec.customers; ++c) {
      char name[32];
      std::snprintf(name, sizeof(name), "Customer#%06d", c);
      // Account balances land on cents in [-999.99, 9999.99], like dbgen.
      double acctbal = static_cast<double>(rng.Range(-99999, 999999)) / 100.0;
      t.AddRow({Value(static_cast<std::int64_t>(c)), Value(std::string(name)),
                Value(rng.Range(0, static_cast<std::int64_t>(kNations.size()) - 1)),
                Value(acctbal),
                Value(std::string(kSegments[rng.Below(kSegments.size())])),
                Value(MakeComment(rng, 8, 20))});
    }
    database.AddTable(std::move(t));
  }

  // ---- part ----
  {
    Table t("part", Schema({{"part", "pid", ValueType::kInt},
                            {"part", "name", ValueType::kString},
                            {"part", "brand", ValueType::kString},
                            {"part", "type", ValueType::kString},
                            {"part", "size", ValueType::kInt},
                            {"part", "retailprice", ValueType::kDouble},
                            {"part", "comment", ValueType::kString}}));
    const auto& vocab = Vocabulary();
    for (int p = 0; p < spec.parts; ++p) {
      std::string pname = vocab[rng.Below(kCommonWords.size())] + " " +
                          vocab[rng.Below(kCommonWords.size())];
      char brand[16];
      std::snprintf(brand, sizeof(brand), "Brand#%lld",
                    static_cast<long long>(rng.Range(11, 55)));
      t.AddRow({Value(static_cast<std::int64_t>(p)), Value(std::move(pname)),
                Value(std::string(brand)),
                Value(vocab[rng.Below(kCommonWords.size())]),
                Value(rng.Range(1, 50)),
                Value(static_cast<double>(rng.Range(90000, 200000)) / 100.0),
                Value(MakeComment(rng, 4, 12))});
    }
    database.AddTable(std::move(t));
  }

  // ---- orders + lineitem ----
  {
    Table orders("orders", Schema({{"orders", "oid", ValueType::kInt},
                                   {"orders", "cid", ValueType::kInt},
                                   {"orders", "status", ValueType::kString},
                                   {"orders", "totalprice", ValueType::kDouble},
                                   {"orders", "odate", ValueType::kString},
                                   {"orders", "priority", ValueType::kString},
                                   {"orders", "comment", ValueType::kString}}));
    Table lineitem("lineitem",
                   Schema({{"lineitem", "lid", ValueType::kInt},
                           {"lineitem", "oid", ValueType::kInt},
                           {"lineitem", "pid", ValueType::kInt},
                           {"lineitem", "qty", ValueType::kInt},
                           {"lineitem", "price", ValueType::kDouble},
                           {"lineitem", "discount", ValueType::kDouble},
                           {"lineitem", "shipdate", ValueType::kString},
                           {"lineitem", "comment", ValueType::kString}}));
    std::int64_t next_oid = 0, next_lid = 0;
    for (int c = 0; c < spec.customers; ++c) {
      // 1 .. 2*avg orders per customer (mean = avg), like dbgen's spread.
      std::int64_t norders = rng.Range(1, 2 * spec.orders_per_customer - 1);
      for (std::int64_t o = 0; o < norders; ++o) {
        std::int64_t oid = next_oid++;
        orders.AddRow(
            {Value(oid), Value(static_cast<std::int64_t>(c)),
             Value(std::string(kStatuses[rng.Below(kStatuses.size())])),
             Value(static_cast<double>(rng.Range(100000, 50000000)) / 100.0),
             Value(MakeDate(rng)),
             Value(std::string(kPriorities[rng.Below(kPriorities.size())])),
             Value(MakeComment(rng, 6, 16))});
        std::int64_t nitems = rng.Range(1, 2 * spec.lineitems_per_order - 1);
        for (std::int64_t l = 0; l < nitems; ++l) {
          lineitem.AddRow(
              {Value(next_lid++), Value(oid),
               Value(rng.Range(0, spec.parts - 1)),
               Value(rng.Range(1, 50)),
               Value(static_cast<double>(rng.Range(10000, 10000000)) / 100.0),
               Value(static_cast<double>(rng.Range(0, 10)) / 100.0),
               Value(MakeDate(rng)), Value(MakeComment(rng, 5, 14))});
        }
      }
    }
    database.AddTable(std::move(orders));
    database.AddTable(std::move(lineitem));
  }

  database.AddForeignKey({"nation", "rid", "region", "rid"});
  database.AddForeignKey({"customer", "nid", "nation", "nid"});
  database.AddForeignKey({"orders", "cid", "customer", "cid"});
  database.AddForeignKey({"lineitem", "oid", "orders", "oid"});
  database.AddForeignKey({"lineitem", "pid", "part", "pid"});
  return database;
}

}  // namespace dash::tpch
