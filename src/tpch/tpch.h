// Deterministic TPC-H-style dataset generator.
//
// The paper evaluates Dash on three TPC-H datasets (Table II: small /
// medium / large, 725 MB – 7.4 GB of lineitem alone) and three application
// queries over the relations region, nation, customer, orders, lineitem and
// part (Table III). This generator reproduces that schema subset and its
// referential structure at laptop scale:
//
//   region(rid, name, comment)                           5 rows
//   nation(nid, name, rid, comment)                     25 rows
//   customer(cid, name, nid, acctbal, mktsegment, comment)
//   orders(oid, cid, status, totalprice, odate, priority, comment)
//   lineitem(lid, oid, pid, qty, price, discount, shipdate, comment)
//   part(pid, name, brand, type, size, retailprice, comment)
//
// Comment text is drawn from a fixed vocabulary with a Zipf(1.0) rank
// distribution, so keyword document frequencies are skewed the way the
// paper's cold/warm/hot keyword buckets (bottom/middle/top 10% by DF)
// require. Scale ratios mirror Table II: medium = 5x small, large = 10x
// small. Generation is fully deterministic for a given (scale, seed).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "db/database.h"

namespace dash::tpch {

enum class Scale { kTiny, kSmall, kMedium, kLarge };

std::string_view ScaleName(Scale scale);

struct ScaleSpec {
  int customers = 0;
  int orders_per_customer = 0;   // average; actual count varies per customer
  int lineitems_per_order = 0;   // average
  int parts = 0;
};

ScaleSpec SpecFor(Scale scale);

// Generates the full database (all six relations + foreign keys).
db::Database Generate(Scale scale, std::uint64_t seed = 42);

// Vocabulary used for comment text; rank 0 is the most frequent word.
// Exposed so tests/benches can reason about expected DF skew.
const std::vector<std::string>& Vocabulary();

}  // namespace dash::tpch
