#include "webapp/query_string.h"

#include <stdexcept>

#include "util/string_util.h"

namespace dash::webapp {

QueryStringCodec::QueryStringCodec(std::vector<ParamBinding> bindings)
    : bindings_(std::move(bindings)) {
  for (std::size_t i = 0; i < bindings_.size(); ++i) {
    for (std::size_t j = i + 1; j < bindings_.size(); ++j) {
      if (bindings_[i].url_field == bindings_[j].url_field ||
          bindings_[i].parameter == bindings_[j].parameter) {
        throw std::runtime_error("duplicate binding for field '" +
                                 bindings_[i].url_field + "' / parameter '" +
                                 bindings_[i].parameter + "'");
      }
    }
  }
}

std::map<std::string, std::string> QueryStringCodec::Parse(
    std::string_view query_string) const {
  std::map<std::string, std::string> params;
  if (query_string.empty()) return params;
  for (std::string_view pair : util::Split(query_string, '&')) {
    auto eq = pair.find('=');
    std::string_view field = pair.substr(0, eq);
    std::string value =
        eq == std::string_view::npos ? "" : util::UrlDecode(pair.substr(eq + 1));
    for (const ParamBinding& b : bindings_) {
      if (b.url_field != field) continue;
      auto [it, inserted] = params.emplace(b.parameter, std::move(value));
      if (!inserted) {
        throw std::runtime_error("field '" + b.url_field +
                                 "' appears twice in query string");
      }
      break;
    }
  }
  return params;
}

std::string QueryStringCodec::Render(
    const std::map<std::string, std::string>& params) const {
  std::string out;
  for (const ParamBinding& b : bindings_) {
    auto it = params.find(b.parameter);
    if (it == params.end()) {
      throw std::runtime_error("missing value for parameter '" + b.parameter +
                               "' (url field '" + b.url_field + "')");
    }
    if (!out.empty()) out.push_back('&');
    out += b.url_field;
    out.push_back('=');
    out += util::UrlEncode(it->second);
  }
  return out;
}

}  // namespace dash::webapp
