#include "webapp/servlet_analyzer.h"

#include <cctype>
#include <string>
#include <vector>

#include "sql/parser.h"
#include "util/string_util.h"

namespace dash::webapp {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Blanks out // and /* */ comments (preserving string literals and
// positions) so commented-out getParameter calls or SQL do not confuse the
// extraction passes.
std::string StripComments(std::string_view source) {
  std::string out(source);
  std::size_t i = 0;
  while (i < out.size()) {
    char c = out[i];
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < out.size() && out[i] != quote) {
        i += out[i] == '\\' ? 2 : 1;
      }
      ++i;  // closing quote (or end)
      continue;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
      continue;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i < out.size() &&
             !(out[i] == '*' && i + 1 < out.size() && out[i + 1] == '/')) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < out.size()) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      }
      continue;
    }
    ++i;
  }
  return out;
}

// Reads a quoted literal starting at s[i] (which must be '"' or '\'');
// returns the unescaped content and advances i past the closing quote.
std::string ReadLiteral(std::string_view s, std::size_t& i) {
  char quote = s[i];
  ++i;
  std::string out;
  while (i < s.size() && s[i] != quote) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out.push_back(s[i + 1]);
      i += 2;
      continue;
    }
    out.push_back(s[i]);
    ++i;
  }
  if (i >= s.size()) {
    throw AnalysisError("unterminated string literal in servlet source");
  }
  ++i;  // closing quote
  return out;
}

// The identifier ending just before position `end` (skipping trailing
// whitespace); empty if none.
std::string IdentBefore(std::string_view s, std::size_t end) {
  std::size_t e = end;
  while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  std::size_t b = e;
  while (b > 0 && IsIdentChar(s[b - 1])) --b;
  return std::string(s.substr(b, e - b));
}

// Extracts `var = x.getParameter("field")` bindings, in source order.
std::vector<ParamBinding> ExtractBindings(std::string_view source) {
  std::vector<ParamBinding> bindings;
  static constexpr std::string_view kCall = ".getParameter(";
  std::size_t pos = 0;
  while ((pos = source.find(kCall, pos)) != std::string_view::npos) {
    std::size_t i = pos + kCall.size();
    while (i < source.size() && std::isspace(static_cast<unsigned char>(source[i]))) ++i;
    if (i >= source.size() || (source[i] != '"' && source[i] != '\'')) {
      throw AnalysisError(
          "getParameter argument is not a string literal; cannot deduce the "
          "URL field statically");
    }
    std::string field = ReadLiteral(source, i);

    // Walk left: receiver identifier, then '=', then the assigned variable.
    std::string receiver = IdentBefore(source, pos);
    std::size_t eq = pos - receiver.size();
    while (eq > 0 && std::isspace(static_cast<unsigned char>(source[eq - 1]))) --eq;
    if (eq == 0 || source[eq - 1] != '=') {
      throw AnalysisError("getParameter result is not assigned to a variable");
    }
    std::string var = IdentBefore(source, eq - 1);
    if (var.empty()) {
      throw AnalysisError("cannot determine variable assigned from getParameter");
    }
    bindings.push_back(ParamBinding{std::move(field), std::move(var)});
    pos = i;
  }
  if (bindings.empty()) {
    throw AnalysisError("no getParameter calls found in servlet source");
  }
  return bindings;
}

// Symbolically evaluates the string-concatenation expression starting at
// `i` (just past '='): literals contribute their text, identifiers
// contribute "$ident". Stops at ';'.
std::string EvalConcatenation(std::string_view source, std::size_t i) {
  std::string out;
  while (i < source.size() && source[i] != ';') {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == '+') {
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      out += ReadLiteral(source, i);
      continue;
    }
    if (IsIdentChar(c)) {
      std::size_t b = i;
      while (i < source.size() && IsIdentChar(source[i])) ++i;
      out += "$";
      out += source.substr(b, i - b);
      continue;
    }
    throw AnalysisError(std::string("unexpected character '") + c +
                        "' in SQL concatenation expression");
  }
  return out;
}

// Finds the assignment whose concatenated value contains SELECT and
// returns the parameterized SQL text.
std::string ExtractSql(std::string_view source) {
  std::size_t pos = 0;
  while ((pos = source.find('=', pos)) != std::string_view::npos) {
    // Skip ==, <=, >=, != comparisons.
    if ((pos + 1 < source.size() && source[pos + 1] == '=') ||
        (pos > 0 && (source[pos - 1] == '=' || source[pos - 1] == '<' ||
                     source[pos - 1] == '>' || source[pos - 1] == '!'))) {
      ++pos;
      continue;
    }
    std::size_t i = pos + 1;
    while (i < source.size() && std::isspace(static_cast<unsigned char>(source[i]))) ++i;
    if (i < source.size() && (source[i] == '"' || source[i] == '\'')) {
      std::string value;
      try {
        value = EvalConcatenation(source, i);
      } catch (const AnalysisError&) {
        ++pos;
        continue;
      }
      if (util::ContainsIgnoreCase(value, "select")) return value;
    }
    ++pos;
  }
  throw AnalysisError("no SQL query assignment found in servlet source");
}

// The servlet splices parameters inside SQL quotes (cuisine = "$cuisine");
// our PSJ dialect wants bare $params. Also BETWEEN operands arrive quoted.
std::string StripParamQuotes(std::string value) {
  std::string out;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if ((value[i] == '"' || value[i] == '\'') && i + 1 < value.size() &&
        value[i + 1] == '$') {
      char quote = value[i];
      std::size_t j = i + 1;
      std::size_t b = j + 1;
      ++j;
      while (j < value.size() && IsIdentChar(value[j])) ++j;
      if (j < value.size() && value[j] == quote && j > b) {
        out += "$";
        out += value.substr(b, j - b);
        i = j;
        continue;
      }
    }
    out.push_back(value[i]);
  }
  return out;
}

}  // namespace

WebAppInfo AnalyzeServlet(std::string_view source, std::string name,
                          std::string uri) {
  std::string stripped = StripComments(source);
  std::vector<ParamBinding> bindings = ExtractBindings(stripped);
  std::string sql = StripParamQuotes(ExtractSql(stripped));

  WebAppInfo info;
  info.name = std::move(name);
  info.uri = std::move(uri);
  try {
    info.query = sql::Parse(sql);
  } catch (const sql::ParseError& e) {
    throw AnalysisError("recovered SQL is not a valid PSJ query: " + sql +
                        " (" + e.what() + ")");
  }

  // Keep only bindings whose parameter actually appears in the query; the
  // servlet may read fields it never uses in SQL.
  std::vector<ParamBinding> used;
  for (const ParamBinding& b : bindings) {
    for (const sql::Predicate& p : info.query.where) {
      if (p.parameter == b.parameter) {
        used.push_back(b);
        break;
      }
    }
  }
  if (used.empty()) {
    throw AnalysisError(
        "no getParameter variable flows into the SQL query parameters");
  }
  info.codec = QueryStringCodec(std::move(used));
  return info;
}

std::string_view ExampleSearchServletSource() {
  // Paper Figure 3, transcribed (single-quote string literals as printed).
  static constexpr std::string_view kSource = R"java(
public class Search extends HttpServlet {
  public void doGet(HttpServletRequest q, HttpServletResponse p) {
    String cuisine = q.getParameter('c');
    String min = q.getParameter('l');
    String max = q.getParameter('u');
    Connection cn = pool.getConnection();
    Q = 'SELECT name, budget, rate, comment, uname,' +
        ' date FROM (restaurant LEFT JOIN comment) ' +
        ' JOIN customer WHERE (cuisine = "' + cuisine +
        '") AND (budget BETWEEN ' + min + ' AND '
        + max + ')';
    ResultSet r = cn.createStatement().executeQuery(Q);
    output(p, r);
  }
}
)java";
  return kSource;
}

}  // namespace dash::webapp
