// Minimal HTTP request model for db-page generation.
//
// Paper footnote 1: "Some query strings are provided in HTTP requests
// through POST method. Here, we consider a query string as a part of an
// URL, i.e., GET method, but Dash can support both GET and POST methods."
// This module delivers that: a request carries its query string either in
// the URL (GET) or as an application/x-www-form-urlencoded body (POST),
// and WebAppInfo can resolve application parameters from either.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "webapp/query_string.h"

namespace dash::webapp {

enum class HttpMethod { kGet, kPost };

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  std::string path;          // e.g. "www.example.com/Search"
  std::string query_string;  // GET: after '?'; empty for bare URLs
  std::string body;          // POST: form-encoded parameters

  // The query string the application actually parses: URL query for GET,
  // body for POST.
  std::string_view EffectiveQueryString() const {
    return method == HttpMethod::kPost ? body : query_string;
  }
};

// Parses "host/path?query" into a GET request. A missing '?' yields an
// empty query string.
HttpRequest ParseUrl(std::string_view url);

// Builds the POST-equivalent of a GET request (query string moved into the
// body), mirroring how a form submission would deliver the same page.
HttpRequest AsPost(const HttpRequest& get);

// Resolves the application parameters of `request` through `app`'s codec,
// regardless of method.
std::map<std::string, std::string> ResolveParams(const WebAppInfo& app,
                                                 const HttpRequest& request);

}  // namespace dash::webapp
