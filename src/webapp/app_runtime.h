// Executable web application model — the generalized execution of
// Section III, run forward.
//
// Dash *reverse engineers* applications; this class is the forward
// direction: given the recovered WebAppInfo and the database, it serves a
// request through the paper's three steps — (a) query string parsing,
// (b) application query evaluation, (c) result presentation — and returns
// the db-page. It exists for three reasons:
//
//   * end-to-end verification: the URLs Dash suggests, when actually
//     executed, must yield pages containing the queried keywords
//     (integration tests drive this);
//   * the "surfacing" baseline (baseline/surfacing.h): the pre-Dash
//     approach of discovering db-pages by invoking the application with
//     trial query strings needs an application to invoke;
//   * demos that show the generated page contents, not just URLs.
#pragma once

#include <string>

#include "db/database.h"
#include "webapp/http.h"
#include "webapp/query_string.h"

namespace dash::webapp {

struct AppStats {
  std::size_t requests = 0;
  std::size_t empty_pages = 0;  // requests whose result had no rows
};

class WebApplication {
 public:
  // `db` must outlive the application. Parameter value types are resolved
  // from the predicate columns' schema types, so "l=10" binds as the
  // integer 10 against an int column.
  WebApplication(const db::Database& db, WebAppInfo info);

  const WebAppInfo& info() const { return info_; }

  // Step (a)+(b): evaluates the application query for the request's
  // parameters and returns the projected result relation. Missing
  // equality parameters throw std::runtime_error (the real application
  // would render an error page).
  db::Table ResultFor(const HttpRequest& request) const;

  // Steps (a)+(b)+(c): renders the db-page as text (tab-separated rows
  // under a header line — a plain-text stand-in for the HTML table of
  // Figure 1).
  std::string HandleRequest(const HttpRequest& request) const;

  // Total words of the page a request generates (0 for empty pages);
  // convenience for tests comparing against SearchResult::size_words.
  std::size_t PageWordCount(const HttpRequest& request) const;

  const AppStats& stats() const { return stats_; }

 private:
  const db::Database& db_;
  WebAppInfo info_;
  mutable AppStats stats_;
};

}  // namespace dash::webapp
