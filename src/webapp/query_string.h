// Query-string parsing and its inverse ("reverse query string parsing",
// paper Section III).
//
// A web application reads URL fields into query parameters
// (c -> cuisine, l -> min, u -> max in the paper's Search servlet). Dash
// needs both directions: forward parsing to understand what an application
// does with a request, and the reverse to *formulate* the query string of a
// reconstructed db-page at search time (Algorithm 1, line 10).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sql/psj_query.h"

namespace dash::webapp {

// URL field <-> application query parameter.
struct ParamBinding {
  std::string url_field;  // e.g. "c"
  std::string parameter;  // e.g. "cuisine" (no '$' sigil)
};

// Bidirectional codec between "f1=v1&f2=v2" query strings and
// parameter-name -> value maps.
class QueryStringCodec {
 public:
  QueryStringCodec() = default;
  explicit QueryStringCodec(std::vector<ParamBinding> bindings);

  const std::vector<ParamBinding>& bindings() const { return bindings_; }

  // "c=American&l=10&u=15" -> {cuisine: American, min: 10, max: 15}.
  // Unknown fields are ignored; values are URL-decoded. Throws on a field
  // bound twice in the input.
  std::map<std::string, std::string> Parse(std::string_view query_string) const;

  // Inverse of Parse: renders fields in binding order, URL-encoding values.
  // Throws std::runtime_error if a bound parameter is missing from `params`.
  std::string Render(const std::map<std::string, std::string>& params) const;

 private:
  std::vector<ParamBinding> bindings_;
};

// Everything Dash's web application analysis recovers about one app:
// its URI, the parameterized PSJ query it evaluates, and the query-string
// binding used for reverse parsing.
struct WebAppInfo {
  std::string name;
  std::string uri;  // e.g. "www.example.com/Search"
  sql::PsjQuery query;
  QueryStringCodec codec;

  // Full db-page URL for concrete parameter values.
  std::string UrlFor(const std::map<std::string, std::string>& params) const {
    return uri + "?" + codec.Render(params);
  }
};

}  // namespace dash::webapp
