#include "webapp/app_runtime.h"

#include <stdexcept>

#include "sql/eval.h"
#include "util/tokenizer.h"

namespace dash::webapp {

namespace {

// Parameter name -> schema type of the column it is compared against, so
// request strings bind with the right type.
std::map<std::string, db::ValueType> ParamTypes(const db::Database& db,
                                                const sql::PsjQuery& query) {
  // Build the joined schema the predicates resolve against.
  db::Schema joined;
  for (const std::string& rel : query.Relations()) {
    joined = db::Schema::Concat(joined, db.table(rel).schema());
  }
  std::map<std::string, db::ValueType> types;
  for (const sql::Predicate& p : query.where) {
    int idx = joined.IndexOf(p.column);
    types[p.parameter] = joined.column(static_cast<std::size_t>(idx)).type;
  }
  return types;
}

}  // namespace

WebApplication::WebApplication(const db::Database& db, WebAppInfo info)
    : db_(db), info_(std::move(info)) {
  // Validate the query resolves (throws early on bad relations/columns).
  (void)sql::ResolveProjection(db_, info_.query);
  (void)ParamTypes(db_, info_.query);
}

db::Table WebApplication::ResultFor(const HttpRequest& request) const {
  ++stats_.requests;
  // (a) query string parsing.
  std::map<std::string, std::string> raw = ResolveParams(info_, request);
  std::map<std::string, db::ValueType> types = ParamTypes(db_, info_.query);
  std::map<std::string, db::Value> params;
  for (const auto& [name, text] : raw) {
    auto it = types.find(name);
    db::ValueType type =
        it == types.end() ? db::ValueType::kString : it->second;
    params[name] = db::Value::Parse(text, type);
  }
  // (b) application query evaluation.
  db::Table result = sql::EvalQuery(db_, info_.query, params);
  if (result.row_count() == 0) ++stats_.empty_pages;
  return result;
}

std::string WebApplication::HandleRequest(const HttpRequest& request) const {
  // (c) result presentation: header line + one line per record.
  db::Table result = ResultFor(request);
  std::string page;
  for (std::size_t c = 0; c < result.schema().size(); ++c) {
    if (c) page += "\t";
    page += result.schema().column(c).name;
  }
  page += "\n";
  for (const db::Row& row : result.rows()) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) page += "\t";
      page += row[c].ToString();
    }
    page += "\n";
  }
  return page;
}

std::size_t WebApplication::PageWordCount(const HttpRequest& request) const {
  db::Table result = ResultFor(request);
  util::TokenCounter counter;
  for (const db::Row& row : result.rows()) {
    for (const db::Value& v : row) {
      if (!v.is_null()) counter.Add(v.ToString());
    }
  }
  return counter.total();
}

}  // namespace dash::webapp
