#include "webapp/http.h"

namespace dash::webapp {

HttpRequest ParseUrl(std::string_view url) {
  HttpRequest request;
  request.method = HttpMethod::kGet;
  auto q = url.find('?');
  if (q == std::string_view::npos) {
    request.path = std::string(url);
  } else {
    request.path = std::string(url.substr(0, q));
    request.query_string = std::string(url.substr(q + 1));
  }
  return request;
}

HttpRequest AsPost(const HttpRequest& get) {
  HttpRequest post;
  post.method = HttpMethod::kPost;
  post.path = get.path;
  post.body = std::string(get.EffectiveQueryString());
  return post;
}

std::map<std::string, std::string> ResolveParams(const WebAppInfo& app,
                                                 const HttpRequest& request) {
  return app.codec.Parse(request.EffectiveQueryString());
}

}  // namespace dash::webapp
