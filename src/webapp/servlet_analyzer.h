// Web application analysis (paper Sections III-IV).
//
// The paper assumes a web application's execution decomposes into (a) query
// string parsing, (b) application query evaluation, (c) result
// presentation, and recovers (a)+(b) by static analysis of the servlet
// source (its Figure 3). This analyzer implements that recovery for
// Java-servlet-style sources:
//
//   * `String cuisine = q.getParameter("c");` binds URL field "c" to query
//     parameter `cuisine` (the data-flow step of the paper's analysis);
//   * the SQL string assembled by concatenating literals and those
//     variables, e.g.
//       Q = "SELECT ... WHERE (cuisine = \"" + cuisine + "\") AND ..."
//     is symbolically evaluated into the parameterized text
//       SELECT ... WHERE (cuisine = $cuisine) AND ...
//     and parsed into a PsjQuery.
//
// Both '"' and '\'' string literal quotes are accepted (the paper's figure
// uses single quotes).
#pragma once

#include <string_view>

#include "webapp/query_string.h"

namespace dash::webapp {

class AnalysisError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Analyzes servlet-style `source`; `name` and `uri` identify the deployed
// application. Throws AnalysisError when no parameter bindings or no SQL
// query can be recovered.
WebAppInfo AnalyzeServlet(std::string_view source, std::string name,
                          std::string uri);

// The paper's Figure 3 Search servlet, usable as a demo/test fixture.
std::string_view ExampleSearchServletSource();

}  // namespace dash::webapp
