// Fixed-size worker pool shared by the serving path.
//
// Replaces the per-query std::thread scatter of the sharded engine (thread
// creation costs tens of microseconds — more than a warm shard search) and
// drives data-parallel build steps (per-term posting sorts, per-shard
// finalization). Two usage forms:
//
//   pool.Submit(fn)        -> std::future (exceptions propagate via get())
//   pool.ParallelFor(n, f) -> runs f(0..n-1); the *calling* thread also
//                             executes chunks and, while waiting for its
//                             helpers, keeps executing other queued jobs —
//                             so arbitrarily nested ParallelFor calls
//                             (even with every worker itself inside one)
//                             cannot deadlock, and a pool of size 0/1
//                             degrades to a plain loop.
//
// ParallelFor rethrows the first exception raised by any index (remaining
// indices may still run). The destructor drains the queue and joins.
//
// Concurrency invariants are machine-checked: `mutex_` guards the job
// queue and the stop flag (GUARDED_BY), and the `analyze` preset fails the
// build if any access slips outside the lock. This file and thread_pool.cc
// are the only places in src/ allowed to create raw std::thread objects
// (dash_lint rule raw-thread).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dash::util {

class ThreadPool {
 public:
  // `num_threads` workers; 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  // Calls fn(i) for every i in [0, n), distributing work across the
  // workers and the calling thread. Blocks until all indices finished.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Process-wide pool, sized to the hardware. Never use it for tasks that
  // block indefinitely; ParallelFor and short Submit jobs only.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> job) DASH_EXCLUDES(mutex_);
  // Pops and runs one queued job on the calling thread; false when the
  // queue was empty. ParallelFor's wait loop uses this to keep the queue
  // draining while blocked on its helpers.
  bool RunOneJob() DASH_EXCLUDES(mutex_);
  void WorkerLoop() DASH_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar wake_;
  std::queue<std::function<void()>> jobs_ DASH_GUARDED_BY(mutex_);
  bool stopping_ DASH_GUARDED_BY(mutex_) = false;
  // Written only by the constructor and joined by the destructor; workers
  // never touch the vector itself, so it needs no lock.
  std::vector<std::thread> workers_;
};

}  // namespace dash::util
