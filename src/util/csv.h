// Minimal delimited-record codec.
//
// Used by the MapReduce substrate to serialize rows into the string-typed
// (key, value) records that flow between jobs, mirroring how Hadoop jobs
// exchange delimited text. The escaping is lossless for arbitrary field
// contents (tab, newline and backslash are escaped).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dash::util {

// Joins fields with '\t', escaping '\t' -> "\\t", '\n' -> "\\n",
// '\\' -> "\\\\".
std::string EncodeFields(const std::vector<std::string>& fields);
std::string EncodeFields(const std::vector<std::string_view>& fields);

// Inverse of EncodeFields. Always returns at least one (possibly empty)
// field, matching EncodeFields({""}).
std::vector<std::string> DecodeFields(std::string_view line);

}  // namespace dash::util
