#include "util/thread_pool.h"

#include <atomic>
#include <algorithm>
#include <chrono>
#include <exception>

namespace dash::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    jobs_.push(std::move(job));
  }
  wake_.NotifyOne();
}

bool ThreadPool::RunOneJob() {
  std::function<void()> job;
  {
    MutexLock lock(mutex_);
    if (jobs_.empty()) return false;
    job = std::move(jobs_.front());
    jobs_.pop();
  }
  job();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && jobs_.empty()) wake_.Wait(mutex_);
      if (jobs_.empty()) return;  // stopping_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    Mutex error_mutex;
    std::exception_ptr error DASH_GUARDED_BY(error_mutex);
    std::size_t limit;
    const std::function<void(std::size_t)>* fn;
  };
  auto state = std::make_shared<Shared>();
  state->limit = n;
  state->fn = &fn;  // ParallelFor blocks until every helper finished

  auto drain = [](const std::shared_ptr<Shared>& s) {
    for (;;) {
      std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->limit) return;
      if (s->failed.load(std::memory_order_relaxed)) continue;
      try {
        (*s->fn)(i);
      } catch (...) {
        MutexLock lock(s->error_mutex);
        if (!s->error) s->error = std::current_exception();
        s->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  // One helper task per worker (capped by n-1: the caller handles the
  // rest). Helpers that find the counter exhausted return immediately.
  std::size_t helpers = std::min(workers_.size(), n - 1);
  std::vector<std::future<void>> done;
  done.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    done.push_back(Submit([state, drain] { drain(state); }));
  }
  drain(state);
  // Wait for the helpers — but keep executing queued jobs meanwhile. A
  // helper may sit in the queue behind other tasks, including the helpers
  // of *other* in-flight ParallelFor calls; if every thread blocked in
  // get() here, mutually nested calls could starve each other with all
  // their helpers queued and nobody left to run them. Helping from the
  // wait loop guarantees queue progress no matter how calls nest.
  for (std::future<void>& f : done) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunOneJob()) {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
    f.get();
  }
  // Every helper has joined, but the analysis (rightly) still demands the
  // lock to read the guarded slot.
  std::exception_ptr error;
  {
    MutexLock lock(state->error_mutex);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dash::util
