// Wall-clock stopwatch for coarse phase timing in benches and the
// MapReduce metrics.
#pragma once

#include <chrono>

namespace dash::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dash::util
