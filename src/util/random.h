// Deterministic pseudo-random utilities for workload generation.
//
// The TPC-H-style generator must be reproducible across runs and platforms,
// so everything here is seed-driven with fully specified algorithms (no
// std::uniform_int_distribution, whose output is implementation-defined).
#pragma once

#include <cstdint>
#include <cmath>
#include <string>
#include <vector>

namespace dash::util {

// SplitMix64: tiny, fast, well-distributed 64-bit PRNG.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

// Zipf(s) sampler over ranks {0, 1, ..., n-1} using inverse-CDF over the
// precomputed harmonic weights. Rank 0 is the most frequent. Used to give
// generated comment text the skewed document-frequency distribution that
// the paper's cold/warm/hot keyword buckets rely on.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (double& v : cdf_) v /= sum;
  }

  std::size_t Sample(SplitMix64& rng) const {
    double u = rng.NextDouble();
    // Binary search the first cdf_ entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace dash::util
