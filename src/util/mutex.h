// Annotated mutex wrapper — the repo-wide lock vocabulary.
//
// dash::util::Mutex is a std::mutex carrying the Clang thread-safety
// CAPABILITY attribute; MutexLock is the RAII guard the analysis can
// follow; CondVar pairs with Mutex the way std::condition_variable pairs
// with std::mutex. All locking in src/ goes through these types so that
// the `analyze` preset (-Werror=thread-safety) can prove GUARDED_BY
// invariants end to end. Raw std::mutex/std::lock_guard in src/ is a
// dash_lint violation (rule global-state catches the unguarded fields such
// a mutex would protect).
//
// Usage:
//   Mutex mu_;
//   int counter_ DASH_GUARDED_BY(mu_);
//   void Bump() { MutexLock lock(mu_); ++counter_; }
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace dash::util {

class DASH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DASH_ACQUIRE() { m_.lock(); }
  void Unlock() DASH_RELEASE() { m_.unlock(); }
  bool TryLock() DASH_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

// RAII lock; the SCOPED_CAPABILITY attribute tells the analysis the
// constructor acquires and the destructor releases.
class DASH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DASH_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DASH_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable for Mutex. Wait atomically releases `mu`, blocks, and
// reacquires before returning — the caller must hold `mu` (REQUIRES), and
// as with std::condition_variable the predicate must be rechecked in a
// loop around Wait (spurious wakeups).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DASH_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then hand
    // ownership back to the caller's MutexLock. The analysis sees `mu`
    // held across the call, which matches the observable contract.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dash::util
