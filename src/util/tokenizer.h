// Keyword tokenizer used everywhere Dash turns attribute values into
// keywords (fragment indexing, page indexing, query parsing).
//
// The tokenization rule follows the paper's Example 6, which counts
// "Bond's", "Cafe", "9", "4.3", "Nice", "Coffee", "James" and "01/11" as
// eight keywords for fragment (American, 9): tokens are whitespace-separated
// words, lowercased, with punctuation stripped from the edges but kept in
// the interior (so apostrophes, decimal points and date slashes survive).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dash::util {

// Tokenizes `text` into lowercase keywords.
std::vector<std::string> Tokenize(std::string_view text);

// Number of keywords in `text` (same rule as Tokenize, without
// materializing the tokens).
std::size_t CountTokens(std::string_view text);

// Accumulates `keyword -> occurrence count` over multiple texts.
class TokenCounter {
 public:
  void Add(std::string_view text, std::size_t multiplier = 1);

  // Total keyword occurrences added so far (with multipliers applied).
  std::size_t total() const { return total_; }

  const std::unordered_map<std::string, std::size_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<std::string, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dash::util
