#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>

namespace dash::util {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

namespace {
template <typename Parts>
std::string JoinImpl(const Parts& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view t) {
  if (s.size() != t.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

namespace {
bool IsUnreserved(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.' || c == '~';
}
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string UrlEncode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (IsUnreserved(c)) {
      out.push_back(c);
    } else {
      unsigned char u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = HexValue(s[i + 1]);
      int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    if (s[i] == '+') {
      out.push_back(' ');
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string HumanBytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

bool ParseInt64(std::string_view s, std::int64_t* out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end && !s.empty();
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 11+.
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace dash::util
