#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dash::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Guards the sink registry and serializes emission (interleaving-free
// stderr lines, and sinks observe messages in a total order).
Mutex g_mutex;
std::vector<std::pair<int, LogSink>> g_sinks DASH_GUARDED_BY(g_mutex);
int g_next_sink_id DASH_GUARDED_BY(g_mutex) = 1;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

int AddLogSink(LogSink sink) {
  MutexLock lock(g_mutex);
  int id = g_next_sink_id++;
  g_sinks.emplace_back(id, std::move(sink));
  return id;
}

void RemoveLogSink(int id) {
  MutexLock lock(g_mutex);
  for (auto it = g_sinks.begin(); it != g_sinks.end(); ++it) {
    if (it->first == id) {
      g_sinks.erase(it);
      return;
    }
  }
}

std::size_t LogSinkCount() {
  MutexLock lock(g_mutex);
  return g_sinks.size();
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  for (const auto& [id, sink] : g_sinks) sink(level, message);
}

}  // namespace dash::util
