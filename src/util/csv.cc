#include "util/csv.h"

namespace dash::util {

namespace {

void AppendEscaped(std::string& out, std::string_view field) {
  for (char c : field) {
    switch (c) {
      case '\t':
        out.append("\\t");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\\':
        out.append("\\\\");
        break;
      default:
        out.push_back(c);
    }
  }
}

template <typename Fields>
std::string EncodeImpl(const Fields& fields) {
  std::string out;
  bool first = true;
  for (const auto& f : fields) {
    if (!first) out.push_back('\t');
    AppendEscaped(out, f);
    first = false;
  }
  return out;
}

}  // namespace

std::string EncodeFields(const std::vector<std::string>& fields) {
  return EncodeImpl(fields);
}

std::string EncodeFields(const std::vector<std::string_view>& fields) {
  return EncodeImpl(fields);
}

std::vector<std::string> DecodeFields(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      char n = line[i + 1];
      if (n == 't') {
        cur.push_back('\t');
        ++i;
        continue;
      }
      if (n == 'n') {
        cur.push_back('\n');
        ++i;
        continue;
      }
      if (n == '\\') {
        cur.push_back('\\');
        ++i;
        continue;
      }
    }
    if (c == '\t') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

}  // namespace dash::util
