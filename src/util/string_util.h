// String helpers shared across Dash modules.
//
// All functions are allocation-conscious: the split/trim family operates on
// std::string_view and only materializes std::string where the caller needs
// ownership.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dash::util {

// Splits `s` on the single character `sep`. Empty pieces are preserved, so
// Split("a,,b", ',') == {"a", "", "b"} and Split("", ',') == {""}.
std::vector<std::string_view> Split(std::string_view s, char sep);

// Splits on any amount of ASCII whitespace; empty pieces are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

// True if `s` equals `t` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view t);

// True if `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// Percent-encodes a string for use inside a URL query component
// (RFC 3986 unreserved characters pass through).
std::string UrlEncode(std::string_view s);

// Inverse of UrlEncode. Malformed escapes are passed through verbatim.
std::string UrlDecode(std::string_view s);

// Formats a byte count with a binary-prefix unit ("1.5 MiB").
std::string HumanBytes(std::uint64_t bytes);

// Parses a signed 64-bit integer; returns false on any non-numeric input.
bool ParseInt64(std::string_view s, std::int64_t* out);

// Parses a double; returns false on any non-numeric input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace dash::util
