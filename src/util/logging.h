// Minimal leveled logging. Off by default so tests and benches stay quiet;
// examples flip the level to Info to narrate the pipeline.
//
// Besides stderr, messages can be fanned out to registered sinks (a server
// would hook its access log or a metrics counter here). The sink registry
// is shared mutable state guarded by an internal Mutex; registration and
// emission are thread-safe.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dash::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Called for every emitted message (after the level filter) with the level
// and the unformatted message text. Sinks run under the registry lock, in
// registration order: keep them fast and never log from inside one.
using LogSink = std::function<void(LogLevel, const std::string&)>;

// Registers a sink; returns an id for RemoveLogSink. Thread-safe.
int AddLogSink(LogSink sink);

// Removes a previously registered sink; unknown ids are ignored.
void RemoveLogSink(int id);

// Number of registered sinks (tests / diagnostics).
std::size_t LogSinkCount();

// Emits one line to stderr as "[LEVEL] message" (and to every registered
// sink) when enabled.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace dash::util

#define DASH_LOG(level) \
  ::dash::util::internal::LogStream(::dash::util::LogLevel::k##level)
