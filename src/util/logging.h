// Minimal leveled logging. Off by default so tests and benches stay quiet;
// examples flip the level to Info to narrate the pipeline.
#pragma once

#include <sstream>
#include <string>

namespace dash::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr as "[LEVEL] message" when enabled.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace dash::util

#define DASH_LOG(level) \
  ::dash::util::internal::LogStream(::dash::util::LogLevel::k##level)
