#include "util/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace dash::util {

namespace {

bool IsEdgePunct(char c) {
  // Characters stripped from token edges. Interior occurrences (Bond's,
  // 4.3, 01/11) are preserved. Bytes >= 0x80 are UTF-8 lead/continuation
  // bytes of non-ASCII letters ("Café", "烤肉") and are never stripped.
  unsigned char u = static_cast<unsigned char>(c);
  return u < 0x80 && !std::isalnum(u);
}

// Returns the [begin, end) sub-range of `raw` after edge-punctuation
// stripping; empty when nothing alphanumeric remains.
std::string_view StripEdges(std::string_view raw) {
  std::size_t b = 0;
  while (b < raw.size() && IsEdgePunct(raw[b])) ++b;
  std::size_t e = raw.size();
  while (e > b && IsEdgePunct(raw[e - 1])) --e;
  return raw.substr(b, e - b);
}

template <typename Fn>
void ForEachToken(std::string_view text, Fn&& fn) {
  for (std::string_view raw : SplitWhitespace(text)) {
    std::string_view tok = StripEdges(raw);
    if (!tok.empty()) fn(tok);
  }
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  ForEachToken(text, [&out](std::string_view tok) {
    out.push_back(ToLower(tok));
  });
  return out;
}

std::size_t CountTokens(std::string_view text) {
  std::size_t n = 0;
  ForEachToken(text, [&n](std::string_view) { ++n; });
  return n;
}

void TokenCounter::Add(std::string_view text, std::size_t multiplier) {
  if (multiplier == 0) return;
  ForEachToken(text, [this, multiplier](std::string_view tok) {
    counts_[ToLower(tok)] += multiplier;
    total_ += multiplier;
  });
}

}  // namespace dash::util
