#include "util/term_dict.h"

#include <cstring>

namespace dash::util {

TermId TermDict::Intern(std::string_view term) {
  auto it = map_.find(term);
  if (it != map_.end()) return it->second;

  if (term.size() > chunk_cap_ - chunk_used_ || chunks_.empty()) {
    std::size_t cap = std::max(kChunkBytes, term.size());
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
    arena_bytes_ += cap;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, term.data(), term.size());
  chunk_used_ += term.size();
  term_bytes_ += term.size();

  std::string_view stored(dst, term.size());
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(stored);
  map_.emplace(stored, id);
  return id;
}

}  // namespace dash::util
