// Clang Thread Safety Analysis annotation macros.
//
// These expand to Clang `capability` attributes when the compiler supports
// them (clang with -Wthread-safety) and to nothing everywhere else, so the
// annotated code builds unchanged under GCC. The `analyze` CMake preset
// compiles src/ with -Werror=thread-safety, turning every lock-discipline
// violation (touching a GUARDED_BY field without its mutex, releasing a
// lock twice, calling a REQUIRES function unlocked) into a build error.
//
// Vocabulary (mirrors the attribute names in the Clang documentation):
//   DASH_CAPABILITY(name)   — the class is a lockable capability (dash::Mutex)
//   DASH_SCOPED_CAPABILITY  — RAII type that acquires/releases (MutexLock)
//   DASH_GUARDED_BY(mu)     — field may only be touched while holding mu
//   DASH_PT_GUARDED_BY(mu)  — pointee may only be touched while holding mu
//   DASH_REQUIRES(mu)       — caller must already hold mu
//   DASH_ACQUIRE(mu)        — function acquires mu and does not release it
//   DASH_RELEASE(mu)        — function releases mu
//   DASH_TRY_ACQUIRE(b, mu) — acquires mu iff the function returns b
//   DASH_EXCLUDES(mu)       — caller must NOT hold mu (anti-deadlock)
//   DASH_ASSERT_CAPABILITY(mu) — runtime assertion that mu is held
//   DASH_RETURN_CAPABILITY(mu) — function returns a reference to mu
//   DASH_NO_THREAD_SAFETY_ANALYSIS — opt a function body out (last resort;
//       every use needs a comment explaining why the analysis can't see it)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DASH_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DASH_THREAD_ANNOTATION_
#define DASH_THREAD_ANNOTATION_(x)  // not Clang: annotations compile away
#endif

#define DASH_CAPABILITY(x) DASH_THREAD_ANNOTATION_(capability(x))
#define DASH_SCOPED_CAPABILITY DASH_THREAD_ANNOTATION_(scoped_lockable)
#define DASH_GUARDED_BY(x) DASH_THREAD_ANNOTATION_(guarded_by(x))
#define DASH_PT_GUARDED_BY(x) DASH_THREAD_ANNOTATION_(pt_guarded_by(x))
#define DASH_ACQUIRED_BEFORE(...) \
  DASH_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DASH_ACQUIRED_AFTER(...) \
  DASH_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define DASH_REQUIRES(...) \
  DASH_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DASH_ACQUIRE(...) \
  DASH_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DASH_RELEASE(...) \
  DASH_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DASH_TRY_ACQUIRE(...) \
  DASH_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DASH_EXCLUDES(...) DASH_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define DASH_ASSERT_CAPABILITY(x) \
  DASH_THREAD_ANNOTATION_(assert_capability(x))
#define DASH_RETURN_CAPABILITY(x) DASH_THREAD_ANNOTATION_(lock_returned(x))
#define DASH_NO_THREAD_SAFETY_ANALYSIS \
  DASH_THREAD_ANNOTATION_(no_thread_safety_analysis)
