// Arena-backed string interner for index terms.
//
// The inverted index stores every keyword exactly once in a bump arena and
// addresses it by a dense 32-bit TermId. Interning kills the two string
// costs of the hot path: per-keyword heap nodes at build time and
// std::string construction at query time (lookup is heterogeneous — a
// string_view probes the map directly). Views handed out by `term()` stay
// valid for the dictionary's lifetime: arena chunks are never reallocated.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dash::util {

using TermId = std::uint32_t;
inline constexpr TermId kInvalidTermId = ~TermId{0};

class TermDict {
 public:
  // Returns the id of `term`, interning a copy on first sight.
  TermId Intern(std::string_view term);

  // Id of `term`, or kInvalidTermId when absent. Allocation-free.
  TermId Find(std::string_view term) const {
    auto it = map_.find(term);
    return it == map_.end() ? kInvalidTermId : it->second;
  }

  std::string_view term(TermId id) const { return terms_[id]; }
  std::size_t size() const { return terms_.size(); }

  // Bytes held by the arena chunks (capacity, not just used bytes).
  std::size_t arena_bytes() const { return arena_bytes_; }

  // Total bytes of interned term text (the logical dictionary size).
  std::size_t term_bytes() const { return term_bytes_; }

 private:
  static constexpr std::size_t kChunkBytes = 1 << 16;

  std::vector<std::string_view> terms_;  // id -> view into an arena chunk
  std::unordered_map<std::string_view, TermId> map_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = 0;   // bytes used in chunks_.back()
  std::size_t chunk_cap_ = 0;    // capacity of chunks_.back()
  std::size_t arena_bytes_ = 0;
  std::size_t term_bytes_ = 0;
};

}  // namespace dash::util
