#include "sql/eval.h"

#include <stdexcept>

#include "db/ops.h"

namespace dash::sql {

namespace {

db::Schema JoinSchema(const db::Database& db, const JoinNode& node) {
  if (node.IsLeaf()) return db.table(node.relation).schema();
  return db::Schema::Concat(JoinSchema(db, *node.left),
                            JoinSchema(db, *node.right));
}

}  // namespace

db::Table EvalJoin(const db::Database& db, const JoinNode& node) {
  if (node.IsLeaf()) return db.table(node.relation);
  db::Table left = EvalJoin(db, *node.left);
  db::Table right = EvalJoin(db, *node.right);
  std::string on_left = node.on_left, on_right = node.on_right;
  if (on_left.empty()) {
    std::tie(on_left, on_right) =
        db::FindJoinColumns(db, left.schema(), right.schema());
  }
  db::JoinType type = node.kind == JoinKind::kLeftOuter
                          ? db::JoinType::kLeftOuter
                          : db::JoinType::kInner;
  return db::HashJoin(left, right, on_left, on_right, type);
}

std::vector<std::string> ResolveProjection(const db::Database& db,
                                           const PsjQuery& query) {
  if (!query.from) {
    throw std::runtime_error("PSJ query has no FROM clause");
  }
  db::Schema joined = JoinSchema(db, *query.from);
  std::vector<std::string> columns;
  if (query.projection.empty()) {
    for (const db::Column& c : joined.columns()) {
      columns.push_back(c.Qualified());
    }
  } else {
    for (const std::string& name : query.projection) {
      int idx = joined.IndexOf(name);
      columns.push_back(
          joined.column(static_cast<std::size_t>(idx)).Qualified());
    }
  }
  return columns;
}

db::Table EvalQuery(const db::Database& db, const PsjQuery& query,
                    const std::map<std::string, db::Value>& params) {
  db::Table joined = EvalJoin(db, *query.from);

  struct ResolvedPredicate {
    int column;
    db::CompareOp op;
    db::Value value;
  };
  std::vector<ResolvedPredicate> preds;
  for (const Predicate& p : query.where) {
    auto it = params.find(p.parameter);
    if (it == params.end()) {
      if (p.op == db::CompareOp::kEq) {
        throw std::runtime_error("missing value for equality parameter '" +
                                 p.parameter + "'");
      }
      continue;  // unbounded range side
    }
    preds.push_back(ResolvedPredicate{joined.schema().IndexOf(p.column), p.op,
                                      it->second});
  }

  db::Table filtered = db::Filter(
      joined,
      [&preds](const db::Row& row) {
        for (const ResolvedPredicate& p : preds) {
          if (!db::EvalCompare(row[static_cast<std::size_t>(p.column)], p.op,
                               p.value)) {
            return false;
          }
        }
        return true;
      },
      "page");
  return db::Project(filtered, ResolveProjection(db, query), "page");
}

}  // namespace dash::sql
