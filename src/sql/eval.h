// PSJ query evaluation against the relational engine.
//
// Shared by the reference crawler (which evaluates the *crawling query* —
// the join with all attributes) and the forward web-application runtime
// (which evaluates the query for one concrete parameter assignment).
#pragma once

#include <map>

#include "db/database.h"
#include "sql/psj_query.h"

namespace dash::sql {

// Evaluates the join tree: one hash join per internal node, with ON-less
// joins resolved through catalog foreign keys. Returns all columns of all
// operand relations.
db::Table EvalJoin(const db::Database& db, const JoinNode& root);

// Resolves the query's projection list against the join schema (empty
// projection = SELECT * = every column), returning qualified names.
std::vector<std::string> ResolveProjection(const db::Database& db,
                                           const PsjQuery& query);

// Evaluates the full query for concrete parameter values: join, filter by
// every predicate whose parameter is present in `params` (a missing range
// bound means unbounded; a missing equality parameter throws
// std::runtime_error), then project.
db::Table EvalQuery(const db::Database& db, const PsjQuery& query,
                    const std::map<std::string, db::Value>& params);

}  // namespace dash::sql
