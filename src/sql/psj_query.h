// Parameterized project–select–join (PSJ) query AST — paper Definition 1:
//
//   pi_{a1..al} sigma_{c1 op1 $v1 and ... cm opm $vm} (R1 |x| R2 ... |x| Rn)
//
// Joins may be inner or left-outer; selection conditions are a conjunction
// of comparisons between an attribute and a named query parameter, with
// ops restricted to =, >=, <=. A SQL BETWEEN contributes a >= and a <= on
// the same attribute.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/ops.h"

namespace dash::sql {

enum class JoinKind { kInner, kLeftOuter };

// Binary join tree. A leaf names a relation; an internal node joins its
// children. When `on_left`/`on_right` are empty the join condition is
// derived from catalog foreign keys (the paper's servlet SQL gives no ON
// clauses — comment.rid -> restaurant.rid is implied).
struct JoinNode {
  std::string relation;  // non-empty iff leaf
  std::unique_ptr<JoinNode> left;
  std::unique_ptr<JoinNode> right;
  JoinKind kind = JoinKind::kInner;
  std::string on_left;
  std::string on_right;

  bool IsLeaf() const { return !relation.empty(); }
  std::unique_ptr<JoinNode> Clone() const;
};

// One selection condition: `column op $parameter`.
struct Predicate {
  std::string column;     // bare or qualified attribute name
  db::CompareOp op = db::CompareOp::kEq;
  std::string parameter;  // parameter name, without the '$' sigil

  std::string ToString() const;
};

// A selection attribute after predicate analysis. Equality attributes take
// a single parameter; range attributes take a [min,max] parameter pair
// (either bound may be absent in degenerate queries).
struct SelectionAttribute {
  std::string column;
  bool is_range = false;
  std::string eq_parameter;   // when !is_range
  std::string min_parameter;  // when is_range (empty if unbounded)
  std::string max_parameter;  // when is_range (empty if unbounded)
};

struct PsjQuery {
  // Projected attribute names; empty means SELECT * (all columns of the
  // join result).
  std::vector<std::string> projection;
  std::unique_ptr<JoinNode> from;
  std::vector<Predicate> where;

  PsjQuery() = default;
  PsjQuery(const PsjQuery& other);
  PsjQuery& operator=(const PsjQuery& other);
  PsjQuery(PsjQuery&&) = default;
  PsjQuery& operator=(PsjQuery&&) = default;

  // Leaf relations, left-to-right.
  std::vector<std::string> Relations() const;

  // Selection attributes in canonical order: equality attributes first
  // (in first-appearance order), then range attributes. This order defines
  // the fragment identifier layout (Definition 2). Throws on predicates
  // that cannot be classified (e.g. = and >= on the same attribute).
  std::vector<SelectionAttribute> SelectionAttributes() const;

  // Re-rendered SQL text (normalized; used in logs and golden tests).
  std::string ToString() const;
};

}  // namespace dash::sql
