#include "sql/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace dash::sql {

namespace {

enum class TokKind { kIdent, kParam, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  // identifier / parameter name / symbol spelling
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& Peek() const { return cur_; }

  Token Take() {
    Token t = cur_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
    cur_.pos = i_;
    if (i_ >= text_.size()) {
      cur_ = Token{TokKind::kEnd, "", i_};
      return;
    }
    char c = text_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i_;
      while (i_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[i_])) ||
                                   text_[i_] == '_')) {
        ++i_;
      }
      cur_ = Token{TokKind::kIdent, std::string(text_.substr(start, i_ - start)),
                   start};
      return;
    }
    if (c == '$') {
      std::size_t start = ++i_;
      while (i_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[i_])) ||
                                   text_[i_] == '_')) {
        ++i_;
      }
      if (i_ == start) {
        throw ParseError("expected parameter name after '$' at position " +
                         std::to_string(start));
      }
      cur_ = Token{TokKind::kParam, std::string(text_.substr(start, i_ - start)),
                   start - 1};
      return;
    }
    // Multi-char symbols: >= <=
    if ((c == '>' || c == '<') && i_ + 1 < text_.size() && text_[i_ + 1] == '=') {
      cur_ = Token{TokKind::kSymbol, std::string(text_.substr(i_, 2)), i_};
      i_ += 2;
      return;
    }
    cur_ = Token{TokKind::kSymbol, std::string(1, c), i_};
    ++i_;
  }

  std::string_view text_;
  std::size_t i_ = 0;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  PsjQuery ParseQuery() {
    ExpectKeyword("SELECT");
    PsjQuery q;
    q.projection = ParseSelectList();
    ExpectKeyword("FROM");
    q.from = ParseJoinExpr();
    if (AcceptKeyword("WHERE")) {
      do {
        ParseCondition(&q.where);
      } while (AcceptKeyword("AND"));
    }
    if (lex_.Peek().kind != TokKind::kEnd) {
      Fail("unexpected trailing input");
    }
    return q;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw ParseError(what + " at position " + std::to_string(lex_.Peek().pos) +
                     " (near '" + lex_.Peek().text + "')");
  }

  bool PeekKeyword(std::string_view kw) const {
    const Token& t = lex_.Peek();
    return t.kind == TokKind::kIdent && util::EqualsIgnoreCase(t.text, kw);
  }

  bool AcceptKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    lex_.Take();
    return true;
  }

  void ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) Fail("expected '" + std::string(kw) + "'");
  }

  bool AcceptSymbol(std::string_view sym) {
    const Token& t = lex_.Peek();
    if (t.kind != TokKind::kSymbol || t.text != sym) return false;
    lex_.Take();
    return true;
  }

  void ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) Fail("expected '" + std::string(sym) + "'");
  }

  std::string ParseIdent() {
    if (lex_.Peek().kind != TokKind::kIdent) Fail("expected identifier");
    return lex_.Take().text;
  }

  // identifier ['.' identifier]
  std::string ParseColumn() {
    std::string name = ParseIdent();
    if (AcceptSymbol(".")) {
      name += '.';
      name += ParseIdent();
    }
    return name;
  }

  std::vector<std::string> ParseSelectList() {
    if (AcceptSymbol("*")) return {};
    std::vector<std::string> cols;
    cols.push_back(ParseColumn());
    while (AcceptSymbol(",")) cols.push_back(ParseColumn());
    return cols;
  }

  std::unique_ptr<JoinNode> ParsePrimary() {
    if (AcceptSymbol("(")) {
      auto node = ParseJoinExpr();
      ExpectSymbol(")");
      return node;
    }
    auto node = std::make_unique<JoinNode>();
    node->relation = ParseIdent();
    return node;
  }

  std::unique_ptr<JoinNode> ParseJoinExpr() {
    auto left = ParsePrimary();
    while (true) {
      JoinKind kind;
      if (AcceptKeyword("LEFT")) {
        AcceptKeyword("OUTER");
        ExpectKeyword("JOIN");
        kind = JoinKind::kLeftOuter;
      } else if (AcceptKeyword("INNER")) {
        ExpectKeyword("JOIN");
        kind = JoinKind::kInner;
      } else if (AcceptKeyword("JOIN")) {
        kind = JoinKind::kInner;
      } else {
        return left;
      }
      auto node = std::make_unique<JoinNode>();
      node->kind = kind;
      node->left = std::move(left);
      node->right = ParsePrimary();
      if (AcceptKeyword("ON")) {
        node->on_left = ParseColumn();
        ExpectSymbol("=");
        node->on_right = ParseColumn();
      }
      left = std::move(node);
    }
  }

  std::string ParseParam() {
    if (lex_.Peek().kind != TokKind::kParam) Fail("expected $parameter");
    return lex_.Take().text;
  }

  void ParseCondition(std::vector<Predicate>* out) {
    if (AcceptSymbol("(")) {
      ParseCondition(out);
      ExpectSymbol(")");
      return;
    }
    std::string column = ParseColumn();
    if (AcceptKeyword("BETWEEN")) {
      std::string lo = ParseParam();
      ExpectKeyword("AND");
      std::string hi = ParseParam();
      out->push_back(Predicate{column, db::CompareOp::kGe, std::move(lo)});
      out->push_back(Predicate{column, db::CompareOp::kLe, std::move(hi)});
      return;
    }
    db::CompareOp op;
    if (AcceptSymbol("=")) {
      op = db::CompareOp::kEq;
    } else if (AcceptSymbol(">=")) {
      op = db::CompareOp::kGe;
    } else if (AcceptSymbol("<=")) {
      op = db::CompareOp::kLe;
    } else {
      Fail("expected comparison operator (=, >=, <=, BETWEEN)");
      return;
    }
    out->push_back(Predicate{std::move(column), op, ParseParam()});
  }

  Lexer lex_;
};

}  // namespace

PsjQuery Parse(std::string_view text) { return Parser(text).ParseQuery(); }

}  // namespace dash::sql
