// Recursive-descent parser for the PSJ SQL dialect of Definition 1.
//
// Grammar (keywords case-insensitive):
//
//   query      := SELECT select_list FROM join_expr [WHERE conj]
//   select_list:= '*' | column (',' column)*
//   join_expr  := primary (join_op primary)*          (left-associative)
//   primary    := relation | '(' join_expr ')'
//   join_op    := [INNER] JOIN | LEFT [OUTER] JOIN  [ON column '=' column]
//   conj       := condition (AND condition)*
//   condition  := '(' condition ')'
//              |  column ('=' | '>=' | '<=') param
//              |  column BETWEEN param AND param
//   param      := '$' identifier
//   column     := identifier ['.' identifier]
//
// BETWEEN is desugared into >= / <= predicates on the same attribute.
#pragma once

#include <string_view>

#include "sql/psj_query.h"

namespace dash::sql {

// Parses `text`; throws ParseError (derived from std::runtime_error, with
// position info in the message) on malformed input.
PsjQuery Parse(std::string_view text);

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace dash::sql
