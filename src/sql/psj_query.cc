#include "sql/psj_query.h"

#include <stdexcept>

#include "util/string_util.h"

namespace dash::sql {

std::unique_ptr<JoinNode> JoinNode::Clone() const {
  auto node = std::make_unique<JoinNode>();
  node->relation = relation;
  node->kind = kind;
  node->on_left = on_left;
  node->on_right = on_right;
  if (left) node->left = left->Clone();
  if (right) node->right = right->Clone();
  return node;
}

std::string Predicate::ToString() const {
  return column + " " + std::string(db::CompareOpName(op)) + " $" + parameter;
}

PsjQuery::PsjQuery(const PsjQuery& other)
    : projection(other.projection),
      from(other.from ? other.from->Clone() : nullptr),
      where(other.where) {}

PsjQuery& PsjQuery::operator=(const PsjQuery& other) {
  if (this != &other) {
    projection = other.projection;
    from = other.from ? other.from->Clone() : nullptr;
    where = other.where;
  }
  return *this;
}

namespace {
void CollectRelations(const JoinNode* node, std::vector<std::string>* out) {
  if (node == nullptr) return;
  if (node->IsLeaf()) {
    out->push_back(node->relation);
    return;
  }
  CollectRelations(node->left.get(), out);
  CollectRelations(node->right.get(), out);
}

std::string JoinToString(const JoinNode* node) {
  if (node->IsLeaf()) return node->relation;
  std::string out = "(" + JoinToString(node->left.get());
  out += node->kind == JoinKind::kLeftOuter ? " LEFT JOIN " : " JOIN ";
  out += JoinToString(node->right.get());
  if (!node->on_left.empty()) {
    out += " ON " + node->on_left + " = " + node->on_right;
  }
  out += ")";
  return out;
}
}  // namespace

std::vector<std::string> PsjQuery::Relations() const {
  std::vector<std::string> out;
  CollectRelations(from.get(), &out);
  return out;
}

std::vector<SelectionAttribute> PsjQuery::SelectionAttributes() const {
  std::vector<SelectionAttribute> eq;
  std::vector<SelectionAttribute> range;

  auto find = [](std::vector<SelectionAttribute>& v, const std::string& col)
      -> SelectionAttribute* {
    for (auto& a : v) {
      if (util::EqualsIgnoreCase(a.column, col)) return &a;
    }
    return nullptr;
  };

  for (const Predicate& p : where) {
    if (p.op == db::CompareOp::kEq) {
      if (find(range, p.column) != nullptr) {
        throw std::runtime_error("attribute '" + p.column +
                                 "' mixes equality and range predicates");
      }
      if (SelectionAttribute* a = find(eq, p.column)) {
        throw std::runtime_error("attribute '" + a->column +
                                 "' has multiple equality predicates");
      }
      eq.push_back(SelectionAttribute{p.column, false, p.parameter, "", ""});
      continue;
    }
    if (find(eq, p.column) != nullptr) {
      throw std::runtime_error("attribute '" + p.column +
                               "' mixes equality and range predicates");
    }
    SelectionAttribute* a = find(range, p.column);
    if (a == nullptr) {
      range.push_back(SelectionAttribute{p.column, true, "", "", ""});
      a = &range.back();
    }
    std::string& slot =
        p.op == db::CompareOp::kGe ? a->min_parameter : a->max_parameter;
    if (!slot.empty()) {
      throw std::runtime_error("attribute '" + p.column +
                               "' has duplicate range bound");
    }
    slot = p.parameter;
  }

  std::vector<SelectionAttribute> out = std::move(eq);
  out.insert(out.end(), range.begin(), range.end());
  if (out.empty()) {
    throw std::runtime_error("PSJ query has no selection attributes");
  }
  return out;
}

std::string PsjQuery::ToString() const {
  std::string out = "SELECT ";
  out += projection.empty() ? "*" : util::Join(projection, ", ");
  out += " FROM ";
  out += from ? JoinToString(from.get()) : "<empty>";
  if (!where.empty()) {
    out += " WHERE ";
    for (std::size_t i = 0; i < where.size(); ++i) {
      if (i) out += " AND ";
      out += where[i].ToString();
    }
  }
  return out;
}

}  // namespace dash::sql
