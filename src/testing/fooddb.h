// The paper's running example: the fooddb database (Figure 2) and the
// Search web application (Figures 1 and 3).
//
// Used by the quickstart example, the unit tests that reproduce Figures
// 5/6/9 and Example 7 literally, and the baseline demos.
#pragma once

#include "db/database.h"
#include "webapp/query_string.h"

namespace dash::testing {

// restaurant / comment / customer exactly as printed in Figure 2,
// including foreign keys comment.rid -> restaurant.rid and
// comment.uid -> customer.uid.
db::Database MakeFoodDb();

// The Search application: URI www.example.com/Search, bindings
// c->cuisine, l->min, u->max, and the PSJ query of Figure 3.
//
// Note on join shape: the figure prints
//   (restaurant LEFT JOIN comment) JOIN customer
// but its own Figures 1 and 5 show comment-less restaurants (Wandy's rid
// 003) surviving into db-pages, which requires the customer join to stay
// inside the outer side:
//   restaurant LEFT JOIN (comment JOIN customer)
// We use the latter so the reproduced fragments match Figure 5 exactly.
webapp::WebAppInfo MakeSearchApp();

}  // namespace dash::testing
