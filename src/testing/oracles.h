// Differential oracles and metamorphic invariants for generated instances.
//
// Three independent answer paths are cross-checked on every instance:
//
//   1. brute force — fragments re-derived and re-tokenized from the joined
//      rows, pages re-materialized through Crawler::EvalPage from the URL
//      a result advertises, and TF/IDF recomputed from raw token counts;
//   2. the "intuitive" whole-page baseline (baseline::PageEngine);
//   3. the fragment-index engine under test (core::DashEngine).
//
// plus six metamorphic invariants: SW crawl == INT crawl == reference,
// incremental UpdatableIndex == full rebuild, publish-then-search ==
// search-then-publish (a snapshot captured before an incremental update
// answers probes byte-identically after its successor publishes, and
// generations strictly increase), ShardedEngine == unsharded,
// serialized-then-loaded == in-memory, and fragment-graph edges == the
// definition-checked empty-box combinability test.
//
// Exactness boundaries (see DESIGN.md §9): top-k lists are compared
// exactly (score, URL, members) for instances with <= 1 range attribute,
// where db-pages are intervals and hence box-closed; with 2 range
// attributes the repo's documented page model is "members within the
// parameter box, connected in the graph", so the URL-replay check demands
// containment rather than equality there.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/instance_gen.h"

namespace dash::testing {

struct OracleOptions {
  int queries_per_instance = 5;
  int update_ops = 3;              // UpdatableIndex insert/delete mutations
  std::vector<int> shard_counts = {2, 5};
  // Skip the O(n^3) brute-force graph check past this catalog size.
  std::size_t max_graph_brute_fragments = 400;
  bool check_crawl_equivalence = true;
  bool check_graph = true;
  bool check_search = true;
  bool check_page_engine = true;
  bool check_sharded = true;
  bool check_save_load = true;
  bool check_updates = true;
};

struct OracleReport {
  std::vector<std::string> mismatches;  // empty == all oracles agree

  bool ok() const { return mismatches.empty(); }
  std::string ToString() const;
};

// Runs every enabled oracle on `inst`. `query_seed` drives the random
// search/update workload, independently of the instance seed so one
// instance can be probed with many workloads.
OracleReport CheckInstance(const RandomInstance& inst,
                           std::uint64_t query_seed,
                           const OracleOptions& options = {});

}  // namespace dash::testing
