#include "testing/oracles.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "baseline/page_engine.h"
#include "core/dash_engine.h"
#include "core/index_io.h"
#include "core/index_update.h"
#include "core/mr_crawl.h"
#include "core/sharded_engine.h"
#include "util/tokenizer.h"

namespace dash::testing {

namespace {

using core::Crawler;
using core::DashEngine;
using core::FragmentHandle;
using core::FragmentIndexBuild;
using core::SearchResult;

// Catalog + posting fingerprint, the equality relation of the crawl and
// update invariants (same shape as the crawl_equivalence/index_update
// tests, so a fuzz failure reproduces under those suites directly).
std::string Fingerprint(const core::FragmentCatalog& catalog,
                        const core::InvertedFragmentIndex& index) {
  std::string out;
  for (std::size_t f = 0; f < catalog.size(); ++f) {
    out += core::FragmentIdToString(catalog.id(static_cast<FragmentHandle>(f)));
    out += "=";
    out += std::to_string(catalog.keyword_total(static_cast<FragmentHandle>(f)));
    out += ";";
  }
  out += "\n";
  out += index.ToDebugString(catalog);
  return out;
}

std::string Fingerprint(const FragmentIndexBuild& build) {
  return Fingerprint(build.catalog, build.index);
}

// Relative-tolerance float compare: scores travel through identical
// arithmetic on every path, so the tolerance only absorbs association
// differences in multi-term sums.
bool Near(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

// Independently re-derived fragment: identifier, token counts, total words.
struct BruteDoc {
  db::Row id;
  std::unordered_map<std::string, std::size_t> counts;
  std::uint64_t words = 0;
};

std::vector<BruteDoc> DeriveBruteDocs(const Crawler& crawler) {
  std::vector<BruteDoc> docs;
  for (const core::Fragment& frag : crawler.DeriveFragments()) {
    BruteDoc doc;
    doc.id = frag.id;
    util::TokenCounter counter;
    for (const db::Row& row : frag.rows) {
      Crawler::CountRowKeywords(row, counter);
    }
    doc.counts.insert(counter.counts().begin(), counter.counts().end());
    doc.words = counter.total();
    docs.push_back(std::move(doc));
  }
  return docs;
}

// Same query normalization as TopKSearcher: tokenize, drop duplicates.
std::vector<std::string> QueryTerms(const std::vector<std::string>& keywords) {
  std::vector<std::string> terms;
  for (const std::string& raw : keywords) {
    for (std::string& tok : util::Tokenize(raw)) {
      if (std::find(terms.begin(), terms.end(), tok) == terms.end()) {
        terms.push_back(std::move(tok));
      }
    }
  }
  return terms;
}

std::string Join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += " ";
    out += p;
  }
  return out;
}

// URL a single-fragment db-page must advertise, formulated independently
// of the searcher (equality values from the identifier, lo == hi bounds).
std::string BruteUrl(const RandomInstance& inst,
                     const std::vector<sql::SelectionAttribute>& selection,
                     const db::Row& id) {
  std::map<std::string, std::string> params;
  for (std::size_t d = 0; d < selection.size(); ++d) {
    const sql::SelectionAttribute& attr = selection[d];
    if (!attr.is_range) {
      params[attr.eq_parameter] = id[d].ToString();
    } else {
      if (!attr.min_parameter.empty()) params[attr.min_parameter] = id[d].ToString();
      if (!attr.max_parameter.empty()) params[attr.max_parameter] = id[d].ToString();
    }
  }
  return inst.app.UrlFor(params);
}

// Parses a result URL back into typed parameter values (the forward
// direction of query-string parsing — the inverse of what the searcher
// did to formulate it).
bool TypedParams(const RandomInstance& inst, const Crawler& crawler,
                 const std::string& url,
                 std::map<std::string, db::Value>* out, std::string* err) {
  const std::string prefix = inst.app.uri + "?";
  if (url.rfind(prefix, 0) != 0) {
    *err = "url '" + url + "' does not start with '" + prefix + "'";
    return false;
  }
  std::map<std::string, std::string> text =
      inst.app.codec.Parse(url.substr(prefix.size()));
  const auto& selection = crawler.selection();
  const auto& columns = crawler.selection_columns();
  for (std::size_t d = 0; d < selection.size(); ++d) {
    const std::string& qualified = columns[d];
    std::string rel = qualified.substr(0, qualified.find('.'));
    const db::Schema& schema = inst.db.table(rel).schema();
    db::ValueType type =
        schema.column(static_cast<std::size_t>(schema.IndexOf(qualified))).type;
    auto parse_one = [&](const std::string& param) -> bool {
      auto it = text.find(param);
      if (it == text.end()) {
        *err = "url '" + url + "' is missing parameter '" + param + "'";
        return false;
      }
      (*out)[param] = db::Value::Parse(it->second, type);
      return true;
    };
    const sql::SelectionAttribute& attr = selection[d];
    if (!attr.is_range) {
      if (!parse_one(attr.eq_parameter)) return false;
    } else {
      if (!attr.min_parameter.empty() && !parse_one(attr.min_parameter)) return false;
      if (!attr.max_parameter.empty() && !parse_one(attr.max_parameter)) return false;
    }
  }
  return true;
}

}  // namespace

std::string OracleReport::ToString() const {
  std::string out;
  for (const std::string& m : mismatches) {
    out += m;
    out += "\n";
  }
  return out;
}

OracleReport CheckInstance(const RandomInstance& inst,
                           std::uint64_t query_seed,
                           const OracleOptions& options) {
  OracleReport report;
  auto fail = [&](std::string msg) {
    report.mismatches.push_back("[" + inst.summary + "] " + std::move(msg));
  };
  auto guard = [&](const char* what, auto&& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      fail(std::string(what) + ": exception: " + e.what());
    }
  };

  util::SplitMix64 rng(query_seed * 0xA24BAED4963EE407ULL +
                       0x9FB21C651E98DF25ULL);

  // ---- Reference build + independently re-derived fragment documents. ----
  std::unique_ptr<Crawler> crawler;
  std::unique_ptr<DashEngine> engine;
  std::vector<BruteDoc> docs;
  std::unordered_map<std::string, std::size_t> df;
  try {
    crawler = std::make_unique<Crawler>(inst.db, inst.app.query);
    core::BuildOptions build_options;
    build_options.algorithm = core::CrawlAlgorithm::kReference;
    engine = std::make_unique<DashEngine>(
        DashEngine::Build(inst.db, inst.app, build_options));
    docs = DeriveBruteDocs(*crawler);
    for (const BruteDoc& doc : docs) {
      for (const auto& [keyword, count] : doc.counts) {
        if (count > 0) ++df[keyword];
      }
    }
  } catch (const std::exception& e) {
    fail(std::string("build: exception: ") + e.what());
    return report;
  }

  const core::FragmentCatalog& catalog = engine->catalog();
  const std::size_t num_eq = inst.num_eq;
  const std::size_t num_range = inst.num_range;

  // Catalog vs brute derivation: same fragments, same identifier order,
  // same keyword totals.
  if (catalog.size() != docs.size()) {
    fail("catalog holds " + std::to_string(catalog.size()) +
         " fragments, brute derivation found " + std::to_string(docs.size()));
    return report;
  }
  for (std::size_t f = 0; f < docs.size(); ++f) {
    auto handle = static_cast<FragmentHandle>(f);
    if (!(catalog.id(handle) == docs[f].id)) {
      fail("fragment " + std::to_string(f) + " identifier mismatch: catalog " +
           core::FragmentIdToString(catalog.id(handle)) + " vs brute " +
           core::FragmentIdToString(docs[f].id));
      return report;
    }
    if (catalog.keyword_total(handle) != docs[f].words) {
      fail("fragment " + core::FragmentIdToString(docs[f].id) +
           " keyword total " + std::to_string(catalog.keyword_total(handle)) +
           " != brute count " + std::to_string(docs[f].words));
    }
  }

  // ---- Invariant: SW crawl == INT crawl == reference crawl. ----
  if (options.check_crawl_equivalence) {
    guard("crawl-equivalence", [&] {
      std::string reference = Fingerprint(catalog, engine->index());
      mr::ClusterConfig config;
      config.block_size_bytes = 4 << 10;
      core::CrawlOptions crawl_options;
      crawl_options.num_reduce_tasks = 1 + static_cast<int>(rng.Below(4));
      mr::Cluster sw_cluster(config);
      core::CrawlResult sw =
          StepwiseCrawl(sw_cluster, inst.db, inst.app.query, crawl_options);
      if (Fingerprint(sw.build) != reference) {
        fail("stepwise crawl index differs from reference crawl");
      }
      mr::Cluster int_cluster(config);
      core::CrawlResult integrated =
          IntegratedCrawl(int_cluster, inst.db, inst.app.query, crawl_options);
      if (Fingerprint(integrated.build) != reference) {
        fail("integrated crawl index differs from reference crawl");
      }
    });
  }

  // ---- Invariant: graph edges == definition-checked combinability. ----
  // Definition (paper VI-A): f—f' iff both share every equality value and
  // the minimal axis-aligned box covering their range values contains no
  // third fragment (boundaries inclusive).
  if (options.check_graph && catalog.size() <= options.max_graph_brute_fragments) {
    guard("graph", [&] {
      const core::FragmentGraph& graph = engine->graph();
      for (std::size_t a = 0; a < docs.size(); ++a) {
        for (std::size_t b = a + 1; b < docs.size(); ++b) {
          bool same_group = true;
          for (std::size_t d = 0; d < num_eq; ++d) {
            if (!(docs[a].id[d] == docs[b].id[d])) {
              same_group = false;
              break;
            }
          }
          bool expected = false;
          if (same_group && num_range > 0) {
            expected = true;
            for (std::size_t c = 0; c < docs.size() && expected; ++c) {
              if (c == a || c == b) continue;
              bool inside = true;
              for (std::size_t d = 0; d < num_eq && inside; ++d) {
                inside = docs[c].id[d] == docs[a].id[d];
              }
              for (std::size_t d = num_eq; d < num_eq + num_range && inside;
                   ++d) {
                const db::Value& lo = docs[a].id[d] < docs[b].id[d]
                                          ? docs[a].id[d]
                                          : docs[b].id[d];
                const db::Value& hi = docs[a].id[d] < docs[b].id[d]
                                          ? docs[b].id[d]
                                          : docs[a].id[d];
                inside = !(docs[c].id[d] < lo) && !(hi < docs[c].id[d]);
              }
              if (inside) expected = false;  // a third fragment in the box
            }
          }
          auto fa = static_cast<FragmentHandle>(a);
          auto fb = static_cast<FragmentHandle>(b);
          auto neighbors = graph.Neighbors(fa);
          bool actual =
              std::find(neighbors.begin(), neighbors.end(), fb) != neighbors.end();
          if (actual != expected) {
            fail("graph edge " + core::FragmentIdToString(docs[a].id) + " -- " +
                 core::FragmentIdToString(docs[b].id) + ": graph says " +
                 (actual ? "yes" : "no") + ", definition says " +
                 (expected ? "yes" : "no"));
          }
        }
      }
    });
  }

  // ---- Invariant: serialized-then-loaded == in-memory. ----
  std::unique_ptr<DashEngine> loaded;
  if (options.check_save_load) {
    guard("save-load", [&] {
      std::stringstream stream;
      core::SaveEngine(*engine, stream);
      loaded = std::make_unique<DashEngine>(core::LoadEngine(stream));
      if (Fingerprint(loaded->catalog(), loaded->index()) !=
          Fingerprint(catalog, engine->index())) {
        fail("loaded index fingerprint differs from the saved engine");
        loaded.reset();
      }
    });
  }

  // ---- ShardedEngine builds (searched inside the query sweep). ----
  std::vector<std::unique_ptr<core::ShardedEngine>> sharded;
  if (options.check_sharded) {
    guard("sharded-build", [&] {
      for (int shards : options.shard_counts) {
        sharded.push_back(std::make_unique<core::ShardedEngine>(
            inst.app, crawler->BuildIndex(), shards));
        if (sharded.back()->fragment_count() != catalog.size()) {
          fail("sharding into " + std::to_string(shards) + " shards kept " +
               std::to_string(sharded.back()->fragment_count()) + " of " +
               std::to_string(catalog.size()) + " fragments");
        }
      }
    });
  }

  // ---- PageEngine (the intuitive whole-page baseline). ----
  std::unique_ptr<baseline::PageEngine> pages;
  if (options.check_page_engine && num_range <= 1) {
    guard("page-engine-build", [&] {
      pages = std::make_unique<baseline::PageEngine>(inst.db, inst.app);
    });
  }

  // ---- Query sweep: three answer paths + serving invariants. ----
  if (options.check_search) {
    const auto& selection = crawler->selection();
    for (int q = 0; q < options.queries_per_instance; ++q) {
      std::vector<std::string> keywords = SampleKeywords(rng);
      static const int kChoices[] = {1, 2, 3, 5, 10, 25};
      static const std::uint64_t kSizes[] = {1, 4, 15, 60, 250, 100000};
      int k = kChoices[rng.Below(std::size(kChoices))];
      std::uint64_t s = kSizes[rng.Below(std::size(kSizes))];
      std::string ctx = "query '" + Join(keywords) + "' k=" + std::to_string(k);

      // (1) s=0 disables expansion: Dash must return exactly the top-k
      // relevant fragments by (score desc, fragment asc) — recomputed here
      // from raw token counts.
      guard("fragment-topk", [&] {
        std::vector<std::string> terms = QueryTerms(keywords);
        std::vector<std::pair<double, FragmentHandle>> brute;
        for (std::size_t f = 0; f < docs.size(); ++f) {
          if (docs[f].words == 0) continue;
          double score = 0;
          bool relevant = false;
          for (const std::string& t : terms) {
            auto it = docs[f].counts.find(t);
            if (it == docs[f].counts.end() || it->second == 0) continue;
            relevant = true;
            score += (1.0 / static_cast<double>(df.at(t))) *
                     static_cast<double>(it->second) /
                     static_cast<double>(docs[f].words);
          }
          if (relevant) {
            brute.emplace_back(score, static_cast<FragmentHandle>(f));
          }
        }
        std::sort(brute.begin(), brute.end(),
                  [](const auto& a, const auto& b) {
                    if (a.first != b.first) return a.first > b.first;
                    return a.second < b.second;
                  });
        if (brute.size() > static_cast<std::size_t>(k)) {
          brute.resize(static_cast<std::size_t>(k));
        }
        auto results = engine->Search(keywords, k, 0);
        if (results.size() != brute.size()) {
          fail(ctx + " s=0: Dash returned " + std::to_string(results.size()) +
               " pages, brute force " + std::to_string(brute.size()));
          return;
        }
        for (std::size_t i = 0; i < results.size(); ++i) {
          const SearchResult& r = results[i];
          auto [score, f] = brute[i];
          if (r.fragments != std::vector<FragmentHandle>{f}) {
            fail(ctx + " s=0 rank " + std::to_string(i) +
                 ": Dash page != brute fragment " +
                 core::FragmentIdToString(docs[f].id));
            return;
          }
          if (!Near(r.score, score)) {
            fail(ctx + " s=0 rank " + std::to_string(i) + ": Dash score " +
                 std::to_string(r.score) + " != brute score " +
                 std::to_string(score));
          }
          std::string url = BruteUrl(inst, selection, docs[f].id);
          if (r.url != url) {
            fail(ctx + " s=0 rank " + std::to_string(i) + ": Dash url '" +
                 r.url + "' != brute url '" + url + "'");
          }
        }

        // Equality-only instances: page universe == fragment universe, so
        // the whole-page baseline must return the identical ranking.
        if (pages != nullptr && num_range == 0) {
          auto baseline_results = pages->Search(keywords, k);
          if (baseline_results.size() != results.size()) {
            fail(ctx + " eq-only: PageEngine returned " +
                 std::to_string(baseline_results.size()) + " pages, Dash " +
                 std::to_string(results.size()));
            return;
          }
          for (std::size_t i = 0; i < results.size(); ++i) {
            if (baseline_results[i].url != results[i].url ||
                !Near(baseline_results[i].score, results[i].score)) {
              fail(ctx + " eq-only rank " + std::to_string(i) +
                   ": PageEngine (" + baseline_results[i].url + ", " +
                   std::to_string(baseline_results[i].score) + ") != Dash (" +
                   results[i].url + ", " + std::to_string(results[i].score) +
                   ")");
            }
          }
        }
      });

      // (2) Expanding searches: every result must replay — its URL, fed
      // back through query-string parsing and brute-force page
      // materialization, must produce the content the searcher scored.
      guard("page-replay", [&] {
        std::vector<std::string> terms = QueryTerms(keywords);
        auto results = engine->Search(keywords, k, s);
        std::string sctx = ctx + " s=" + std::to_string(s);
        std::set<FragmentHandle> used;
        for (std::size_t i = 0; i < results.size(); ++i) {
          const SearchResult& r = results[i];
          std::string rctx = sctx + " rank " + std::to_string(i);
          if (r.fragments.empty() ||
              !std::is_sorted(r.fragments.begin(), r.fragments.end())) {
            fail(rctx + ": member list empty or unsorted");
            continue;
          }
          for (FragmentHandle f : r.fragments) {
            if (!used.insert(f).second) {
              fail(rctx + ": fragment " +
                   core::FragmentIdToString(docs[f].id) +
                   " appears in two results (overlapped contents)");
            }
          }
          // Contiguity + group membership (interval pages for <= 1 range).
          const core::FragmentGraph& graph = engine->graph();
          for (std::size_t m = 1; m < r.fragments.size(); ++m) {
            if (graph.GroupOf(r.fragments[m]) != graph.GroupOf(r.fragments[0])) {
              fail(rctx + ": members span two equality groups");
            }
            if (num_range <= 1 &&
                r.fragments[m] != r.fragments[m - 1] + 1) {
              fail(rctx + ": interval page has a gap at member " +
                   std::to_string(m));
            }
          }
          // Size and score against the brute-force token counts.
          std::uint64_t words = 0;
          std::unordered_map<std::string, std::size_t> member_counts;
          for (FragmentHandle f : r.fragments) {
            words += docs[f].words;
            for (const auto& [keyword, count] : docs[f].counts) {
              member_counts[keyword] += count;
            }
          }
          if (words != r.size_words) {
            fail(rctx + ": size_words " + std::to_string(r.size_words) +
                 " != brute total " + std::to_string(words));
          }
          double score = 0;
          std::size_t occ_total = 0;
          for (const std::string& t : terms) {
            auto it = member_counts.find(t);
            if (it == member_counts.end() || words == 0) continue;
            occ_total += it->second;
            score += (1.0 / static_cast<double>(df.at(t))) *
                     static_cast<double>(it->second) /
                     static_cast<double>(words);
          }
          if (occ_total == 0) {
            fail(rctx + ": result page contains no queried keyword");
          }
          if (!Near(score, r.score)) {
            fail(rctx + ": score " + std::to_string(r.score) +
                 " != brute recomputation " + std::to_string(score));
          }
          // Undersized output is only legal when the group is exhausted.
          if (num_range <= 1 && r.size_words < s) {
            auto [first, last] = graph.GroupSpan(graph.GroupOf(r.fragments[0]));
            if (r.fragments.size() != static_cast<std::size_t>(last - first + 1)) {
              fail(rctx + ": undersized page (" +
                   std::to_string(r.size_words) + " < s=" + std::to_string(s) +
                   ") but its group is not exhausted");
            }
          }
          // URL replay through EvalPage.
          std::map<std::string, db::Value> params;
          std::string err;
          if (!TypedParams(inst, *crawler, r.url, &params, &err)) {
            fail(rctx + ": " + err);
            continue;
          }
          db::Table page = crawler->EvalPage(params);
          util::TokenCounter page_counter;
          for (const db::Row& row : page.rows()) {
            Crawler::CountRowKeywords(row, page_counter);
          }
          if (num_range <= 1) {
            // Interval pages are box-closed: the materialized db-page is
            // exactly the member union.
            if (page_counter.total() != words ||
                page_counter.counts() != member_counts) {
              fail(rctx + ": materialized page for '" + r.url +
                   "' has different content than the " +
                   std::to_string(r.fragments.size()) +
                   " member fragments (page " +
                   std::to_string(page_counter.total()) + " words vs " +
                   std::to_string(words) + ")");
            }
          } else {
            // Two range attributes: the documented page model is "members
            // inside the parameter box" — demand containment.
            if (page_counter.total() < words) {
              fail(rctx + ": materialized page for '" + r.url + "' has " +
                   std::to_string(page_counter.total()) +
                   " words, fewer than its members' " + std::to_string(words));
            }
            for (const auto& [keyword, count] : member_counts) {
              auto it = page_counter.counts().find(keyword);
              std::size_t have = it == page_counter.counts().end() ? 0 : it->second;
              if (have < count) {
                fail(rctx + ": materialized page undercounts keyword '" +
                     keyword + "' (" + std::to_string(have) + " < " +
                     std::to_string(count) + ")");
              }
            }
          }

          // Members outside the page's own enumeration universe: for <= 1
          // range attribute every result URL must name a page the
          // whole-page baseline also materialized, with the same size.
          if (pages != nullptr) {
            auto all = pages->Search(keywords, -1);
            bool found = false;
            for (const auto& p : all) {
              if (p.url == r.url) {
                found = true;
                if (p.size_words != r.size_words) {
                  fail(rctx + ": PageEngine materialized '" + r.url +
                       "' with " + std::to_string(p.size_words) +
                       " words, Dash reports " + std::to_string(r.size_words));
                }
                break;
              }
            }
            if (!found) {
              fail(rctx + ": url '" + r.url +
                   "' is not a page the whole-page baseline enumerates");
            }
          }
        }

        // (3) Invariant: ShardedEngine == unsharded. Truncated searches
        // (small k) are only guaranteed equal without expansion (s=0):
        // with s>0 a score-raising expansion a shard reaches before
        // filling its k can legitimately be missed by the global
        // best-first search (the monotonicity edge case in
        // sharded_engine.h). Exhaustive searches (k > catalog size) have
        // no truncation boundary, so there the full lists must agree
        // under the canonical order — for any s.
        int k_full = static_cast<int>(catalog.size()) + 1;
        auto full = engine->Search(keywords, k_full, s);
        auto topk_s0 = engine->Search(keywords, k, 0);
        for (std::size_t e = 0; e < sharded.size(); ++e) {
          for (bool exhaustive : {false, true}) {
            int sk = exhaustive ? k_full : k;
            std::uint64_t ss = exhaustive ? s : 0;
            const auto& expect = exhaustive ? full : topk_s0;
            auto sr = sharded[e]->Search(keywords, sk, ss);
            std::string mode = std::to_string(options.shard_counts[e]) +
                               "-shard " +
                               (exhaustive ? "exhaustive" : "s=0") + " search";
            if (sr.size() != expect.size()) {
              fail(sctx + ": " + mode + " returned " +
                   std::to_string(sr.size()) + " pages, unsharded " +
                   std::to_string(expect.size()));
              continue;
            }
            for (std::size_t i = 0; i < expect.size(); ++i) {
              if (sr[i].url != expect[i].url ||
                  sr[i].size_words != expect[i].size_words ||
                  !Near(sr[i].score, expect[i].score)) {
                fail(sctx + " rank " + std::to_string(i) + ": " + mode +
                     " (" + sr[i].url + ", " + std::to_string(sr[i].score) +
                     ") != unsharded (" + expect[i].url + ", " +
                     std::to_string(expect[i].score) + ")");
                break;
              }
            }
          }
        }

        // (4) Invariant: loaded engine == in-memory engine, per query.
        if (loaded != nullptr) {
          auto lr = loaded->Search(keywords, k, s);
          if (lr.size() != results.size()) {
            fail(sctx + ": loaded engine returned " +
                 std::to_string(lr.size()) + " pages, in-memory " +
                 std::to_string(results.size()));
          } else {
            for (std::size_t i = 0; i < results.size(); ++i) {
              if (lr[i].url != results[i].url ||
                  lr[i].fragments != results[i].fragments ||
                  !Near(lr[i].score, results[i].score)) {
                fail(sctx + " rank " + std::to_string(i) +
                     ": loaded engine result differs from in-memory");
                break;
              }
            }
          }
        }
      });
    }
  }

  // ---- Invariant: incremental index_update == full rebuild. ----
  if (options.check_updates) {
    guard("index-update", [&] {
      core::UpdatableIndex updatable(inst.db, inst.app.query);
      std::vector<std::string> tables = inst.db.TableNames();
      for (int op = 0; op < options.update_ops; ++op) {
        // Invariant: publish-then-search == search-then-publish. Snapshots
        // are immutable once published, so a probe answered before an
        // update must be answered byte-identically by the *same* snapshot
        // after the update has published a successor.
        core::SnapshotPtr pre = updatable.snapshot();
        std::vector<std::string> probe = SampleKeywords(rng);
        auto pre_results = pre->Search(probe, 5, 20);

        const std::string& name = tables[rng.Below(tables.size())];
        const db::Table& table = updatable.database().table(name);
        bool insert = table.row_count() == 0 || rng.NextDouble() < 0.6;
        std::string what;
        if (insert) {
          // Synthesize a plausible row: FK columns point at live parent
          // rows (occasionally dangling), category/range columns reuse
          // existing values so the new row lands in existing fragments.
          db::Row row;
          for (const db::Column& col : table.schema().columns()) {
            const db::ForeignKey* fk = nullptr;
            for (const db::ForeignKey& candidate : inst.db.foreign_keys()) {
              if (candidate.from_table == name &&
                  candidate.from_column == col.name) {
                fk = &candidate;
              }
            }
            if (fk != nullptr) {
              const db::Table& parent = updatable.database().table(fk->to_table);
              if (parent.row_count() > 0 && rng.NextDouble() < 0.9) {
                row.push_back(parent.At(rng.Below(parent.row_count()),
                                        fk->to_column));
              } else {
                row.push_back(db::Value(99999));  // dangling
              }
            } else if (table.row_count() > 0 && rng.NextDouble() < 0.7) {
              row.push_back(table.At(rng.Below(table.row_count()), col.name));
            } else if (col.type == db::ValueType::kInt) {
              row.push_back(db::Value(rng.Range(0, 5)));
            } else if (col.type == db::ValueType::kDouble) {
              row.push_back(
                  db::Value(static_cast<double>(rng.Range(10, 99)) / 10.0));
            } else {
              row.push_back(db::Value(Join(SampleKeywords(rng))));
            }
          }
          updatable.Insert(name, row);
          what = "insert into " + name;
        } else {
          const db::Row& victim = table.rows()[rng.Below(table.row_count())];
          db::Row copy = victim;
          updatable.Delete(name, copy);
          what = "delete from " + name;
        }
        auto replay = pre->Search(probe, 5, 20);
        bool frozen = replay.size() == pre_results.size();
        for (std::size_t i = 0; frozen && i < replay.size(); ++i) {
          frozen = replay[i].url == pre_results[i].url &&
                   replay[i].fragments == pre_results[i].fragments &&
                   replay[i].score == pre_results[i].score;
        }
        if (!frozen) {
          fail("after " + what + " (op " + std::to_string(op) +
               "): the pre-update snapshot's answer for '" + Join(probe) +
               "' changed — published snapshots must be immutable");
          return;
        }
        if (updatable.snapshot()->generation() <= pre->generation()) {
          fail("after " + what + " (op " + std::to_string(op) +
               "): published generation did not increase (" +
               std::to_string(updatable.snapshot()->generation()) + " vs " +
               std::to_string(pre->generation()) + ")");
          return;
        }

        Crawler rebuilt(updatable.database(), inst.app.query);
        if (Fingerprint(updatable.build().catalog, updatable.build().index) !=
            Fingerprint(rebuilt.BuildIndex())) {
          fail("after " + what + " (op " + std::to_string(op) +
               "): incremental index differs from a full rebuild");
          return;
        }
      }
      // The updated snapshot must also *search* like a fresh build.
      core::BuildOptions build_options;
      build_options.algorithm = core::CrawlAlgorithm::kReference;
      DashEngine updated =
          DashEngine::FromParts(inst.app, updatable.CopyBuild());
      DashEngine fresh =
          DashEngine::Build(updatable.database(), inst.app, build_options);
      for (int probe = 0; probe < 2; ++probe) {
        std::vector<std::string> keywords = SampleKeywords(rng);
        auto a = updated.Search(keywords, 5, 20);
        auto b = fresh.Search(keywords, 5, 20);
        bool equal = a.size() == b.size();
        for (std::size_t i = 0; equal && i < a.size(); ++i) {
          equal = a[i].url == b[i].url && a[i].fragments == b[i].fragments &&
                  Near(a[i].score, b[i].score);
        }
        if (!equal) {
          fail("updated snapshot search for '" + Join(keywords) +
               "' differs from a fresh build");
        }
      }
    });
  }

  return report;
}

}  // namespace dash::testing
