// Seeded random-instance generator for the differential fuzzing harness.
//
// An *instance* is everything the oracles (testing/oracles.h) need to
// cross-check Dash end to end: a database with a 2–4-table foreign-key
// join chain, populated with a Zipf-skewed keyword vocabulary, and a web
// application whose parameterized PSJ query mixes equality and range
// selection attributes. Generation is fully deterministic in the seed
// (util::SplitMix64 only, no std:: distributions), so `dash_fuzz --seed N`
// replays a failure exactly.
//
// Instances are deliberately small (tens of rows): every oracle includes a
// brute-force path (page materialization, O(n^3) graph combinability), and
// thousands of seeds must run in seconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/random.h"
#include "webapp/query_string.h"

namespace dash::testing {

struct GenOptions {
  int min_tables = 2;
  int max_tables = 4;
  int max_rows_per_table = 14;
  // Shape-forcing knobs for directed tests (negative = choose randomly).
  int force_tables = -1;  // exact number of relations in the join chain
  int force_eq = -1;      // exact number of equality selection attributes
  int force_range = -1;   // exact number of range selection attributes
  int force_outer = -1;   // 1 = root join LEFT OUTER, 0 = all inner
  bool empty_root = false;  // root relation gets zero rows (edge case)
};

// One generated fuzzing instance.
struct RandomInstance {
  std::uint64_t seed = 0;
  db::Database db;
  webapp::WebAppInfo app;
  std::size_t num_eq = 0;     // equality selection attributes
  std::size_t num_range = 0;  // range selection attributes
  std::string summary;        // one-line shape description for reports
};

RandomInstance GenerateInstance(std::uint64_t seed,
                                const GenOptions& options = {});

// Keywords for one random query against `inst`: drawn from the generator
// vocabulary (mostly hits, skewed toward hot words), occasionally a numeric
// token or an unknown word.
std::vector<std::string> SampleKeywords(util::SplitMix64& rng);

// Tab-separated dump of the query and every table (schema + rows), printed
// alongside a shrunken failing instance so mismatches are inspectable
// without re-running the generator.
std::string DumpInstance(const RandomInstance& inst);

}  // namespace dash::testing
