#include "testing/fooddb.h"

#include "sql/parser.h"

namespace dash::testing {

using db::Column;
using db::Schema;
using db::Table;
using db::Value;
using db::ValueType;

db::Database MakeFoodDb() {
  db::Database database;

  Table restaurant("restaurant",
                   Schema({{"restaurant", "rid", ValueType::kInt},
                           {"restaurant", "name", ValueType::kString},
                           {"restaurant", "cuisine", ValueType::kString},
                           {"restaurant", "budget", ValueType::kInt},
                           {"restaurant", "rate", ValueType::kDouble}}));
  restaurant.AddRow({1, "Burger Queen", "American", 10, 4.3});
  restaurant.AddRow({2, "McRonald's", "American", 18, 2.2});
  restaurant.AddRow({3, "Wandy's", "American", 12, 4.1});
  restaurant.AddRow({4, "Wandy's", "American", 12, 4.2});
  restaurant.AddRow({5, "Thaifood", "Thai", 10, 4.8});
  restaurant.AddRow({6, "Bangkok", "Thai", 10, 3.9});
  restaurant.AddRow({7, "Bond's Cafe", "American", 9, 4.3});
  database.AddTable(std::move(restaurant));

  Table comment("comment", Schema({{"comment", "cid", ValueType::kInt},
                                   {"comment", "rid", ValueType::kInt},
                                   {"comment", "uid", ValueType::kInt},
                                   {"comment", "comment", ValueType::kString},
                                   {"comment", "date", ValueType::kString}}));
  comment.AddRow({201, 1, 109, "Burger experts", "06/10"});
  comment.AddRow({202, 4, 132, "Unique burger", "05/10"});
  comment.AddRow({203, 4, 132, "Bad fries", "06/10"});
  comment.AddRow({204, 2, 109, "Regret taking it", "06/10"});
  comment.AddRow({205, 6, 180, "Thai burger", "08/11"});
  comment.AddRow({206, 7, 171, "Nice coffee", "01/11"});
  database.AddTable(std::move(comment));

  Table customer("customer", Schema({{"customer", "uid", ValueType::kInt},
                                     {"customer", "uname", ValueType::kString}}));
  customer.AddRow({109, "David"});
  customer.AddRow({120, "Ben"});
  customer.AddRow({132, "Bill"});
  customer.AddRow({171, "James"});
  customer.AddRow({180, "Alan"});
  database.AddTable(std::move(customer));

  database.AddForeignKey({"comment", "rid", "restaurant", "rid"});
  database.AddForeignKey({"comment", "uid", "customer", "uid"});
  return database;
}

webapp::WebAppInfo MakeSearchApp() {
  webapp::WebAppInfo app;
  app.name = "Search";
  app.uri = "www.example.com/Search";
  app.query = sql::Parse(
      "SELECT name, budget, rate, comment, uname, date "
      "FROM restaurant LEFT JOIN (comment JOIN customer) "
      "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max");
  app.codec = webapp::QueryStringCodec({{"c", "cuisine"},
                                        {"l", "min"},
                                        {"u", "max"}});
  return app;
}

}  // namespace dash::testing
