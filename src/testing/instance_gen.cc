#include "testing/instance_gen.h"

#include <algorithm>

#include "sql/parser.h"

namespace dash::testing {

namespace {

using db::Column;
using db::Schema;
using db::Table;
using db::Value;
using db::ValueType;

// Keyword vocabulary for generated text columns. Sampled with a Zipf rank
// distribution so document frequencies are skewed (hot and cold keywords,
// like the evaluation datasets).
const std::vector<std::string>& Vocab() {
  static const std::vector<std::string> words = {
      "amber",  "basil",  "cedar",  "delta",  "ember",  "fjord",  "grove",
      "heath",  "inlet",  "juniper", "kelp",  "lotus",  "maple",  "nectar",
      "onyx",   "poplar", "quartz", "reed",   "sage",   "tundra", "umber",
      "violet", "willow", "xenon",  "yarrow", "zephyr", "birch",  "clover"};
  return words;
}

const util::ZipfSampler& VocabSampler() {
  static const util::ZipfSampler sampler(Vocab().size(), 1.07);
  return sampler;
}

std::string ZipfText(util::SplitMix64& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.Range(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (!out.empty()) out += ' ';
    out += Vocab()[VocabSampler().Sample(rng)];
  }
  return out;
}

// Where one selection attribute lives: the qualified column plus the table
// index, so predicates can be rendered and summarized.
struct AttrPick {
  int table = 0;
  std::string column;  // qualified, e.g. "t1.num1"
};

}  // namespace

RandomInstance GenerateInstance(std::uint64_t seed,
                                const GenOptions& options) {
  // Offset the raw seed so seed 0/1/2 don't share SplitMix64 prefixes with
  // other generator users.
  util::SplitMix64 rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  RandomInstance inst;
  inst.seed = seed;

  int num_tables =
      options.force_tables >= 0
          ? options.force_tables
          : static_cast<int>(
                rng.Range(options.min_tables, options.max_tables));
  num_tables = std::max(num_tables, 2);

  // Selection shape: at least one attribute overall.
  int num_eq = options.force_eq >= 0 ? options.force_eq
                                     : static_cast<int>(rng.Range(0, 2));
  int num_range = options.force_range >= 0 ? options.force_range
                                           : static_cast<int>(rng.Range(0, 2));
  if (num_eq + num_range == 0) {
    (rng.Next() & 1) ? num_eq = 1 : num_range = 1;
  }
  inst.num_eq = static_cast<std::size_t>(num_eq);
  inst.num_range = static_cast<std::size_t>(num_range);

  bool outer = options.force_outer >= 0 ? options.force_outer != 0
                                        : rng.NextDouble() < 0.25;
  // A left-outer root only pads rows when the whole inner side is one join
  // subtree, so the outer shape forces right-nesting (like fooddb's
  // restaurant LEFT JOIN (comment JOIN customer)).
  bool nested = outer || rng.NextDouble() < 0.4;

  // Value cardinalities: small on purpose, so selection groups collide and
  // fragments merge rows.
  int eq_card = static_cast<int>(rng.Range(1, 3));
  int range_card = static_cast<int>(rng.Range(2, 5));

  // Attribute placement: equality attributes on distinct tables (cat<i>
  // columns), range attributes on distinct tables (num<i> columns).
  std::vector<AttrPick> eq_attrs, range_attrs;
  {
    std::vector<int> tables(static_cast<std::size_t>(num_tables));
    for (int i = 0; i < num_tables; ++i) tables[static_cast<std::size_t>(i)] = i;
    // Deterministic shuffle.
    for (std::size_t i = tables.size(); i > 1; --i) {
      std::swap(tables[i - 1], tables[rng.Below(i)]);
    }
    for (int j = 0; j < num_eq; ++j) {
      int t = tables[static_cast<std::size_t>(j) % tables.size()];
      eq_attrs.push_back(
          {t, "t" + std::to_string(t) + ".cat" + std::to_string(t)});
    }
    for (std::size_t i = tables.size(); i > 1; --i) {
      std::swap(tables[i - 1], tables[rng.Below(i)]);
    }
    for (int j = 0; j < num_range; ++j) {
      int t = tables[static_cast<std::size_t>(j) % tables.size()];
      range_attrs.push_back(
          {t, "t" + std::to_string(t) + ".num" + std::to_string(t)});
    }
  }

  // ---- Tables: t0 <- t1 <- t2 <- t3 foreign-key chain. ----
  std::vector<std::vector<std::int64_t>> ids(
      static_cast<std::size_t>(num_tables));
  for (int t = 0; t < num_tables; ++t) {
    std::string tn = "t" + std::to_string(t);
    std::string suffix = std::to_string(t);
    Schema schema({{tn, "id" + suffix, ValueType::kInt}});
    if (t > 0) schema.AddColumn({tn, "p" + suffix, ValueType::kInt});
    schema.AddColumn({tn, "cat" + suffix, ValueType::kString});
    schema.AddColumn({tn, "num" + suffix, ValueType::kInt});
    schema.AddColumn({tn, "txt" + suffix, ValueType::kString});
    bool has_val = rng.NextDouble() < 0.3;
    if (has_val) schema.AddColumn({tn, "val" + suffix, ValueType::kDouble});
    Table table(tn, schema);

    int rows;
    if (t == 0 && options.empty_root) {
      rows = 0;
    } else if (t != 0 && rng.NextDouble() < 0.05) {
      rows = 0;  // occasional empty inner table
    } else {
      rows = static_cast<int>(rng.Range(2, options.max_rows_per_table));
    }
    for (int r = 0; r < rows; ++r) {
      std::int64_t id = t * 100 + r + 1;
      ids[static_cast<std::size_t>(t)].push_back(id);
      db::Row row;
      row.push_back(Value(id));
      if (t > 0) {
        const auto& parents = ids[static_cast<std::size_t>(t - 1)];
        // Occasionally dangling: no matching parent (dropped by an inner
        // join, never padded — padding comes from childless parents).
        std::int64_t p = parents.empty() || rng.NextDouble() < 0.1
                             ? (t - 1) * 100 + 9999
                             : parents[rng.Below(parents.size())];
        row.push_back(Value(p));
      }
      row.push_back(Value("c" + std::string(1, static_cast<char>(
                                    'a' + rng.Below(
                                              static_cast<std::uint64_t>(
                                                  eq_card))))));
      row.push_back(Value(rng.Range(0, range_card - 1)));
      row.push_back(Value(ZipfText(rng, 1, 4)));
      if (has_val) {
        row.push_back(Value(static_cast<double>(rng.Range(10, 99)) / 10.0));
      }
      table.AddRow(std::move(row));
    }
    inst.db.AddTable(std::move(table));
    if (t > 0) {
      inst.db.AddForeignKey({"t" + std::to_string(t), "p" + std::to_string(t),
                             "t" + std::to_string(t - 1),
                             "id" + std::to_string(t - 1)});
    }
  }

  // ---- The PSJ query (rendered as SQL so it round-trips through the
  // parser, exactly like index_io persistence does). ----
  std::string from;
  if (nested) {
    // t0 [LEFT] JOIN (t1 JOIN t2 JOIN ...).
    from = "t0 ";
    from += outer ? "LEFT JOIN " : "JOIN ";
    from += "(t1";
    for (int t = 2; t < num_tables; ++t) from += " JOIN t" + std::to_string(t);
    from += ")";
  } else {
    from = "t0";
    for (int t = 1; t < num_tables; ++t) from += " JOIN t" + std::to_string(t);
  }

  std::string select = "*";
  if (rng.NextDouble() < 0.3) {
    // Random column subset; always keep every text column so most
    // fragments carry vocabulary keywords.
    std::vector<std::string> cols;
    for (int t = 0; t < num_tables; ++t) {
      const Schema& schema = inst.db.table("t" + std::to_string(t)).schema();
      for (const Column& c : schema.columns()) {
        if (c.name.rfind("txt", 0) == 0 || rng.NextDouble() < 0.4) {
          cols.push_back(c.Qualified());
        }
      }
    }
    select.clear();
    for (const std::string& c : cols) {
      if (!select.empty()) select += ", ";
      select += c;
    }
  }

  std::vector<webapp::ParamBinding> bindings;
  std::string where;
  char url_field = 'a';
  auto add_param = [&](const std::string& param) {
    bindings.push_back({std::string(1, url_field++), param});
  };
  for (int j = 0; j < num_eq; ++j) {
    if (!where.empty()) where += " AND ";
    std::string param = "e" + std::to_string(j);
    where += eq_attrs[static_cast<std::size_t>(j)].column + " = $" + param;
    add_param(param);
  }
  for (int j = 0; j < num_range; ++j) {
    if (!where.empty()) where += " AND ";
    std::string lo = "r" + std::to_string(j) + "lo";
    std::string hi = "r" + std::to_string(j) + "hi";
    where += range_attrs[static_cast<std::size_t>(j)].column + " BETWEEN $" +
             lo + " AND $" + hi;
    add_param(lo);
    add_param(hi);
  }

  inst.app.name = "Fuzz" + std::to_string(seed);
  inst.app.uri = "fuzz.example/app";
  inst.app.query =
      sql::Parse("SELECT " + select + " FROM " + from + " WHERE " + where);
  inst.app.codec = webapp::QueryStringCodec(std::move(bindings));

  inst.summary = "seed=" + std::to_string(seed) +
                 " tables=" + std::to_string(num_tables) +
                 " eq=" + std::to_string(num_eq) +
                 " range=" + std::to_string(num_range) +
                 (outer ? " outer" : "") + (nested ? " nested" : " leftdeep") +
                 " rows=[";
  for (int t = 0; t < num_tables; ++t) {
    if (t > 0) inst.summary += ",";
    inst.summary += std::to_string(
        inst.db.table("t" + std::to_string(t)).row_count());
  }
  inst.summary += "]";
  return inst;
}

std::vector<std::string> SampleKeywords(util::SplitMix64& rng) {
  std::vector<std::string> keywords;
  int n = rng.NextDouble() < 0.7 ? 1 : 2;
  for (int i = 0; i < n; ++i) {
    double p = rng.NextDouble();
    if (p < 0.8) {
      keywords.push_back(Vocab()[VocabSampler().Sample(rng)]);
    } else if (p < 0.9) {
      // Numeric token: ids and range values are projected text too.
      keywords.push_back(std::to_string(rng.Below(130)));
    } else {
      keywords.push_back("zzznope");  // never indexed
    }
  }
  return keywords;
}

std::string DumpInstance(const RandomInstance& inst) {
  std::string out = "-- " + inst.summary + "\n";
  out += "-- query: " + inst.app.query.ToString() + "\n";
  for (const std::string& name : inst.db.TableNames()) {
    const Table& table = inst.db.table(name);
    out += name + "(" + table.schema().ToString() + ")\n";
    for (const db::Row& row : table.rows()) {
      std::string line;
      for (const Value& v : row) {
        if (!line.empty()) line += "\t";
        line += v.ToString();
      }
      out += "  " + line + "\n";
    }
  }
  return out;
}

}  // namespace dash::testing
