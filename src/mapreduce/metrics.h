// Per-job and aggregate metrics for the simulated cluster.
//
// Both real wall time and a modeled elapsed time are reported. The model
// charges the byte volumes each phase moves against 2012-era commodity
// hardware (the paper's testbed: 4 Xeon nodes, gigabit ethernet, local
// disks) plus fixed Hadoop job/task startup overheads, so laptop-scale runs
// still show the paper-scale *shape*: per-job overhead dominates tiny
// inputs (where stepwise wins) and shuffle volume dominates large inputs
// (where integrated wins).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dash::mr {

struct CostModel {
  double disk_bytes_per_sec = 80.0 * 1024 * 1024;    // sequential local disk
  double network_bytes_per_sec = 110.0 * 1024 * 1024;  // ~gigabit ethernet
  double per_job_overhead_sec = 6.0;                 // JVM/job startup
  double per_task_overhead_sec = 0.2;
  int num_nodes = 4;
  // Dataset down-scaling compensation: our laptop datasets are Table II
  // divided by ~1000 (7.4 MB of lineitem standing in for the paper's
  // 7.4 GB). Setting this to 1000 charges every byte as a thousand, so the
  // modeled time reproduces the paper-scale regime where shuffle volume —
  // not per-job startup — dominates. Leave at 1 to model the literal bytes.
  double data_scale_factor = 1.0;
};

struct JobMetrics {
  std::string job_name;

  std::uint64_t jobs = 1;  // >1 after SumMetrics over a workflow
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t task_retries = 0;  // re-executions after injected failures

  std::uint64_t map_input_records = 0;
  std::uint64_t map_input_bytes = 0;
  std::uint64_t map_output_records = 0;   // after optional combiner
  std::uint64_t map_output_bytes = 0;     // == shuffle volume
  std::uint64_t reduce_output_records = 0;
  std::uint64_t reduce_output_bytes = 0;

  double map_wall_sec = 0;
  double shuffle_wall_sec = 0;
  double reduce_wall_sec = 0;

  double TotalWallSec() const {
    return map_wall_sec + shuffle_wall_sec + reduce_wall_sec;
  }

  // Modeled elapsed time under `cost`: read input + write/shuffle/read
  // intermediate + write output, divided across nodes, plus startup
  // overheads.
  double ModeledSec(const CostModel& cost) const;

  void Accumulate(const JobMetrics& other);

  std::string ToString() const;
};

// Sums a sequence of job metrics (modeled time = sum of jobs, as MR jobs in
// one workflow run back-to-back).
JobMetrics SumMetrics(const std::vector<JobMetrics>& jobs,
                      std::string name = "total");

}  // namespace dash::mr
