#include "mapreduce/cluster.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/random.h"
#include "util/stopwatch.h"

namespace dash::mr {

namespace {

// Deterministic per-attempt failure decision ("did the node die before
// finishing this task attempt?"). Seeded by (cluster seed, job sequence,
// phase, task, attempt) so runs are reproducible.
bool AttemptFails(const ClusterConfig& config, std::uint64_t job_seq,
                  bool is_map, std::uint64_t task, std::uint64_t attempt) {
  if (config.task_failure_probability <= 0.0) return false;
  std::uint64_t seed = config.fault_seed;
  seed = seed * 1000003ULL + job_seq;
  seed = seed * 1000003ULL + (is_map ? 1 : 2);
  seed = seed * 1000003ULL + task;
  seed = seed * 1000003ULL + attempt;
  util::SplitMix64 rng(seed);
  return rng.NextDouble() < config.task_failure_probability;
}

// Counts the failed attempts before this task's first success; throws when
// the attempt budget is exhausted (speculative re-execution gave up).
std::uint64_t FailedAttempts(const ClusterConfig& config, std::uint64_t job_seq,
                             bool is_map, std::uint64_t task,
                             const std::string& job_name) {
  std::uint64_t failed = 0;
  while (failed < static_cast<std::uint64_t>(config.max_task_attempts) &&
         AttemptFails(config, job_seq, is_map, task, failed)) {
    ++failed;
  }
  if (failed >= static_cast<std::uint64_t>(config.max_task_attempts)) {
    throw std::runtime_error("job '" + job_name + "': " +
                             (is_map ? std::string("map") : std::string("reduce")) +
                             " task " + std::to_string(task) + " failed " +
                             std::to_string(failed) + " attempts");
  }
  return failed;
}

// FNV-1a over the key; stable across platforms so partition assignment (and
// therefore output order) is deterministic.
std::uint32_t PartitionOf(const std::string& key, int num_partitions) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<std::uint32_t>(h % static_cast<std::uint64_t>(num_partitions));
}

// Collects emissions into a per-partition buffer.
class PartitionedEmitter : public Emitter {
 public:
  explicit PartitionedEmitter(int num_partitions) : parts_(num_partitions) {}

  void Emit(std::string key, std::string value) override {
    int p = static_cast<int>(PartitionOf(key, static_cast<int>(parts_.size())));
    parts_[p].push_back(Record{std::move(key), std::move(value)});
  }

  std::vector<Dataset>& parts() { return parts_; }

 private:
  std::vector<Dataset> parts_;
};

// Collects emissions into a flat buffer.
class VectorEmitter : public Emitter {
 public:
  void Emit(std::string key, std::string value) override {
    records_.push_back(Record{std::move(key), std::move(value)});
  }
  Dataset& records() { return records_; }

 private:
  Dataset records_;
};

// Groups a sorted run of records by key and feeds each group to `reducer`.
void ReducePartition(Dataset&& partition, Reducer& reducer, Emitter& out) {
  // Stable sort by key keeps values in arrival (map-task, emission) order —
  // Hadoop's grouping semantics without secondary sort.
  std::stable_sort(partition.begin(), partition.end(),
                   [](const Record& a, const Record& b) { return a.key < b.key; });
  std::size_t i = 0;
  std::vector<std::string> values;
  while (i < partition.size()) {
    std::size_t j = i;
    values.clear();
    while (j < partition.size() && partition[j].key == partition[i].key) {
      values.push_back(std::move(partition[j].value));
      ++j;
    }
    reducer.Reduce(partition[i].key, values, out);
    i = j;
  }
}

}  // namespace

Cluster::Cluster(ClusterConfig config) : config_(config) {
  if (config_.num_nodes < 1) {
    throw std::invalid_argument("cluster needs at least one node");
  }
  if (config_.block_size_bytes == 0) {
    throw std::invalid_argument("block size must be positive");
  }
  // Persistent worker pool instead of per-phase std::thread spawning: a
  // job chain (crawl -> index -> update) launches many small phases, and
  // thread creation was a measurable fixed cost on each. The calling
  // thread participates in ParallelFor, so num_nodes - 1 workers give
  // exactly num_nodes-way task parallelism.
  if (config_.num_nodes > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(config_.num_nodes - 1));
  }
}

void Cluster::RunTasks(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (!pool_) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(static_cast<std::size_t>(n),
                     [&fn](std::size_t i) { fn(static_cast<int>(i)); });
}

std::vector<JobMetrics> Cluster::history() const {
  util::MutexLock lock(mutex_);
  return history_;
}

void Cluster::ClearHistory() {
  util::MutexLock lock(mutex_);
  history_.clear();
}

JobMetrics Cluster::Totals() const {
  util::MutexLock lock(mutex_);
  return SumMetrics(history_);
}

Dataset Cluster::Run(const JobConfig& job, const Dataset& input,
                     const MapperFactory& mapper, const ReducerFactory& reducer,
                     const ReducerFactory& combiner) {
  if (!mapper || !reducer) {
    throw std::invalid_argument("job '" + job.name +
                                "' needs a mapper and a reducer factory");
  }
  const int num_reducers = std::max(1, job.num_reduce_tasks);

  JobMetrics metrics;
  metrics.job_name = job.name;
  metrics.reduce_tasks = static_cast<std::uint64_t>(num_reducers);
  metrics.map_input_records = input.size();
  metrics.map_input_bytes = DatasetBytes(input);

  // ---- Split input into map tasks by simulated HDFS block size. ----
  std::vector<std::pair<std::size_t, std::size_t>> splits;  // [begin, end)
  {
    std::size_t begin = 0, bytes = 0;
    for (std::size_t i = 0; i < input.size(); ++i) {
      bytes += input[i].Bytes();
      if (bytes >= config_.block_size_bytes) {
        splits.emplace_back(begin, i + 1);
        begin = i + 1;
        bytes = 0;
      }
    }
    if (begin < input.size() || splits.empty()) {
      splits.emplace_back(begin, input.size());
    }
  }
  metrics.map_tasks = splits.size();

  std::uint64_t job_seq;
  {
    util::MutexLock lock(mutex_);
    job_seq = history_.size();
  }
  std::atomic<std::uint64_t> retries{0};

  // ---- Map phase. ----
  util::Stopwatch watch;
  std::vector<std::vector<Dataset>> task_parts(splits.size());
  RunTasks(static_cast<int>(splits.size()), [&](int t) {
    retries.fetch_add(FailedAttempts(config_, job_seq, /*is_map=*/true,
                                     static_cast<std::uint64_t>(t), job.name));
    auto [begin, end] = splits[static_cast<std::size_t>(t)];
    PartitionedEmitter emitter(num_reducers);
    std::unique_ptr<Mapper> m = mapper();
    for (std::size_t i = begin; i < end; ++i) m->Map(input[i], emitter);
    m->Finish(emitter);

    if (combiner) {
      // Combine each partition locally, preserving partition assignment.
      std::unique_ptr<Reducer> c = combiner();
      for (Dataset& part : emitter.parts()) {
        VectorEmitter combined;
        ReducePartition(std::move(part), *c, combined);
        part = std::move(combined.records());
      }
    }
    task_parts[static_cast<std::size_t>(t)] = std::move(emitter.parts());
  });
  metrics.map_wall_sec = watch.ElapsedSeconds();

  // ---- Shuffle: gather each reduce partition across map tasks. ----
  watch.Restart();
  std::vector<Dataset> partitions(static_cast<std::size_t>(num_reducers));
  for (auto& parts : task_parts) {
    for (int p = 0; p < num_reducers; ++p) {
      Dataset& src = parts[static_cast<std::size_t>(p)];
      Dataset& dst = partitions[static_cast<std::size_t>(p)];
      for (Record& r : src) {
        metrics.map_output_records += 1;
        metrics.map_output_bytes += r.Bytes();
        dst.push_back(std::move(r));
      }
      src.clear();
    }
  }
  metrics.shuffle_wall_sec = watch.ElapsedSeconds();

  // ---- Reduce phase. ----
  watch.Restart();
  std::vector<Dataset> outputs(static_cast<std::size_t>(num_reducers));
  RunTasks(num_reducers, [&](int p) {
    retries.fetch_add(FailedAttempts(config_, job_seq, /*is_map=*/false,
                                     static_cast<std::uint64_t>(p), job.name));
    VectorEmitter emitter;
    std::unique_ptr<Reducer> r = reducer();
    ReducePartition(std::move(partitions[static_cast<std::size_t>(p)]), *r,
                    emitter);
    outputs[static_cast<std::size_t>(p)] = std::move(emitter.records());
  });
  metrics.reduce_wall_sec = watch.ElapsedSeconds();

  metrics.task_retries = retries.load();
  Dataset result;
  for (Dataset& out : outputs) {
    for (Record& r : out) {
      metrics.reduce_output_records += 1;
      metrics.reduce_output_bytes += r.Bytes();
      result.push_back(std::move(r));
    }
  }
  {
    util::MutexLock lock(mutex_);
    history_.push_back(metrics);
  }
  return result;
}

}  // namespace dash::mr
