// In-process MapReduce cluster.
//
// Models the parts of Hadoop the paper's algorithms exercise:
//   * input is split into map tasks by (simulated HDFS) block size;
//   * map tasks run in parallel on `num_nodes` worker threads, each with a
//     fresh Mapper instance, partitioning output by hash(key) % R;
//   * an optional Combiner runs over each map task's local output;
//   * the shuffle sorts and groups each reduce partition by key;
//   * reduce tasks run in parallel, each with a fresh Reducer instance.
//
// Output is deterministic: records are ordered by (partition, key, value
// emission order), independent of thread scheduling. Every phase's record
// and byte volumes are recorded in JobMetrics — the currency of the
// stepwise-vs-integrated comparison (paper Section V, Figure 10).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/metrics.h"
#include "mapreduce/record.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dash::mr {

// Receives records emitted by a Mapper or Reducer.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(std::string key, std::string value) = 0;
};

// One map task instance; Map is called once per input record.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(const Record& record, Emitter& out) = 0;
  // Called after the task's last record; default no-op. Lets mappers batch.
  virtual void Finish(Emitter& out) { (void)out; }
};

// One reduce (or combine) task instance; Reduce is called once per distinct
// key with all values for that key. Values arrive in deterministic order
// (emission order within each map task, map tasks in split order).
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const std::string& key,
                      const std::vector<std::string>& values,
                      Emitter& out) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

struct JobConfig {
  std::string name = "job";
  int num_reduce_tasks = 4;
};

struct ClusterConfig {
  int num_nodes = 4;                        // worker threads
  std::size_t block_size_bytes = 1 << 20;   // map split granularity
  CostModel cost;                           // for modeled elapsed time

  // Fault injection: each task attempt fails with this probability
  // (deterministically, from fault_seed), and the cluster re-executes it —
  // MapReduce's defining fault-tolerance behaviour. Tasks are functional
  // (fresh Mapper/Reducer per attempt, output replaces any partial
  // attempt), so job output is bit-identical with and without failures.
  double task_failure_probability = 0.0;
  std::uint64_t fault_seed = 1;
  int max_task_attempts = 4;  // exceeded => the job throws
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  // Runs one MR job. `combiner` may be null. Returns the reduce output and
  // appends this job's metrics to history(). Safe to call from several
  // threads (each job's tasks still fan out over the cluster's own pool);
  // concurrent jobs append to the history in completion order.
  Dataset Run(const JobConfig& job, const Dataset& input,
              const MapperFactory& mapper, const ReducerFactory& reducer,
              const ReducerFactory& combiner = nullptr);

  const ClusterConfig& config() const { return config_; }

  // Snapshot of the per-job metrics since the last ClearHistory().
  std::vector<JobMetrics> history() const DASH_EXCLUDES(mutex_);
  void ClearHistory() DASH_EXCLUDES(mutex_);

  // Sum of all job metrics since the last ClearHistory().
  JobMetrics Totals() const DASH_EXCLUDES(mutex_);

 private:
  // Runs fn(0..n-1) across the cluster's worker pool (serial when the
  // cluster has a single node).
  void RunTasks(int n, const std::function<void(int)>& fn);

  ClusterConfig config_;
  mutable util::Mutex mutex_;
  std::vector<JobMetrics> history_ DASH_GUARDED_BY(mutex_);
  // num_nodes - 1 workers; the thread calling Run() acts as the last node
  // (ThreadPool::ParallelFor always drains on the caller too). Null when
  // num_nodes == 1.
  std::unique_ptr<util::ThreadPool> pool_;
};

// Convenience mappers/reducers used by several job chains.

// Emits each input record unchanged.
class IdentityMapper : public Mapper {
 public:
  void Map(const Record& record, Emitter& out) override {
    out.Emit(record.key, record.value);
  }
};

// Emits each (key, value) pair of the group unchanged.
class IdentityReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    for (const std::string& v : values) out.Emit(key, v);
  }
};

}  // namespace dash::mr
