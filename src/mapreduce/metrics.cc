#include "mapreduce/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace dash::mr {

double JobMetrics::ModeledSec(const CostModel& cost) const {
  const double nodes = std::max(1, cost.num_nodes);
  const double f = cost.data_scale_factor;
  // Map phase: read input splits from disk, write partitioned intermediate
  // output to local disk.
  double map_io = (static_cast<double>(map_input_bytes) +
                   static_cast<double>(map_output_bytes)) *
                  f / cost.disk_bytes_per_sec;
  // Shuffle: intermediate data crosses the network once ((nodes-1)/nodes of
  // it, on average) and is re-read/merged from disk at reducers.
  double shuffle_net = static_cast<double>(map_output_bytes) * f *
                       (nodes - 1.0) / nodes / cost.network_bytes_per_sec;
  double shuffle_disk =
      static_cast<double>(map_output_bytes) * f / cost.disk_bytes_per_sec;
  // Reduce phase: write final output.
  double reduce_io =
      static_cast<double>(reduce_output_bytes) * f / cost.disk_bytes_per_sec;

  double parallel_work = (map_io + shuffle_net + shuffle_disk + reduce_io) / nodes;
  double overhead =
      cost.per_job_overhead_sec * static_cast<double>(jobs) +
      cost.per_task_overhead_sec *
          static_cast<double>(map_tasks + reduce_tasks) / nodes;
  return parallel_work + overhead;
}

void JobMetrics::Accumulate(const JobMetrics& other) {
  jobs += other.jobs;
  map_tasks += other.map_tasks;
  task_retries += other.task_retries;
  reduce_tasks += other.reduce_tasks;
  map_input_records += other.map_input_records;
  map_input_bytes += other.map_input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  reduce_output_records += other.reduce_output_records;
  reduce_output_bytes += other.reduce_output_bytes;
  map_wall_sec += other.map_wall_sec;
  shuffle_wall_sec += other.shuffle_wall_sec;
  reduce_wall_sec += other.reduce_wall_sec;
}

std::string JobMetrics::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s: map %llu rec / %s -> shuffle %llu rec / %s -> out %llu rec / %s "
      "(wall %.3fs)",
      job_name.c_str(), static_cast<unsigned long long>(map_input_records),
      util::HumanBytes(map_input_bytes).c_str(),
      static_cast<unsigned long long>(map_output_records),
      util::HumanBytes(map_output_bytes).c_str(),
      static_cast<unsigned long long>(reduce_output_records),
      util::HumanBytes(reduce_output_bytes).c_str(), TotalWallSec());
  return buf;
}

JobMetrics SumMetrics(const std::vector<JobMetrics>& jobs, std::string name) {
  JobMetrics total;
  total.job_name = std::move(name);
  total.jobs = 0;
  for (const JobMetrics& j : jobs) total.Accumulate(j);
  return total;
}

}  // namespace dash::mr
