// The (key, value) record type flowing through the MapReduce substrate.
//
// Everything is byte strings, as in Hadoop streaming: structured rows are
// encoded with util::EncodeFields. Keeping serialization explicit is what
// lets the cluster account for the shuffle bytes that the paper's
// stepwise-vs-integrated comparison hinges on.
#pragma once

#include <string>
#include <vector>

namespace dash::mr {

struct Record {
  std::string key;
  std::string value;

  std::size_t Bytes() const { return key.size() + value.size(); }

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

using Dataset = std::vector<Record>;

inline std::size_t DatasetBytes(const Dataset& data) {
  std::size_t total = 0;
  for (const Record& r : data) total += r.Bytes();
  return total;
}

}  // namespace dash::mr
