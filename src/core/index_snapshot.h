// The immutable serving artifact and its publication point.
//
// Every serving layer (DashEngine, ShardedEngine, CachingEngine,
// UpdatableIndex, MultiAppEngine, index_io) reads index state through one
// type: an IndexSnapshot bundling the fragment catalog, the finalized
// inverted fragment index, the fragment graph, the web-application info /
// query-string codec, and a generation id. Snapshots are immutable after
// construction and held by shared_ptr<const IndexSnapshot>, so
//
//   * readers acquire a snapshot once per query (one shared_ptr copy) and
//     then run entirely lock-free — a search can never observe a torn
//     index, only a whole snapshot from before or after an update;
//   * builders (UpdatableIndex, a reload) prepare the next snapshot off to
//     the side and hand it to a SnapshotPublisher, whose Publish() is an
//     atomic pointer swap — writers never block readers;
//   * caches key validity on the generation id: generations come from one
//     process-wide counter, so a (generation, query) pair identifies its
//     result set uniquely across all engines and no manual invalidation
//     call is needed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fragment_graph.h"
#include "core/inverted_index.h"
#include "core/topk_search.h"
#include "sql/psj_query.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "webapp/query_string.h"

namespace dash::core {

class IndexSnapshot;
using SnapshotPtr = std::shared_ptr<const IndexSnapshot>;

// Next process-wide generation id (strictly increasing, starting at 1,
// never reused — not per publisher, so generations of unrelated engines
// never collide in a shared cache).
std::uint64_t NextSnapshotGeneration();

class IndexSnapshot {
 public:
  // Builds a snapshot from a finalized index build. `selection` must match
  // the catalog's identifier layout; the two-argument form derives it from
  // the application's crawling query. The fragment graph is constructed
  // here — after Create returns, the snapshot is fully self-contained.
  static SnapshotPtr Create(webapp::WebAppInfo app, FragmentIndexBuild build);
  static SnapshotPtr Create(webapp::WebAppInfo app,
                            std::vector<sql::SelectionAttribute> selection,
                            FragmentIndexBuild build);
  // App-less snapshot (no URL formulation; Search leaves `url` empty), for
  // updaters constructed from a bare crawling query.
  static SnapshotPtr CreateWithoutApp(const sql::PsjQuery& query,
                                      FragmentIndexBuild build);

  std::uint64_t generation() const { return generation_; }
  bool has_app() const { return has_app_; }
  // Valid only when has_app().
  const webapp::WebAppInfo& app() const { return app_; }
  const FragmentIndexBuild& build() const { return build_; }
  const FragmentCatalog& catalog() const { return build_.catalog; }
  const InvertedFragmentIndex& index() const { return build_.index; }
  const FragmentGraph& graph() const { return graph_; }
  const std::vector<sql::SelectionAttribute>& selection() const {
    return selection_;
  }

  // Top-k search against this snapshot (Algorithm 1; see topk_search.h for
  // the parameters). Lock-free and safe from any number of threads.
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   int k, std::uint64_t min_page_words,
                                   std::size_t max_seeds = 0) const;

 private:
  IndexSnapshot(webapp::WebAppInfo app, bool has_app,
                std::vector<sql::SelectionAttribute> selection,
                FragmentIndexBuild build);

  webapp::WebAppInfo app_;
  bool has_app_ = false;
  std::vector<sql::SelectionAttribute> selection_;
  FragmentIndexBuild build_;
  FragmentGraph graph_;
  std::uint64_t generation_ = 0;
};

// The swap point between one builder and any number of readers. Current()
// costs one shared_ptr copy under a lightweight mutex (no search work ever
// runs inside the lock), Publish() is the atomic swap. Generations must
// increase monotonically across publications — feeding a stale snapshot
// back is a logic error and throws.
class SnapshotPublisher {
 public:
  SnapshotPublisher() = default;
  explicit SnapshotPublisher(SnapshotPtr initial);

  // The most recently published snapshot (null before the first Publish).
  SnapshotPtr Current() const;

  // Atomically replaces the served snapshot. In-flight readers keep their
  // acquired snapshot alive via its reference count; new readers see
  // `next` immediately.
  void Publish(SnapshotPtr next);

  // Generation of the current snapshot; 0 when nothing is published.
  std::uint64_t CurrentGeneration() const;

 private:
  mutable util::Mutex mutex_;
  SnapshotPtr current_ DASH_GUARDED_BY(mutex_);
};

}  // namespace dash::core
