#include "core/topk_search.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/tokenizer.h"

namespace dash::core {

namespace {

// A pending db-page in the priority queue (expanded entries only; seeds —
// single-fragment pages — stay in a lightweight sorted array and are
// materialized lazily, which keeps hot-keyword queries with tens of
// thousands of relevant fragments cheap).
struct Entry {
  std::vector<FragmentHandle> members;   // ascending
  std::vector<std::uint64_t> occ;        // per queried keyword
  std::uint64_t words = 0;
  double score = 0;
};

// Queue order: score descending; ties broken by smaller member list
// (lexicographically) so runs are deterministic.
struct EntryLess {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.score != b.score) return a.score < b.score;
    return a.members > b.members;
  }
};

std::string MemberKey(const std::vector<FragmentHandle>& members) {
  std::string key;
  key.reserve(members.size() * sizeof(FragmentHandle));
  for (FragmentHandle m : members) {
    key.append(reinterpret_cast<const char*>(&m), sizeof(m));
  }
  return key;
}

// One query term's postings re-sorted by fragment handle for O(log df)
// occurrence lookups during expansion scoring.
struct TermPostings {
  double idf = 0;
  std::vector<Posting> by_frag;  // sorted by fragment

  std::uint32_t OccurrencesIn(FragmentHandle f) const {
    auto it = std::lower_bound(
        by_frag.begin(), by_frag.end(), f,
        [](const Posting& p, FragmentHandle h) { return p.fragment < h; });
    if (it == by_frag.end() || it->fragment != f) return 0;
    return it->occurrences;
  }
};

// A not-yet-materialized single-fragment entry.
struct Seed {
  double score = 0;
  FragmentHandle fragment = 0;
};

}  // namespace

TopKSearcher::TopKSearcher(const InvertedFragmentIndex& index,
                           const FragmentCatalog& catalog,
                           const FragmentGraph& graph,
                           std::vector<sql::SelectionAttribute> selection,
                           const webapp::WebAppInfo* app, IdfProvider idf)
    : index_(index),
      catalog_(catalog),
      graph_(graph),
      selection_(std::move(selection)),
      app_(app),
      idf_(std::move(idf)) {}

std::vector<SearchResult> TopKSearcher::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words, std::size_t max_seeds) const {
  // Normalize the query with the indexing tokenizer and drop duplicates.
  std::vector<std::string> terms;
  for (const std::string& raw : keywords) {
    for (std::string& tok : util::Tokenize(raw)) {
      if (std::find(terms.begin(), terms.end(), tok) == terms.end()) {
        terms.push_back(std::move(tok));
      }
    }
  }
  std::vector<SearchResult> results;
  if (terms.empty() || k <= 0) return results;

  // Per-term IDF and fragment-sorted postings (line 1 of Algorithm 1).
  std::vector<TermPostings> postings(terms.size());
  std::vector<FragmentHandle> relevant;
  for (std::size_t t = 0; t < terms.size(); ++t) {
    postings[t].idf = idf_ ? idf_(terms[t]) : index_.Idf(terms[t]);
    auto list = index_.Lookup(terms[t]);
    postings[t].by_frag.assign(list.begin(), list.end());
    std::sort(postings[t].by_frag.begin(), postings[t].by_frag.end(),
              [](const Posting& a, const Posting& b) {
                return a.fragment < b.fragment;
              });
    for (const Posting& p : postings[t].by_frag) {
      relevant.push_back(p.fragment);
    }
  }
  std::sort(relevant.begin(), relevant.end());
  relevant.erase(std::unique(relevant.begin(), relevant.end()),
                 relevant.end());

  auto score_of = [&postings](const std::vector<std::uint64_t>& occ,
                              std::uint64_t words) {
    if (words == 0) return 0.0;
    double score = 0;
    for (std::size_t t = 0; t < occ.size(); ++t) {
      score += postings[t].idf * static_cast<double>(occ[t]) /
               static_cast<double>(words);
    }
    return score;
  };

  // Seed list: one prospective entry per relevant fragment (line 2),
  // sorted by score descending (ties: smaller handle first, matching
  // EntryLess on single-member lists).
  std::vector<Seed> seeds;
  seeds.reserve(relevant.size());
  std::vector<std::uint64_t> seed_occ(terms.size());
  for (FragmentHandle f : relevant) {
    for (std::size_t t = 0; t < terms.size(); ++t) {
      seed_occ[t] = postings[t].OccurrencesIn(f);
    }
    seeds.push_back(Seed{score_of(seed_occ, catalog_.keyword_total(f)), f});
  }
  std::sort(seeds.begin(), seeds.end(), [](const Seed& a, const Seed& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.fragment < b.fragment;
  });
  if (max_seeds > 0 && seeds.size() > max_seeds) {
    seeds.resize(max_seeds);  // search-scope cap; see header
  }

  auto materialize = [&](const Seed& seed) {
    Entry e;
    e.members = {seed.fragment};
    e.occ.resize(terms.size());
    for (std::size_t t = 0; t < terms.size(); ++t) {
      e.occ[t] = postings[t].OccurrencesIn(seed.fragment);
    }
    e.words = catalog_.keyword_total(seed.fragment);
    e.score = seed.score;
    return e;
  };

  std::priority_queue<Entry, std::vector<Entry>, EntryLess> queue;
  std::unordered_set<FragmentHandle> consumed;  // seeds absorbed by merges
  std::unordered_set<std::string> visited;      // expanded sets already queued
  std::unordered_set<FragmentHandle> used;      // fragments already output
  std::size_t next_seed = 0;

  while (static_cast<int>(results.size()) < k) {
    // Dequeue the globally best pending entry: compare the best unpopped
    // seed with the top of the expanded-entry queue.
    while (next_seed < seeds.size() &&
           consumed.contains(seeds[next_seed].fragment)) {
      ++next_seed;  // "removed from Q" by an earlier expansion
    }
    Entry head;
    if (next_seed < seeds.size() &&
        (queue.empty() || seeds[next_seed].score > queue.top().score ||
         (seeds[next_seed].score == queue.top().score &&
          std::vector<FragmentHandle>{seeds[next_seed].fragment} <
              queue.top().members))) {
      head = materialize(seeds[next_seed]);
      ++next_seed;
    } else if (!queue.empty()) {
      head = queue.top();
      queue.pop();
    } else {
      break;  // Q exhausted
    }

    // Db-pages sharing fragments with an already-returned page "for sure
    // have overlapped contents, and they can be easily identified to be
    // excluded from search results" (paper Section IV).
    bool overlaps_output = false;
    for (FragmentHandle m : head.members) {
      if (used.contains(m)) {
        overlaps_output = true;
        break;
      }
    }
    if (overlaps_output) continue;

    // Candidate neighbors (fragment graph) not already in the page.
    std::vector<FragmentHandle> candidates;
    if (head.words < min_page_words) {
      for (FragmentHandle m : head.members) {
        for (FragmentHandle n : graph_.Neighbors(m)) {
          if (!std::binary_search(head.members.begin(), head.members.end(),
                                  n) &&
              std::find(candidates.begin(), candidates.end(), n) ==
                  candidates.end()) {
            candidates.push_back(n);
          }
        }
      }
    }

    if (candidates.empty()) {
      // Not expandable (size reached or no fragments available): output.
      SearchResult r;
      r.fragments = head.members;
      r.score = head.score;
      r.size_words = head.words;
      // Reverse query string parsing: equality values from the identifier
      // prefix, range bounds from the min/max over the member fragments.
      const db::Row& first = catalog_.id(head.members.front());
      for (std::size_t d = 0; d < selection_.size(); ++d) {
        const sql::SelectionAttribute& attr = selection_[d];
        if (!attr.is_range) {
          r.params[attr.eq_parameter] = first[d].ToString();
          continue;
        }
        db::Value lo = first[d], hi = first[d];
        for (FragmentHandle m : head.members) {
          const db::Value& v = catalog_.id(m)[d];
          if (v < lo) lo = v;
          if (hi < v) hi = v;
        }
        if (!attr.min_parameter.empty()) {
          r.params[attr.min_parameter] = lo.ToString();
        }
        if (!attr.max_parameter.empty()) {
          r.params[attr.max_parameter] = hi.ToString();
        }
      }
      if (app_ != nullptr) {
        std::map<std::string, std::string> url_params(r.params.begin(),
                                                      r.params.end());
        r.url = app_->UrlFor(url_params);
      }
      for (FragmentHandle m : head.members) used.insert(m);
      results.push_back(std::move(r));
      continue;
    }

    // Expand by the best single neighbor, favoring relevant fragments
    // ("whenever possible, relevant db-page fragments are favored").
    bool best_relevant = false;
    double best_score = -1;
    FragmentHandle best = 0;
    std::vector<std::uint64_t> best_occ;
    std::uint64_t best_words = 0;
    bool have_best = false;
    for (FragmentHandle c : candidates) {
      std::vector<std::uint64_t> occ = head.occ;
      bool is_relevant = false;
      for (std::size_t t = 0; t < terms.size(); ++t) {
        std::uint32_t o = postings[t].OccurrencesIn(c);
        if (o != 0) {
          occ[t] += o;
          is_relevant = true;
        }
      }
      std::uint64_t words = head.words + catalog_.keyword_total(c);
      double score = score_of(occ, words);
      bool better;
      if (is_relevant != best_relevant) {
        better = is_relevant;
      } else if (score != best_score) {
        better = score > best_score;
      } else {
        better = c < best;
      }
      if (!have_best || better) {
        have_best = true;
        best_relevant = is_relevant;
        best_score = score;
        best = c;
        best_occ = std::move(occ);
        best_words = words;
      }
    }

    Entry expanded;
    expanded.members = head.members;
    expanded.members.insert(
        std::upper_bound(expanded.members.begin(), expanded.members.end(),
                         best),
        best);
    expanded.occ = std::move(best_occ);
    expanded.words = best_words;
    expanded.score = best_score;
    if (best_relevant) consumed.insert(best);
    if (visited.insert(MemberKey(expanded.members)).second) {
      queue.push(std::move(expanded));
    }
  }
  return results;
}

}  // namespace dash::core
