#include "core/topk_search.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "util/tokenizer.h"

namespace dash::core {

namespace {

// Heavy state of a pending db-page, held behind a pointer so heap sifts
// move 32-byte entries instead of three vectors. Payloads are recycled
// through a free list: steady-state expansion does no vector allocation,
// it reuses the capacity of dead entries.
struct Payload {
  std::vector<FragmentHandle> members;   // ascending
  // Expansion frontier: graph neighbors of `members` that are not members
  // themselves, kept sorted. Maintained incrementally (O(degree) per
  // expansion) instead of being recollected from every member's adjacency
  // list on each pop, which costs O(|members| * degree) on deep pages.
  std::vector<FragmentHandle> frontier;  // ascending
  std::vector<std::uint64_t> occ;        // per queried keyword
};

// A pending db-page in the priority queue (expanded entries only; seeds —
// single-fragment pages — stay in a lightweight heap and are materialized
// lazily, which keeps hot-keyword queries with tens of thousands of
// relevant fragments cheap).
struct Entry {
  double score = 0;
  std::uint64_t set_hash = 0;            // sum of MixHandle over members
  std::uint64_t words = 0;
  Payload* p = nullptr;                  // owned by the search's arena
};

// Queue order: score descending; ties broken by smaller member list
// (lexicographically) so runs are deterministic.
struct EntryLess {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.score != b.score) return a.score < b.score;
    return a.p->members > b.p->members;
  }
};

// Per-handle mixer (splitmix64 finalizer). A member set's fingerprint is
// the *sum* of its handles' mixes, so it updates in O(1) per expansion
// and is independent of growth order.
inline std::uint64_t MixHandle(FragmentHandle f) {
  std::uint64_t x = static_cast<std::uint64_t>(f) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Set of already-queued member sets. Open-addressed over (fingerprint,
// span into a shared member pool): an insert costs one probe run and an
// amortized pool append — no per-insert node or key allocation, and
// equality is exact (element compare on fingerprint match), so the dedup
// behaves identically to keying on the full member list.
class VisitedSet {
 public:
  VisitedSet() : slots_(1024) {}

  // Forget all recorded sets but keep the table and pool capacity, so a
  // reused instance runs allocation-free once warmed up. O(1): slots from
  // earlier queries are invalidated by the generation stamp, not by
  // clearing the (potentially large) table.
  void Reset() {
    ++gen_;
    pool_.clear();
    count_ = 0;
  }

  // Records `members` (fingerprint `hash`); false if already present.
  bool Insert(std::uint64_t hash,
              const std::vector<FragmentHandle>& members) {
    if ((count_ + 1) * 2 > slots_.size()) Grow();
    std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {
        s = Slot{hash, static_cast<std::uint32_t>(pool_.size()),
                 static_cast<std::uint32_t>(members.size()), gen_};
        pool_.insert(pool_.end(), members.begin(), members.end());
        ++count_;
        return true;
      }
      if (s.hash == hash && s.length == members.size() &&
          std::equal(members.begin(), members.end(),
                     pool_.begin() + s.offset)) {
        return false;
      }
    }
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
    std::uint64_t gen = 0;  // slot is live iff gen == VisitedSet::gen_
  };

  void Grow() {
    std::vector<Slot> next(slots_.size() * 2);
    std::size_t mask = next.size() - 1;
    for (const Slot& s : slots_) {
      if (s.gen != gen_) continue;
      std::size_t i = s.hash & mask;
      while (next[i].gen == gen_) i = (i + 1) & mask;
      next[i] = s;
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::vector<FragmentHandle> pool_;
  std::size_t count_ = 0;
  std::uint64_t gen_ = 1;  // slots start at gen 0 == empty
};

// One query term's postings: IDF plus a *borrowed* fragment-sorted span
// from the index's flat pool (no per-query copy or re-sort — the index
// precomputes the fragment order at Finalize).
struct TermPostings {
  double idf = 0;
  std::span<const Posting> by_frag;  // sorted by fragment
  // For terms whose list covers a large share of the catalog the
  // expansion loop probes occurrences constantly; a dense frag->occ
  // array turns each probe into one load instead of a binary search.
  std::vector<std::uint32_t> dense;

  std::uint32_t OccurrencesIn(FragmentHandle f) const {
    if (!dense.empty()) return dense[f];
    auto it = std::lower_bound(
        by_frag.begin(), by_frag.end(), f,
        [](const Posting& p, FragmentHandle h) { return p.fragment < h; });
    if (it == by_frag.end() || it->fragment != f) return 0;
    return it->occurrences;
  }
};

// A not-yet-materialized single-fragment entry.
struct Seed {
  double score = 0;
  FragmentHandle fragment = 0;
};

// Heap comparator yielding pops in (score desc, fragment asc) order — the
// exact order the old fully-sorted seed array delivered, without the
// O(df log df) per-query sort.
struct SeedPopLater {
  bool operator()(const Seed& a, const Seed& b) const {
    if (a.score != b.score) return a.score < b.score;
    return a.fragment > b.fragment;
  }
};

// Lexicographic {f} < members, allocation-free.
inline bool SingletonLess(FragmentHandle f,
                          const std::vector<FragmentHandle>& members) {
  return f < members.front() ||
         (f == members.front() && members.size() > 1);
}

}  // namespace

TopKSearcher::TopKSearcher(const InvertedFragmentIndex& index,
                           const FragmentCatalog& catalog,
                           const FragmentGraph& graph,
                           std::vector<sql::SelectionAttribute> selection,
                           const webapp::WebAppInfo* app, IdfProvider idf,
                           SeedSpanSource seed_spans)
    : index_(index),
      catalog_(catalog),
      graph_(graph),
      selection_(std::move(selection)),
      app_(app),
      idf_(std::move(idf)),
      seed_spans_(std::move(seed_spans)) {}

std::vector<SearchResult> TopKSearcher::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words, std::size_t max_seeds) const {
  // Normalize the query with the indexing tokenizer, resolve each token to
  // its interned TermId once, and drop duplicates.
  std::vector<std::string> terms;
  std::vector<util::TermId> term_ids;
  for (const std::string& raw : keywords) {
    for (std::string& tok : util::Tokenize(raw)) {
      if (std::find(terms.begin(), terms.end(), tok) == terms.end()) {
        term_ids.push_back(index_.FindTerm(tok));
        terms.push_back(std::move(tok));
      }
    }
  }
  std::vector<SearchResult> results;
  if (terms.empty() || k <= 0) return results;
  static const std::vector<FragmentHandle> kNoCandidates;

  // Per-term IDF and fragment-sorted postings (line 1 of Algorithm 1),
  // borrowed straight from the index pools.
  std::vector<TermPostings> postings(terms.size());
  std::vector<FragmentHandle> relevant;
  std::size_t relevant_cap = 0;
  for (std::size_t t = 0; t < terms.size(); ++t) {
    // IDF always comes from the full index (or the explicit override) —
    // a restricted seed span must not shrink document frequencies.
    postings[t].idf = idf_ ? idf_(terms[t]) : index_.IdfId(term_ids[t]);
    postings[t].by_frag = seed_spans_
                              ? seed_spans_(term_ids[t])
                              : index_.PostingsByFragment(term_ids[t]);
    relevant_cap += postings[t].by_frag.size();
    if (postings[t].by_frag.size() * 8 >= catalog_.size()) {
      postings[t].dense.assign(catalog_.size(), 0);
      for (const Posting& p : postings[t].by_frag) {
        postings[t].dense[p.fragment] = p.occurrences;
      }
    }
  }
  relevant.reserve(relevant_cap);
  for (const TermPostings& tp : postings) {
    for (const Posting& p : tp.by_frag) relevant.push_back(p.fragment);
  }
  if (postings.size() > 1) {
    // Each span is already fragment-sorted; only the multi-term union
    // needs the sort+dedup.
    std::sort(relevant.begin(), relevant.end());
    relevant.erase(std::unique(relevant.begin(), relevant.end()),
                   relevant.end());
  }

  auto score_of = [&postings](const std::vector<std::uint64_t>& occ,
                              std::uint64_t words) {
    if (words == 0) return 0.0;
    double score = 0;
    for (std::size_t t = 0; t < occ.size(); ++t) {
      score += postings[t].idf * static_cast<double>(occ[t]) /
               static_cast<double>(words);
    }
    return score;
  };

  // Seed heap: one prospective entry per relevant fragment (line 2),
  // popped lazily in score-descending order (ties: smaller handle first,
  // matching EntryLess on single-member lists). Building the heap is O(n)
  // where the old sorted array cost O(n log n) per query.
  std::vector<Seed> seeds;
  seeds.reserve(relevant.size());
  std::vector<std::uint64_t> seed_occ(terms.size());
  // `relevant` and every by_frag span are fragment-ascending, so seed
  // occurrences come from a linear merge-walk (one cursor per term)
  // instead of a binary search per (fragment, term) pair.
  std::vector<std::size_t> cursor(terms.size(), 0);
  for (FragmentHandle f : relevant) {
    for (std::size_t t = 0; t < terms.size(); ++t) {
      const auto& by_frag = postings[t].by_frag;
      std::size_t& c = cursor[t];
      while (c < by_frag.size() && by_frag[c].fragment < f) ++c;
      seed_occ[t] =
          c < by_frag.size() && by_frag[c].fragment == f ? by_frag[c].occurrences
                                                         : 0;
    }
    seeds.push_back(Seed{score_of(seed_occ, catalog_.keyword_total(f)), f});
  }
  std::make_heap(seeds.begin(), seeds.end(), SeedPopLater{});
  // Search-scope cap (see header): equivalent to truncating the sorted
  // seed array — only the first `seed_budget` pops are considered, and
  // consumed seeds count against the budget exactly as truncation did.
  std::size_t seed_budget =
      max_seeds > 0 ? std::min(max_seeds, seeds.size()) : seeds.size();
  std::size_t heap_size = seeds.size();
  std::size_t seeds_popped = 0;

  auto drop_top_seed = [&] {
    std::pop_heap(seeds.begin(),
                  seeds.begin() + static_cast<std::ptrdiff_t>(heap_size),
                  SeedPopLater{});
    --heap_size;
    ++seeds_popped;
  };

  // Payload arena + free list (see Payload). Thread-local so consecutive
  // queries on a thread reuse warmed-up buffer capacity; every payload
  // acquired during a search is released by the time it returns (dead
  // heads immediately, queue survivors in the sweep before the return),
  // so the free list stays consistent across calls.
  static thread_local std::vector<std::unique_ptr<Payload>> payload_arena;
  static thread_local std::vector<Payload*> free_payloads;
  auto acquire_payload = [&]() -> Payload* {
    if (!free_payloads.empty()) {
      Payload* p = free_payloads.back();
      free_payloads.pop_back();
      p->members.clear();
      p->frontier.clear();
      return p;
    }
    payload_arena.push_back(std::make_unique<Payload>());
    return payload_arena.back().get();
  };
  auto release_payload = [&](Payload* p) { free_payloads.push_back(p); };

  auto materialize = [&](const Seed& seed) {
    Entry e;
    e.p = acquire_payload();
    e.p->members.push_back(seed.fragment);
    e.p->occ.resize(terms.size());
    for (std::size_t t = 0; t < terms.size(); ++t) {
      e.p->occ[t] = postings[t].OccurrencesIn(seed.fragment);
    }
    e.set_hash = MixHandle(seed.fragment);
    for (FragmentHandle n : graph_.Neighbors(seed.fragment)) {
      if (n == seed.fragment) continue;
      auto pos = std::lower_bound(e.p->frontier.begin(), e.p->frontier.end(),
                                  n);
      if (pos == e.p->frontier.end() || *pos != n) {
        e.p->frontier.insert(pos, n);
      }
    }
    e.words = catalog_.keyword_total(seed.fragment);
    e.score = seed.score;
    return e;
  };

  // Expanded-entry max-heap. Hand-rolled over a vector (same layout a
  // std::priority_queue would produce) so the head can be *moved* out —
  // top()+pop() on priority_queue forces a deep Entry copy per pop.
  std::vector<Entry> queue;
  auto queue_top = [&]() -> const Entry& { return queue.front(); };
  auto queue_pop = [&] {
    std::pop_heap(queue.begin(), queue.end(), EntryLess{});
    Entry e = std::move(queue.back());
    queue.pop_back();
    return e;
  };
  auto queue_push = [&](Entry e) {
    queue.push_back(std::move(e));
    std::push_heap(queue.begin(), queue.end(), EntryLess{});
  };
  std::unordered_set<FragmentHandle> consumed;  // seeds absorbed by merges
  static thread_local VisitedSet visited;       // expanded sets already queued
  visited.Reset();
  // Fragments already output, as a stamp array: the overlap test below
  // runs per member per pop, so it must be a flat load; stamping makes
  // the per-query reset O(1) instead of an O(catalog) clear.
  static thread_local std::vector<std::uint64_t> used_stamp;
  static thread_local std::uint64_t used_gen = 0;
  ++used_gen;
  if (used_stamp.size() < catalog_.size()) used_stamp.resize(catalog_.size());
  consumed.reserve(256);
  // Scratch buffers reused across queue pops (expansion scoring).
  std::vector<std::uint64_t> cand_occ, best_occ;
  while (static_cast<int>(results.size()) < k) {
    // Drop seeds absorbed by an earlier expansion ("removed from Q").
    while (seeds_popped < seed_budget &&
           consumed.contains(seeds.front().fragment)) {
      drop_top_seed();
    }
    // Dequeue the globally best pending entry: compare the best unpopped
    // seed with the top of the expanded-entry queue.
    Entry head;
    if (seeds_popped < seed_budget &&
        (queue.empty() || seeds.front().score > queue_top().score ||
         (seeds.front().score == queue_top().score &&
          SingletonLess(seeds.front().fragment, queue_top().p->members)))) {
      head = materialize(seeds.front());
      drop_top_seed();
    } else if (!queue.empty()) {
      head = queue_pop();
    } else {
      break;  // Q exhausted
    }

    // Db-pages sharing fragments with an already-returned page "for sure
    // have overlapped contents, and they can be easily identified to be
    // excluded from search results" (paper Section IV).
    bool overlaps_output = false;
    for (FragmentHandle m : head.p->members) {
      if (used_stamp[m] == used_gen) {
        overlaps_output = true;
        break;
      }
    }
    if (overlaps_output) {
      release_payload(head.p);
      continue;
    }

    // Candidate neighbors (fragment graph) not already in the page: the
    // entry's incrementally maintained frontier (empty once the page has
    // reached its word budget — no further growth is attempted).
    const std::vector<FragmentHandle>& candidates =
        head.words < min_page_words ? head.p->frontier : kNoCandidates;

    if (candidates.empty()) {
      // Not expandable (size reached or no fragments available): output.
      SearchResult r;
      r.fragments = head.p->members;
      r.score = head.score;
      r.size_words = head.words;
      // Reverse query string parsing: equality values from the identifier
      // prefix, range bounds from the min/max over the member fragments.
      const db::Row& first = catalog_.id(head.p->members.front());
      for (std::size_t d = 0; d < selection_.size(); ++d) {
        const sql::SelectionAttribute& attr = selection_[d];
        if (!attr.is_range) {
          r.params[attr.eq_parameter] = first[d].ToString();
          continue;
        }
        db::Value lo = first[d], hi = first[d];
        for (FragmentHandle m : head.p->members) {
          const db::Value& v = catalog_.id(m)[d];
          if (v < lo) lo = v;
          if (hi < v) hi = v;
        }
        if (!attr.min_parameter.empty()) {
          r.params[attr.min_parameter] = lo.ToString();
        }
        if (!attr.max_parameter.empty()) {
          r.params[attr.max_parameter] = hi.ToString();
        }
      }
      if (app_ != nullptr) {
        std::map<std::string, std::string> url_params(r.params.begin(),
                                                      r.params.end());
        r.url = app_->UrlFor(url_params);
      }
      for (FragmentHandle m : head.p->members) used_stamp[m] = used_gen;
      release_payload(head.p);
      results.push_back(std::move(r));
      continue;
    }

    // Expand by the best single neighbor, favoring relevant fragments
    // ("whenever possible, relevant db-page fragments are favored").
    bool best_relevant = false;
    double best_score = -1;
    FragmentHandle best = 0;
    std::uint64_t best_words = 0;
    bool have_best = false;
    for (FragmentHandle c : candidates) {
      cand_occ.assign(head.p->occ.begin(), head.p->occ.end());
      bool is_relevant = false;
      for (std::size_t t = 0; t < terms.size(); ++t) {
        std::uint32_t o = postings[t].OccurrencesIn(c);
        if (o != 0) {
          cand_occ[t] += o;
          is_relevant = true;
        }
      }
      std::uint64_t words = head.words + catalog_.keyword_total(c);
      double score = score_of(cand_occ, words);
      bool better;
      if (is_relevant != best_relevant) {
        better = is_relevant;
      } else if (score != best_score) {
        better = score > best_score;
      } else {
        better = c < best;
      }
      if (!have_best || better) {
        have_best = true;
        best_relevant = is_relevant;
        best_score = score;
        best = c;
        best_occ.swap(cand_occ);
        best_words = words;
      }
    }

    // Single-pass sorted insert of `best` into a recycled member buffer;
    // `head` is dead past this point and donates its payload back.
    Entry expanded;
    expanded.p = acquire_payload();
    const std::vector<FragmentHandle>& hm = head.p->members;
    expanded.p->members.reserve(hm.size() + 1);
    auto split = std::upper_bound(hm.begin(), hm.end(), best);
    expanded.p->members.insert(expanded.p->members.end(), hm.begin(), split);
    expanded.p->members.push_back(best);
    expanded.p->members.insert(expanded.p->members.end(), split, hm.end());
    // New frontier: the old one minus `best`, plus best's neighbors that
    // are neither members nor frontier candidates already.
    std::vector<FragmentHandle>& nf = expanded.p->frontier;
    nf.reserve(head.p->frontier.size() + 4);
    for (FragmentHandle f : head.p->frontier) {
      if (f != best) nf.push_back(f);
    }
    for (FragmentHandle n : graph_.Neighbors(best)) {
      if (std::binary_search(expanded.p->members.begin(),
                             expanded.p->members.end(), n)) {
        continue;
      }
      auto pos = std::lower_bound(nf.begin(), nf.end(), n);
      if (pos == nf.end() || *pos != n) nf.insert(pos, n);
    }
    expanded.p->occ.assign(best_occ.begin(), best_occ.end());
    expanded.set_hash = head.set_hash + MixHandle(best);
    expanded.words = best_words;
    expanded.score = best_score;
    release_payload(head.p);
    if (best_relevant) consumed.insert(best);
    bool fresh = visited.Insert(expanded.set_hash, expanded.p->members);
    if (fresh) {
      queue_push(expanded);
    } else {
      release_payload(expanded.p);
    }
  }
  for (const Entry& e : queue) release_payload(e.p);
  // Canonical output order: score descending, ties broken by the member
  // handle list (ascending handles == ascending identifier order in a
  // canonical catalog). Pop order alone is not score-sorted — a relevant
  // neighbor can raise a page's score after lower-scored pages were
  // output (see the monotonicity note in the header) — and equal scores
  // would otherwise order by discovery, which differential comparison and
  // the sharded gather merge both need pinned down.
  std::stable_sort(results.begin(), results.end(),
                   [](const SearchResult& a, const SearchResult& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.fragments < b.fragments;
                   });
  return results;
}

}  // namespace dash::core
