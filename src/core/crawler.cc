#include "core/crawler.h"

#include <algorithm>
#include <stdexcept>

#include "sql/eval.h"
#include "util/thread_pool.h"

namespace dash::core {

namespace {

// Static schema of a join subtree (no row evaluation).
db::Schema JoinSchema(const db::Database& db, const sql::JoinNode& node) {
  if (node.IsLeaf()) return db.table(node.relation).schema();
  return db::Schema::Concat(JoinSchema(db, *node.left),
                            JoinSchema(db, *node.right));
}

db::Schema CollectJoinEdges(
    const db::Database& db, const sql::JoinNode& node,
    std::vector<std::pair<std::string, std::string>>* edges) {
  if (node.IsLeaf()) return db.table(node.relation).schema();
  db::Schema left = CollectJoinEdges(db, *node.left, edges);
  db::Schema right = CollectJoinEdges(db, *node.right, edges);
  std::string on_left = node.on_left, on_right = node.on_right;
  if (on_left.empty()) {
    std::tie(on_left, on_right) = db::FindJoinColumns(db, left, right);
  } else {
    on_left = left.column(static_cast<std::size_t>(left.IndexOf(on_left)))
                  .Qualified();
    on_right = right.column(static_cast<std::size_t>(right.IndexOf(on_right)))
                   .Qualified();
  }
  edges->emplace_back(std::move(on_left), std::move(on_right));
  return db::Schema::Concat(left, right);
}

}  // namespace

std::vector<std::pair<std::string, std::string>> ResolvedJoinEdges(
    const db::Database& db, const sql::JoinNode& root) {
  std::vector<std::pair<std::string, std::string>> edges;
  CollectJoinEdges(db, root, &edges);
  return edges;
}

Crawler::Crawler(const db::Database& db, sql::PsjQuery query)
    : db_(db), query_(std::move(query)) {
  if (!query_.from) {
    throw std::runtime_error("PSJ query has no FROM clause");
  }
  for (const std::string& rel : query_.Relations()) {
    if (!db_.HasTable(rel)) {
      throw std::runtime_error("query references unknown relation '" + rel +
                               "'");
    }
  }
  db::Schema joined = JoinSchema(db_, *query_.from);

  selection_ = query_.SelectionAttributes();
  for (const sql::SelectionAttribute& a : selection_) {
    // Resolve to the fully qualified name so MR pipelines can locate the
    // attribute's home relation.
    int idx = joined.IndexOf(a.column);
    selection_columns_.push_back(
        joined.column(static_cast<std::size_t>(idx)).Qualified());
    if (!a.is_range) ++num_eq_;
  }

  projection_columns_ = sql::ResolveProjection(db_, query_);
}

db::Table Crawler::EvalJoin() const { return sql::EvalJoin(db_, *query_.from); }

std::vector<Fragment> Crawler::DeriveFragments() const {
  db::Table joined = EvalJoin();
  std::vector<int> sel_idx, proj_idx;
  for (const std::string& c : selection_columns_) {
    sel_idx.push_back(joined.schema().IndexOf(c));
  }
  for (const std::string& c : projection_columns_) {
    proj_idx.push_back(joined.schema().IndexOf(c));
  }

  std::unordered_map<db::Row, std::size_t, db::RowHash> slot;
  std::vector<Fragment> fragments;
  for (const db::Row& row : joined.rows()) {
    db::Row id;
    id.reserve(sel_idx.size());
    bool null_id = false;
    for (int i : sel_idx) {
      const db::Value& v = row[static_cast<std::size_t>(i)];
      null_id |= v.is_null();
      id.push_back(v);
    }
    // Rows with a NULL selection value satisfy no query string: they belong
    // to no db-page and thus to no fragment (see GroupMapper).
    if (null_id) continue;
    auto [it, inserted] = slot.emplace(id, fragments.size());
    if (inserted) fragments.push_back(Fragment{std::move(id), {}});
    db::Row projected;
    projected.reserve(proj_idx.size());
    for (int i : proj_idx) projected.push_back(row[static_cast<std::size_t>(i)]);
    fragments[it->second].rows.push_back(std::move(projected));
  }
  std::sort(fragments.begin(), fragments.end(),
            [](const Fragment& a, const Fragment& b) { return a.id < b.id; });
  return fragments;
}

FragmentIndexBuild Crawler::BuildIndex() const {
  FragmentIndexBuild build;
  for (const Fragment& frag : DeriveFragments()) {
    FragmentHandle handle = build.catalog.Intern(frag.id);
    util::TokenCounter counter;
    for (const db::Row& row : frag.rows) CountRowKeywords(row, counter);
    for (const auto& [keyword, count] : counter.counts()) {
      build.index.AddOccurrences(keyword, handle,
                                 static_cast<std::uint32_t>(count));
    }
  }
  build.index.Finalize(&build.catalog, &util::ThreadPool::Shared());
  std::vector<FragmentHandle> mapping = build.catalog.Canonicalize();
  build.index.RemapFragments(mapping);
  return build;
}

db::Table Crawler::EvalPage(
    const std::map<std::string, db::Value>& params) const {
  return sql::EvalQuery(db_, query_, params);
}

void Crawler::CountRowKeywords(const db::Row& row, util::TokenCounter& counter,
                               std::size_t multiplier) {
  for (const db::Value& v : row) {
    if (v.is_null()) continue;
    counter.Add(v.ToString(), multiplier);
  }
}

}  // namespace dash::core
