// The fragment graph (paper Section VI-A, Figure 9).
//
// Nodes are fragments (weighted by keyword count, held in the catalog);
// an edge connects f and f' iff they can be combined into a db-page that
// contains no other fragment. Since a db-page fixes every equality
// attribute and selects an axis-aligned box of range-attribute values:
//
//   * fragments with different equality values are never connected
//     (Figure 9's disconnected Thai node);
//   * with no range attributes every page is a single fragment: no edges;
//   * with one range attribute, edges are exactly the adjacencies in
//     sorted range-value order within each equality group (Figure 9's
//     American chain);
//   * with several range attributes, f—f' holds iff the minimal box
//     covering both contains no third fragment (boundaries inclusive).
//
// Construction is the paper's incremental insertion with its pre-sorting
// optimization: the canonical catalog orders identifiers lexicographically
// (equality prefix first), so each equality group is a contiguous handle
// run already sorted by range values, and the <=1-range-attribute cases
// reduce to linking neighbors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/fragment.h"

namespace dash::core {

class FragmentGraph {
 public:
  struct Stats {
    double build_seconds = 0;
    std::size_t nodes = 0;
    std::size_t edges = 0;
  };

  FragmentGraph() = default;

  // Builds the graph over a canonicalized catalog. `num_eq` / `num_range`
  // are the counts of equality and range selection attributes (the
  // identifier layout: eq values first).
  static FragmentGraph Build(const FragmentCatalog& catalog,
                             std::size_t num_eq, std::size_t num_range);

  std::span<const FragmentHandle> Neighbors(FragmentHandle f) const {
    return adjacency_[f];
  }

  // Equality groups: contiguous handle runs sharing the eq-value prefix.
  std::size_t num_groups() const { return groups_.size(); }
  std::uint32_t GroupOf(FragmentHandle f) const { return group_of_[f]; }
  // Handles [first, last] of group g, sorted by range values ascending.
  std::pair<FragmentHandle, FragmentHandle> GroupSpan(std::uint32_t g) const {
    return groups_[g];
  }

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const;
  const Stats& stats() const { return stats_; }

  std::size_t num_eq_attributes() const { return num_eq_; }
  std::size_t num_range_attributes() const { return num_range_; }

 private:
  std::vector<std::vector<FragmentHandle>> adjacency_;
  std::vector<std::pair<FragmentHandle, FragmentHandle>> groups_;
  std::vector<std::uint32_t> group_of_;
  std::size_t num_eq_ = 0;
  std::size_t num_range_ = 0;
  Stats stats_;
};

}  // namespace dash::core
