#include "core/result_cache.h"

#include <algorithm>
#include <stdexcept>

#include "util/csv.h"

namespace dash::core {

std::string ResultCache::MakeKey(const std::vector<std::string>& keywords,
                                 int k, std::uint64_t min_page_words) {
  // Keyword order must not matter ({"a","b"} == {"b","a"}).
  std::vector<std::string> sorted = keywords;
  std::sort(sorted.begin(), sorted.end());
  sorted.push_back("k=" + std::to_string(k));
  sorted.push_back("s=" + std::to_string(min_page_words));
  return util::EncodeFields(sorted);
}

std::optional<std::vector<SearchResult>> ResultCache::Lookup(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words, std::uint64_t generation) {
  std::string key = MakeKey(keywords, k, min_page_words);
  util::MutexLock lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second->generation != generation) {
    ++stats_.misses;
    if (it != map_.end()) {  // stale entry from a previous generation
      lru_.erase(it->second);
      map_.erase(it);
    }
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->results;
}

void ResultCache::Insert(const std::vector<std::string>& keywords, int k,
                         std::uint64_t min_page_words,
                         std::uint64_t generation,
                         std::vector<SearchResult> results) {
  if (capacity_ == 0) return;
  std::string key = MakeKey(keywords, k, min_page_words);
  util::MutexLock lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.erase(it->second);
    map_.erase(it);
  }
  lru_.push_front(Entry{key, generation, std::move(results)});
  map_[std::move(key)] = lru_.begin();
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  util::MutexLock lock(mutex_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::vector<SearchResult> CachingEngine::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words) {
  // Acquire the live snapshot once; everything below — cache key and
  // search — is consistent with that one generation even if a writer
  // republishes mid-query.
  SnapshotPtr snapshot =
      publisher_ != nullptr ? publisher_->Current() : engine_->snapshot();
  if (snapshot == nullptr) {
    throw std::logic_error("CachingEngine: nothing published yet");
  }
  std::uint64_t generation = snapshot->generation();
  if (auto cached = cache_.Lookup(keywords, k, min_page_words, generation)) {
    return std::move(*cached);
  }
  std::vector<SearchResult> results =
      snapshot->Search(keywords, k, min_page_words);
  cache_.Insert(keywords, k, min_page_words, generation, results);
  return results;
}

}  // namespace dash::core
