#include "core/fragment.h"

#include <algorithm>
#include <numeric>

namespace dash::core {

std::string FragmentIdToString(const db::Row& id) {
  std::string out = "(";
  for (std::size_t i = 0; i < id.size(); ++i) {
    if (i) out += ", ";
    out += id[i].is_null() ? "NULL" : id[i].ToString();
  }
  out += ")";
  return out;
}

FragmentHandle FragmentCatalog::Intern(const db::Row& id) {
  auto it = lookup_.find(id);
  if (it != lookup_.end()) return it->second;
  FragmentHandle f = static_cast<FragmentHandle>(ids_.size());
  ids_.push_back(id);
  keyword_totals_.push_back(0);
  content_hashes_.push_back(0);
  lookup_.emplace(id, f);
  return f;
}

std::optional<FragmentHandle> FragmentCatalog::Find(const db::Row& id) const {
  auto it = lookup_.find(id);
  if (it == lookup_.end()) return std::nullopt;
  return it->second;
}

double FragmentCatalog::AverageKeywords() const {
  if (ids_.empty()) return 0.0;
  std::uint64_t total =
      std::accumulate(keyword_totals_.begin(), keyword_totals_.end(),
                      std::uint64_t{0});
  return static_cast<double>(total) / static_cast<double>(ids_.size());
}

std::vector<FragmentHandle> FragmentCatalog::Canonicalize() {
  std::vector<FragmentHandle> order(ids_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [this](FragmentHandle a, FragmentHandle b) {
              return ids_[a] < ids_[b];
            });
  // order[new] = old; invert to mapping[old] = new.
  std::vector<FragmentHandle> mapping(ids_.size());
  std::vector<db::Row> new_ids(ids_.size());
  std::vector<std::uint64_t> new_totals(ids_.size());
  std::vector<std::uint64_t> new_hashes(ids_.size());
  for (std::size_t n = 0; n < order.size(); ++n) {
    FragmentHandle old = order[n];
    mapping[old] = static_cast<FragmentHandle>(n);
    new_ids[n] = std::move(ids_[old]);
    new_totals[n] = keyword_totals_[old];
    new_hashes[n] = content_hashes_[old];
  }
  ids_ = std::move(new_ids);
  keyword_totals_ = std::move(new_totals);
  content_hashes_ = std::move(new_hashes);
  lookup_.clear();
  for (std::size_t n = 0; n < ids_.size(); ++n) {
    lookup_.emplace(ids_[n], static_cast<FragmentHandle>(n));
  }
  return mapping;
}

std::size_t FragmentCatalog::SizeBytes() const {
  std::size_t bytes = keyword_totals_.size() * sizeof(std::uint64_t);
  for (const db::Row& id : ids_) {
    for (const db::Value& v : id) {
      bytes += v.type() == db::ValueType::kString ? v.AsString().size() + 8 : 8;
    }
  }
  return bytes;
}

}  // namespace dash::core
