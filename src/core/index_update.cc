#include "core/index_update.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/string_util.h"
#include "util/tokenizer.h"

namespace dash::core {

namespace {

// Splits a qualified column name into its relation part.
std::string_view RelationOf(std::string_view qualified) {
  auto dot = qualified.find('.');
  return dot == std::string_view::npos ? std::string_view{}
                                       : qualified.substr(0, dot);
}

}  // namespace

UpdatableIndex::UpdatableIndex(db::Database db, sql::PsjQuery query)
    : db_(std::move(db)), query_(std::move(query)) {
  Init();
}

UpdatableIndex::UpdatableIndex(db::Database db, webapp::WebAppInfo app)
    // Members initialize in declaration order, so query_ copies app.query
    // before app_ moves from it.
    : db_(std::move(db)), query_(app.query), app_(std::move(app)) {
  Init();
}

void UpdatableIndex::Init() {
  crawler_ = std::make_unique<Crawler>(db_, query_);
  for (const Fragment& frag : crawler_->DeriveFragments()) {
    MirrorFragment mirror;
    util::TokenCounter counter;
    for (const db::Row& row : frag.rows) {
      Crawler::CountRowKeywords(row, counter);
    }
    mirror.keyword_counts.insert(counter.counts().begin(),
                                 counter.counts().end());
    mirror.total_keywords = counter.total();
    mirror.record_count = frag.rows.size();
    fragments_.emplace(frag.id, std::move(mirror));
  }
  PublishSnapshot();
}

void UpdatableIndex::Insert(const std::string& relation, db::Row row) {
  db_.mutable_table(relation).AddRow(row);
  // Affected fragments are determined on the new state: every joined row
  // the record now participates in carries an affected identifier.
  RecomputeFragments(AffectedFragments(relation, row));
  PublishSnapshot();
}

void UpdatableIndex::Delete(const std::string& relation, const db::Row& row) {
  // Affected fragments are determined *before* removal: the joined rows the
  // record participates in exist only in the old state.
  std::set<db::Row> affected = AffectedFragments(relation, row);
  if (!db_.mutable_table(relation).RemoveFirstMatch(row)) {
    throw std::runtime_error("Delete: no matching row in '" + relation + "'");
  }
  RecomputeFragments(affected);
  PublishSnapshot();
}

std::set<db::Row> UpdatableIndex::AffectedFragments(
    const std::string& relation, const db::Row& row) const {
  // Restrict every relation to the rows transitively joinable with `row`,
  // walking the resolved join edges to a fixpoint. This touches only the
  // changed record's join neighborhood, never the whole database.
  std::map<std::string, std::vector<db::Row>> restricted;
  restricted[relation] = {row};

  auto edges = ResolvedJoinEdges(db_, *query_.from);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [left_col, right_col] : edges) {
      for (bool flip : {false, true}) {
        const std::string& from_col = flip ? right_col : left_col;
        const std::string& to_col = flip ? left_col : right_col;
        std::string from_rel(RelationOf(from_col));
        std::string to_rel(RelationOf(to_col));
        auto it = restricted.find(from_rel);
        if (it == restricted.end() || restricted.contains(to_rel)) continue;
        // Collect join values present on the restricted side...
        std::unordered_set<db::Value, db::ValueHash> values;
        int fi = db_.table(from_rel).schema().IndexOf(from_col);
        for (const db::Row& r : it->second) {
          const db::Value& v = r[static_cast<std::size_t>(fi)];
          if (!v.is_null()) values.insert(v);
        }
        // ...and pull the matching rows of the other side.
        const db::Table& to_table = db_.table(to_rel);
        int ti = to_table.schema().IndexOf(to_col);
        std::vector<db::Row> rows;
        for (const db::Row& r : to_table.rows()) {
          if (values.contains(r[static_cast<std::size_t>(ti)])) {
            rows.push_back(r);
          }
        }
        restricted.emplace(to_rel, std::move(rows));
        changed = true;
      }
    }
  }

  // Evaluate the crawling query over the restricted slice; the fragment
  // identifiers that appear are (a superset of) the affected ones.
  db::Database slice;
  for (const std::string& rel : query_.Relations()) {
    db::Table t(rel, db_.table(rel).schema());
    auto it = restricted.find(rel);
    if (it != restricted.end()) {
      for (const db::Row& r : it->second) t.AddRow(r);
    }
    slice.AddTable(std::move(t));
  }
  for (const db::ForeignKey& fk : db_.foreign_keys()) {
    if (slice.HasTable(fk.from_table) && slice.HasTable(fk.to_table)) {
      slice.AddForeignKey(fk);
    }
  }

  std::set<db::Row> ids;
  Crawler slice_crawler(slice, query_);
  for (const Fragment& frag : slice_crawler.DeriveFragments()) {
    ids.insert(frag.id);
  }
  return ids;
}

void UpdatableIndex::RecomputeFragments(const std::set<db::Row>& ids) {
  if (ids.empty()) return;
  fragments_recomputed_ += ids.size();
  for (const db::Row& id : ids) fragments_.erase(id);

  // Filter each relation owning selection attributes down to the affected
  // identifier values; other relations join in full.
  const auto& sel_cols = crawler_->selection_columns();
  std::vector<std::unordered_set<db::Value, db::ValueHash>> value_sets(
      sel_cols.size());
  for (const db::Row& id : ids) {
    for (std::size_t d = 0; d < sel_cols.size(); ++d) {
      value_sets[d].insert(id[d]);
    }
  }

  db::Database filtered;
  for (const std::string& rel : query_.Relations()) {
    const db::Table& table = db_.table(rel);
    // Which canonical selection columns live in this relation?
    std::vector<std::pair<int, std::size_t>> owned;  // (col idx, sel dim)
    for (std::size_t d = 0; d < sel_cols.size(); ++d) {
      if (auto idx = table.schema().Find(sel_cols[d])) {
        owned.emplace_back(*idx, d);
      }
    }
    if (owned.empty()) {
      filtered.AddTable(table);
      continue;
    }
    db::Table t(rel, table.schema());
    for (const db::Row& r : table.rows()) {
      bool keep = true;
      for (const auto& [col, dim] : owned) {
        if (!value_sets[dim].contains(r[static_cast<std::size_t>(col)])) {
          keep = false;
          break;
        }
      }
      if (keep) t.AddRow(r);
    }
    filtered.AddTable(std::move(t));
  }
  for (const db::ForeignKey& fk : db_.foreign_keys()) {
    if (filtered.HasTable(fk.from_table) && filtered.HasTable(fk.to_table)) {
      filtered.AddForeignKey(fk);
    }
  }

  Crawler filtered_crawler(filtered, query_);
  for (const Fragment& frag : filtered_crawler.DeriveFragments()) {
    // The per-attribute filters form a cross product; keep exactly the
    // requested identifiers.
    if (!ids.contains(frag.id)) continue;
    MirrorFragment mirror;
    util::TokenCounter counter;
    for (const db::Row& row : frag.rows) {
      Crawler::CountRowKeywords(row, counter);
    }
    mirror.keyword_counts.insert(counter.counts().begin(),
                                 counter.counts().end());
    mirror.total_keywords = counter.total();
    mirror.record_count = frag.rows.size();
    fragments_.emplace(frag.id, std::move(mirror));
  }
}

FragmentIndexBuild UpdatableIndex::CopyBuild() const {
  FragmentIndexBuild copy;
  // std::map iterates identifiers in ascending order, so interning here
  // yields a canonical catalog directly.
  for (const auto& [id, mirror] : fragments_) {
    FragmentHandle f = copy.catalog.Intern(id);
    for (const auto& [keyword, count] : mirror.keyword_counts) {
      copy.index.AddOccurrences(keyword, f,
                                static_cast<std::uint32_t>(count));
    }
  }
  copy.index.Finalize(&copy.catalog);
  return copy;
}

void UpdatableIndex::PublishSnapshot() {
  // Build the next snapshot entirely off to the side: concurrent readers
  // keep searching the previous snapshot until the single pointer swap in
  // Publish. An update therefore costs an in-memory re-materialization of
  // the mirror — never a database recrawl — and readers never wait on it.
  SnapshotPtr next = app_.has_value()
                         ? IndexSnapshot::Create(*app_, CopyBuild())
                         : IndexSnapshot::CreateWithoutApp(query_, CopyBuild());
  publisher_.Publish(next);
  current_ = std::move(next);
}

}  // namespace dash::core
