#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "core/mr_crawl.h"
#include "util/csv.h"
#include "util/tokenizer.h"

namespace dash::core {

namespace {

using util::DecodeFields;
using util::EncodeFields;

// ---------------------------------------------------------------------
// INT step (1): per-relation aggregation — the paper's "aggregate query"
//   G_{ci, ji} count(*) as theta_i (Ri)
// Rows whose selection attributes are NULL are dropped (they can belong to
// no db-page; see GroupMapper in mr_stepwise.cc).
// ---------------------------------------------------------------------

class AggregateMapper : public mr::Mapper {
 public:
  AggregateMapper(std::vector<int> group_idx, std::vector<int> sel_idx)
      : group_idx_(std::move(group_idx)), sel_idx_(std::move(sel_idx)) {}

  void Map(const mr::Record& record, mr::Emitter& out) override {
    std::vector<std::string> fields = DecodeFields(record.value);
    for (int i : sel_idx_) {
      if (fields[static_cast<std::size_t>(i)].empty()) return;  // NULL
    }
    std::vector<std::string_view> key;
    key.reserve(group_idx_.size());
    for (int i : group_idx_) key.push_back(fields[static_cast<std::size_t>(i)]);
    out.Emit(EncodeFields(key), "1");
  }

 private:
  std::vector<int> group_idx_;
  std::vector<int> sel_idx_;
};

// Used both as combiner and reducer: sums partial counts per group key.
// As a combiner it re-emits (key, partial sum); the final reducer appends
// theta to the group fields as a full output row.
class CountCombiner : public mr::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mr::Emitter& out) override {
    std::uint64_t total = 0;
    for (const std::string& v : values) total += std::stoull(v);
    out.Emit(key, std::to_string(total));
  }
};

class CountReducer : public mr::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mr::Emitter& out) override {
    std::uint64_t total = 0;
    for (const std::string& v : values) total += std::stoull(v);
    std::vector<std::string> fields = DecodeFields(key);
    fields.push_back(std::to_string(total));
    out.Emit("", EncodeFields(fields));
  }
};

// ---------------------------------------------------------------------
// INT step (2): keyword extraction — the "project query"
//   pi_{ai, c1..cn, Theta_i} (R |x|_{ci,ji} Ri)
// Repartition join of the combined parameter relation R (tag "R") with the
// full relation Ri (tag "T") on Ri's group key. For every matched pair the
// reducer multiplies Ri's keyword occurrences by the replication factor
// Theta_i = prod_{x != i} max(theta_x, 1).
// ---------------------------------------------------------------------

class ExtractMapper : public mr::Mapper {
 public:
  struct RSideSpec {
    std::vector<int> group_idx;  // Ri's group columns, located in R's schema
    std::vector<int> frag_idx;   // selection columns (canonical), in R
    std::vector<int> theta_idx;  // all relations' theta columns, in R
    int own_theta_idx = 0;       // Ri's theta column, in R
  };
  struct TSideSpec {
    std::vector<int> group_idx;  // Ri's group columns, in Ri
    std::vector<int> proj_idx;   // Ri's projection columns, in Ri
    std::vector<int> sel_idx;    // Ri's own selection columns, in Ri
  };

  ExtractMapper(RSideSpec r, TSideSpec t) : r_(std::move(r)), t_(std::move(t)) {}

  void Map(const mr::Record& record, mr::Emitter& out) override {
    std::vector<std::string> fields = DecodeFields(record.value);
    if (record.key == "R") {
      // Relation i contributed nothing to this parameter combination
      // (outer-join padding): no keywords to replicate.
      const std::string& own_theta =
          fields[static_cast<std::size_t>(r_.own_theta_idx)];
      if (own_theta.empty() || own_theta == "0") return;
      // NULL selection values => fragment unreachable by any query string.
      for (int i : r_.frag_idx) {
        if (fields[static_cast<std::size_t>(i)].empty()) return;
      }
      std::uint64_t theta_product = 1;
      for (int i : r_.theta_idx) {
        const std::string& t = fields[static_cast<std::size_t>(i)];
        std::uint64_t v = t.empty() ? 0 : std::stoull(t);
        theta_product *= std::max<std::uint64_t>(v, 1);
      }
      std::uint64_t big_theta =
          theta_product / std::max<std::uint64_t>(std::stoull(own_theta), 1);

      std::vector<std::string_view> group, frag;
      for (int i : r_.group_idx) group.push_back(fields[static_cast<std::size_t>(i)]);
      for (int i : r_.frag_idx) frag.push_back(fields[static_cast<std::size_t>(i)]);
      out.Emit(EncodeFields(group),
               "R\t" + EncodeFields(std::vector<std::string>{
                           EncodeFields(frag), std::to_string(big_theta)}));
      return;
    }
    // T side: one full record of Ri.
    for (int i : t_.sel_idx) {
      if (fields[static_cast<std::size_t>(i)].empty()) return;  // NULL
    }
    std::vector<std::string_view> group, proj;
    for (int i : t_.group_idx) group.push_back(fields[static_cast<std::size_t>(i)]);
    for (int i : t_.proj_idx) proj.push_back(fields[static_cast<std::size_t>(i)]);
    out.Emit(EncodeFields(group), "T\t" + EncodeFields(proj));
  }

 private:
  RSideSpec r_;
  TSideSpec t_;
};

class ExtractReducer : public mr::Reducer {
 public:
  void Reduce(const std::string& /*key*/,
              const std::vector<std::string>& values,
              mr::Emitter& out) override {
    // Split the co-group. R entries: (encoded fragment key, Theta);
    // T entries: projection text of one Ri record.
    std::vector<std::pair<std::string, std::uint64_t>> fragments;
    std::vector<std::string_view> texts;
    for (const std::string& v : values) {
      std::string_view sv(v);
      if (sv.size() < 2) continue;
      if (sv[0] == 'R') {
        std::vector<std::string> parts = DecodeFields(sv.substr(2));
        fragments.emplace_back(std::move(parts[0]), std::stoull(parts[1]));
      } else {
        texts.push_back(sv.substr(2));
      }
    }
    if (fragments.empty() || texts.empty()) return;
    // Consolidate within the co-group before emitting: several records of
    // Ri (and several parameter combinations) often hit the same
    // (keyword, fragment) pair.
    std::map<std::pair<std::string, std::string>, std::uint64_t> acc;
    for (std::string_view text : texts) {
      util::TokenCounter counter;
      for (const std::string& field : DecodeFields(text)) counter.Add(field);
      for (const auto& [frag, theta] : fragments) {
        for (const auto& [keyword, count] : counter.counts()) {
          acc[{keyword, frag}] += count * theta;
        }
      }
    }
    for (const auto& [key, occ] : acc) {
      out.Emit(key.first, EncodeFields(std::vector<std::string>{
                              key.second, std::to_string(occ)}));
    }
  }
};

// Column bookkeeping for one operand relation.
struct RelationSpec {
  std::string name;
  std::vector<std::string> group_cols;  // selection + join columns, deduped
  std::vector<std::string> sel_cols;    // own selection columns
  std::vector<std::string> proj_cols;   // own projection columns
};

}  // namespace

CrawlResult IntegratedCrawl(mr::Cluster& cluster, const db::Database& db,
                            const sql::PsjQuery& query,
                            const CrawlOptions& options) {
  Crawler resolver(db, query);
  CrawlResult result;

  // ---- Plan: assign selection / join / projection columns per relation.
  std::vector<std::string> all_join_cols;
  for (const auto& [left, right] :
       ResolvedJoinEdges(db, *resolver.query().from)) {
    all_join_cols.push_back(left);
    all_join_cols.push_back(right);
  }

  std::vector<RelationSpec> specs;
  for (const std::string& rel : resolver.query().Relations()) {
    RelationSpec spec;
    spec.name = rel;
    const db::Schema& schema = db.table(rel).schema();
    auto owns = [&schema](const std::string& qualified) {
      return schema.Find(qualified).has_value();
    };
    auto add_unique = [](std::vector<std::string>& v, const std::string& c) {
      if (std::find(v.begin(), v.end(), c) == v.end()) v.push_back(c);
    };
    for (const std::string& c : resolver.selection_columns()) {
      if (owns(c)) {
        add_unique(spec.group_cols, c);
        spec.sel_cols.push_back(c);
      }
    }
    for (const std::string& c : all_join_cols) {
      if (owns(c)) add_unique(spec.group_cols, c);
    }
    for (const std::string& c : resolver.projection_columns()) {
      if (owns(c)) spec.proj_cols.push_back(c);
    }
    specs.push_back(std::move(spec));
  }

  // ---- Phase INT-Jn: aggregate each relation, then join the compact
  // parameter tuples along the same join tree.
  std::size_t mark = cluster.history().size();
  std::map<std::string, MrTable> compact;
  for (const RelationSpec& spec : specs) {
    const db::Table& table = db.table(spec.name);
    MrTable input = ExportTable(table);
    std::vector<int> group_idx, sel_idx;
    db::Schema out_schema;
    for (const std::string& c : spec.group_cols) {
      int i = input.schema.IndexOf(c);
      group_idx.push_back(i);
      out_schema.AddColumn(input.schema.column(static_cast<std::size_t>(i)));
    }
    for (const std::string& c : spec.sel_cols) {
      sel_idx.push_back(input.schema.IndexOf(c));
    }
    out_schema.AddColumn(
        db::Column{spec.name, "__theta", db::ValueType::kInt});

    mr::JobConfig job;
    job.name = "INT-aggregate(" + spec.name + ")";
    job.num_reduce_tasks = options.num_reduce_tasks;
    MrTable agg;
    agg.schema = std::move(out_schema);
    agg.data = cluster.Run(
        job, input.data,
        [&group_idx, &sel_idx] {
          return std::make_unique<AggregateMapper>(group_idx, sel_idx);
        },
        [] { return std::make_unique<CountReducer>(); },
        [] { return std::make_unique<CountCombiner>(); });
    compact.emplace(spec.name, std::move(agg));
  }

  MrTable parameter_relation = MrJoinTree(
      cluster, db, *resolver.query().from,
      [&compact](const std::string& rel) { return compact.at(rel); },
      options.num_reduce_tasks, "INT-");
  result.phases.push_back(SnapshotPhase(cluster, mark, "INT-Jn"));

  const db::Schema& r_schema = parameter_relation.schema;
  std::vector<int> frag_idx_in_r, theta_idx_in_r;
  for (const std::string& c : resolver.selection_columns()) {
    frag_idx_in_r.push_back(r_schema.IndexOf(c));
  }
  for (const RelationSpec& spec : specs) {
    theta_idx_in_r.push_back(r_schema.IndexOf(spec.name + ".__theta"));
  }
  db::Schema sel_schema;
  for (int i : frag_idx_in_r) {
    sel_schema.AddColumn(r_schema.column(static_cast<std::size_t>(i)));
  }

  // ---- Phase INT-Ext: per relation, join its text against R and emit
  // keyword occurrences replicated by Theta_i.
  mark = cluster.history().size();
  mr::Dataset partial_postings;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const RelationSpec& spec = specs[s];
    if (spec.proj_cols.empty()) continue;

    ExtractMapper::RSideSpec rspec;
    for (const std::string& c : spec.group_cols) {
      rspec.group_idx.push_back(r_schema.IndexOf(c));
    }
    rspec.frag_idx = frag_idx_in_r;
    rspec.theta_idx = theta_idx_in_r;
    rspec.own_theta_idx = theta_idx_in_r[s];

    const db::Table& table = db.table(spec.name);
    ExtractMapper::TSideSpec tspec;
    for (const std::string& c : spec.group_cols) {
      tspec.group_idx.push_back(table.schema().IndexOf(c));
    }
    for (const std::string& c : spec.proj_cols) {
      tspec.proj_idx.push_back(table.schema().IndexOf(c));
    }
    for (const std::string& c : spec.sel_cols) {
      tspec.sel_idx.push_back(table.schema().IndexOf(c));
    }

    mr::Dataset input;
    input.reserve(parameter_relation.data.size() + table.row_count());
    for (const mr::Record& r : parameter_relation.data) {
      input.push_back({"R", r.value});
    }
    for (const std::string& line : table.ExportRows()) {
      input.push_back({"T", line});
    }

    mr::JobConfig job;
    job.name = "INT-extract(" + spec.name + ")";
    job.num_reduce_tasks = options.num_reduce_tasks;
    mr::Dataset out = cluster.Run(
        job, input,
        [&rspec, &tspec] {
          return std::make_unique<ExtractMapper>(rspec, tspec);
        },
        [] { return std::make_unique<ExtractReducer>(); });
    partial_postings.insert(partial_postings.end(),
                            std::make_move_iterator(out.begin()),
                            std::make_move_iterator(out.end()));
  }
  result.phases.push_back(SnapshotPhase(cluster, mark, "INT-Ext"));

  // ---- Phase INT-Cnsd: consolidate per-keyword occurrence lists. ----
  mark = cluster.history().size();
  mr::JobConfig job;
  job.name = "INT-consolidate";
  job.num_reduce_tasks = options.num_reduce_tasks;
  mr::Dataset inverted = cluster.Run(
      job, partial_postings,
      [] { return std::make_unique<mr::IdentityMapper>(); },
      [] { return std::make_unique<InvertedListReducer>(); },
      [] { return std::make_unique<PostingCombiner>(); });
  result.phases.push_back(SnapshotPhase(cluster, mark, "INT-Cnsd"));

  // ---- Consume: catalog fragments from R, postings from the final lists.
  for (const mr::Record& r : parameter_relation.data) {
    std::vector<std::string> fields = DecodeFields(r.value);
    db::Row id;
    bool null_id = false;
    id.reserve(frag_idx_in_r.size());
    for (std::size_t i = 0; i < frag_idx_in_r.size(); ++i) {
      const std::string& f =
          fields[static_cast<std::size_t>(frag_idx_in_r[i])];
      if (f.empty()) {
        null_id = true;
        break;
      }
      id.push_back(db::Value::Parse(f, sel_schema.column(i).type));
    }
    if (!null_id) result.build.catalog.Intern(id);
  }
  ConsumeInvertedLists(inverted, sel_schema, &result.build);
  FinalizeBuild(&result.build);
  return result;
}

}  // namespace dash::core
