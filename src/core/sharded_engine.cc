#include "core/sharded_engine.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace dash::core {

namespace {

// Shard assignment: hash of the equality-value prefix, so whole equality
// groups stay together (with no equality attributes there is one group and
// sharding degenerates to a single non-empty shard, which is correct: the
// group cannot be split without breaking page assembly).
std::size_t ShardOf(const db::Row& id, std::size_t num_eq,
                    std::size_t num_shards) {
  std::size_t h = 1469598103934665603ULL;
  for (std::size_t d = 0; d < num_eq; ++d) {
    h ^= id[d].Hash();
    h *= 1099511628211ULL;
  }
  return h % num_shards;
}

}  // namespace

ShardedEngine::ShardedEngine(webapp::WebAppInfo app, FragmentIndexBuild build,
                             int num_shards, util::ThreadPool* pool)
    : pool_(pool) {
  if (num_shards < 1) {
    throw std::invalid_argument("need at least one shard");
  }
  std::size_t num_eq = 0;
  for (const sql::SelectionAttribute& a : app.query.SelectionAttributes()) {
    if (!a.is_range) ++num_eq;
  }

  // Route each fragment to its shard; ascending handle order keeps every
  // shard catalog canonical.
  const std::size_t n = static_cast<std::size_t>(num_shards);
  std::vector<FragmentIndexBuild> parts(n);
  std::vector<std::pair<std::size_t, FragmentHandle>> route(
      build.catalog.size());
  for (std::size_t f = 0; f < build.catalog.size(); ++f) {
    auto handle = static_cast<FragmentHandle>(f);
    std::size_t shard = ShardOf(build.catalog.id(handle), num_eq, n);
    route[f] = {shard, parts[shard].catalog.Intern(build.catalog.id(handle))};
  }
  for (const auto& [keyword, df] : build.index.KeywordsByDf()) {
    global_df_[keyword] = df;
    for (const Posting& p : build.index.Lookup(keyword)) {
      auto [shard, local] = route[p.fragment];
      parts[shard].index.AddOccurrences(keyword, local, p.occurrences);
    }
  }
  // Finalize + graph construction are per-shard independent: scatter the
  // build work, then assemble shards_ in index order (determinism).
  //
  // Concurrency invariant (checked by inspection, enforced by tsan + the
  // thread_pool_test byte-identity suite rather than a lock): each pool
  // task s writes only built[s] and parts[s] — disjoint slots in vectors
  // sized before the scatter — and ParallelFor's join is the only reader
  // barrier. No mutex, so there is nothing for -Wthread-safety to prove
  // here; keep it that way (adding cross-slot writes would need a
  // dash::Mutex + GUARDED_BY).
  std::vector<std::unique_ptr<DashEngine>> built(n);
  this->pool().ParallelFor(n, [&](std::size_t s) {
    parts[s].index.Finalize(&parts[s].catalog);
    built[s] = std::make_unique<DashEngine>(
        DashEngine::FromParts(app, std::move(parts[s])));
  });
  shards_.reserve(n);
  for (std::unique_ptr<DashEngine>& engine : built) {
    shards_.push_back(std::move(*engine));
  }
}

std::size_t ShardedEngine::fragment_count() const {
  std::size_t total = 0;
  for (const DashEngine& shard : shards_) total += shard.catalog().size();
  return total;
}

std::vector<SearchResult> ShardedEngine::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words) const {
  // Globally consistent IDF from the partition-time document frequencies.
  IdfProvider idf = [this](const std::string& keyword) {
    auto it = global_df_.find(keyword);
    return it == global_df_.end() || it->second == 0
               ? 0.0
               : 1.0 / static_cast<double>(it->second);
  };

  // Scatter: every shard computes its local top-k with global scoring, on
  // the persistent pool (each shard's index is independent and searching
  // is const; per_shard slots make the gather order thread-count-free).
  // Same disjoint-slot invariant as the build phase: task s writes only
  // per_shard[s], ParallelFor joins before the gather reads.
  std::vector<std::vector<SearchResult>> per_shard(shards_.size());
  pool().ParallelFor(shards_.size(), [&](std::size_t s) {
    const DashEngine& shard = shards_[s];
    TopKSearcher searcher(shard.index(), shard.catalog(), shard.graph(),
                          shard.selection(), &shard.app(), idf);
    per_shard[s] = searcher.Search(keywords, k, min_page_words);
  });
  // Gather: merge by score and keep k. Ties break on the members'
  // fragment identifiers — shard-local handles are not comparable across
  // shards, but identifier rows are, and within one shard ascending
  // handles == ascending identifiers (canonical catalogs). This makes the
  // merged order identical to what an unsharded searcher reports, URLs
  // included (distinct member sets can render the same URL).
  struct Gathered {
    SearchResult result;
    std::vector<db::Row> member_ids;
  };
  std::vector<Gathered> merged;
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const FragmentCatalog& catalog = shards_[s].catalog();
    for (SearchResult& r : per_shard[s]) {
      Gathered g;
      g.member_ids.reserve(r.fragments.size());
      for (FragmentHandle f : r.fragments) g.member_ids.push_back(catalog.id(f));
      g.result = std::move(r);
      merged.push_back(std::move(g));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Gathered& a, const Gathered& b) {
              if (a.result.score != b.result.score) {
                return a.result.score > b.result.score;
              }
              return a.member_ids < b.member_ids;
            });
  if (k >= 0 && merged.size() > static_cast<std::size_t>(k)) {
    merged.resize(static_cast<std::size_t>(k));
  }
  std::vector<SearchResult> out;
  out.reserve(merged.size());
  for (Gathered& g : merged) out.push_back(std::move(g.result));
  return out;
}

}  // namespace dash::core
