#include "core/sharded_engine.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace dash::core {

namespace {

// Shard assignment: hash of the equality-value prefix, so whole equality
// groups stay together (with no equality attributes there is one group and
// sharding degenerates to a single non-empty shard, which is correct: the
// group cannot be split without breaking page assembly).
std::size_t ShardOf(const db::Row& id, std::size_t num_eq,
                    std::size_t num_shards) {
  std::size_t h = 1469598103934665603ULL;
  for (std::size_t d = 0; d < num_eq; ++d) {
    h ^= id[d].Hash();
    h *= 1099511628211ULL;
  }
  return h % num_shards;
}

}  // namespace

ShardedEngine::ShardedEngine(webapp::WebAppInfo app, FragmentIndexBuild build,
                             int num_shards) {
  if (num_shards < 1) {
    throw std::invalid_argument("need at least one shard");
  }
  std::size_t num_eq = 0;
  for (const sql::SelectionAttribute& a : app.query.SelectionAttributes()) {
    if (!a.is_range) ++num_eq;
  }

  // Route each fragment to its shard; ascending handle order keeps every
  // shard catalog canonical.
  const std::size_t n = static_cast<std::size_t>(num_shards);
  std::vector<FragmentIndexBuild> parts(n);
  std::vector<std::pair<std::size_t, FragmentHandle>> route(
      build.catalog.size());
  for (std::size_t f = 0; f < build.catalog.size(); ++f) {
    auto handle = static_cast<FragmentHandle>(f);
    std::size_t shard = ShardOf(build.catalog.id(handle), num_eq, n);
    route[f] = {shard, parts[shard].catalog.Intern(build.catalog.id(handle))};
  }
  for (const auto& [keyword, df] : build.index.KeywordsByDf()) {
    global_df_[keyword] = df;
    for (const Posting& p : build.index.Lookup(keyword)) {
      auto [shard, local] = route[p.fragment];
      parts[shard].index.AddOccurrences(keyword, local, p.occurrences);
    }
  }
  shards_.reserve(n);
  for (FragmentIndexBuild& part : parts) {
    part.index.Finalize(&part.catalog);
    shards_.push_back(DashEngine::FromParts(app, std::move(part)));
  }
}

std::size_t ShardedEngine::fragment_count() const {
  std::size_t total = 0;
  for (const DashEngine& shard : shards_) total += shard.catalog().size();
  return total;
}

std::vector<SearchResult> ShardedEngine::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words) const {
  // Globally consistent IDF from the partition-time document frequencies.
  IdfProvider idf = [this](const std::string& keyword) {
    auto it = global_df_.find(keyword);
    return it == global_df_.end() || it->second == 0
               ? 0.0
               : 1.0 / static_cast<double>(it->second);
  };

  // Scatter: every shard computes its local top-k with global scoring, in
  // parallel (each shard's index is independent and searching is const).
  std::vector<std::vector<SearchResult>> per_shard(shards_.size());
  {
    std::vector<std::thread> workers;
    workers.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      workers.emplace_back([&, s] {
        const DashEngine& shard = shards_[s];
        TopKSearcher searcher(shard.index(), shard.catalog(), shard.graph(),
                              shard.selection(), &shard.app(), idf);
        per_shard[s] = searcher.Search(keywords, k, min_page_words);
      });
    }
    for (std::thread& t : workers) t.join();
  }
  std::vector<SearchResult> merged;
  for (std::vector<SearchResult>& results : per_shard) {
    for (SearchResult& r : results) merged.push_back(std::move(r));
  }
  // Gather: merge by score (ties: URL, for determinism) and keep k.
  std::sort(merged.begin(), merged.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.url < b.url;
            });
  if (k >= 0 && merged.size() > static_cast<std::size_t>(k)) {
    merged.resize(static_cast<std::size_t>(k));
  }
  return merged;
}

}  // namespace dash::core
