#include "core/sharded_engine.h"

#include <algorithm>
#include <stdexcept>

namespace dash::core {

namespace {

// Shard assignment: hash of the equality-value prefix, so whole equality
// groups stay together (with no equality attributes there is one group and
// sharding degenerates to a single non-empty shard, which is correct: the
// group cannot be split without breaking page assembly).
std::size_t ShardOf(const db::Row& id, std::size_t num_eq,
                    std::size_t num_shards) {
  std::size_t h = 1469598103934665603ULL;
  for (std::size_t d = 0; d < num_eq; ++d) {
    h ^= id[d].Hash();
    h *= 1099511628211ULL;
  }
  return h % num_shards;
}

}  // namespace

ShardedEngine::ShardedEngine(webapp::WebAppInfo app, FragmentIndexBuild build,
                             int num_shards, util::ThreadPool* pool)
    : ShardedEngine(IndexSnapshot::Create(std::move(app), std::move(build)),
                    num_shards, pool) {}

ShardedEngine::ShardedEngine(SnapshotPtr snapshot, int num_shards,
                             util::ThreadPool* pool)
    : snapshot_(std::move(snapshot)), pool_(pool) {
  if (num_shards < 1) {
    throw std::invalid_argument("need at least one shard");
  }
  if (snapshot_ == nullptr) {
    throw std::invalid_argument("ShardedEngine: snapshot must not be null");
  }
  shard_count_ = static_cast<std::size_t>(num_shards);

  // Route each fragment to its shard.
  const FragmentCatalog& catalog = snapshot_->catalog();
  const std::size_t num_eq = snapshot_->graph().num_eq_attributes();
  shard_of_.resize(catalog.size());
  shard_sizes_.assign(shard_count_, 0);
  for (std::size_t f = 0; f < catalog.size(); ++f) {
    auto handle = static_cast<FragmentHandle>(f);
    shard_of_[f] = static_cast<std::uint32_t>(
        ShardOf(catalog.id(handle), num_eq, shard_count_));
    ++shard_sizes_[shard_of_[f]];
  }

  // Rearrange the index's by-fragment pool into per-(term, shard) groups:
  // a per-term stable counting sort on the shard key keeps each group
  // fragment-ascending. Terms are independent, so the sort scatters
  // across the pool; each task writes only its own term's pool slice and
  // offset row (disjoint slots, ParallelFor's join is the read barrier —
  // the same invariant the old per-shard build relied on).
  const InvertedFragmentIndex& index = snapshot_->index();
  const std::size_t terms = index.keyword_count();
  const std::size_t row = shard_count_ + 1;
  seed_offsets_.assign(terms * row, 0);
  std::vector<std::uint32_t> term_base(terms, 0);
  std::uint32_t base = 0;
  for (std::size_t t = 0; t < terms; ++t) {
    term_base[t] = base;
    base += static_cast<std::uint32_t>(
        index.PostingsByFragment(static_cast<util::TermId>(t)).size());
  }
  seed_pool_.resize(base);
  this->pool().ParallelFor(terms, [&](std::size_t t) {
    std::span<const Posting> span =
        index.PostingsByFragment(static_cast<util::TermId>(t));
    std::uint32_t* off = &seed_offsets_[t * row];
    for (const Posting& p : span) ++off[shard_of_[p.fragment] + 1];
    off[0] = term_base[t];
    for (std::size_t s = 1; s <= shard_count_; ++s) off[s] += off[s - 1];
    // Reused per worker thread so the placement pass allocates nothing in
    // steady state (the construction-cost test counts on this).
    static thread_local std::vector<std::uint32_t> cursor;
    cursor.assign(off, off + shard_count_);
    for (const Posting& p : span) {
      seed_pool_[cursor[shard_of_[p.fragment]]++] = p;
    }
  });
}

std::span<const Posting> ShardedEngine::SeedSpan(util::TermId term,
                                                 std::size_t shard) const {
  if (term == util::kInvalidTermId) return {};
  const std::uint32_t* off = &seed_offsets_[term * (shard_count_ + 1)];
  return {seed_pool_.data() + off[shard], off[shard + 1] - off[shard]};
}

std::vector<SearchResult> ShardedEngine::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words) const {
  // Scatter: every shard computes its local top-k against the shared
  // snapshot, restricted to its own fragments via the seed spans. IDF
  // needs no correction — the shared index's df IS the global df. Each
  // task writes only per_shard[s]; ParallelFor joins before the gather
  // reads, so the merge order is thread-count-free.
  const IndexSnapshot& snap = *snapshot_;
  std::vector<std::vector<SearchResult>> per_shard(shard_count_);
  pool().ParallelFor(shard_count_, [&](std::size_t s) {
    TopKSearcher searcher(
        snap.index(), snap.catalog(), snap.graph(), snap.selection(),
        snap.has_app() ? &snap.app() : nullptr, /*idf=*/nullptr,
        [this, s](util::TermId term) { return SeedSpan(term, s); });
    per_shard[s] = searcher.Search(keywords, k, min_page_words);
  });
  // Gather: merge by score and keep k. Every shard reports *global*
  // fragment handles, and ascending handles == ascending identifier rows
  // in a canonical catalog, so sorting on (score desc, fragments asc)
  // reproduces exactly what an unsharded searcher reports (its own output
  // order uses the same key). Member sets never repeat across shards —
  // shards partition the fragments — so the key is unique.
  std::vector<SearchResult> merged;
  for (std::vector<SearchResult>& shard_results : per_shard) {
    for (SearchResult& r : shard_results) merged.push_back(std::move(r));
  }
  std::sort(merged.begin(), merged.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.fragments < b.fragments;
            });
  if (k >= 0 && merged.size() > static_cast<std::size_t>(k)) {
    merged.resize(static_cast<std::size_t>(k));
  }
  return merged;
}

}  // namespace dash::core
