#include "core/fragment_graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/stopwatch.h"

namespace dash::core {

namespace {

// True iff id[num_eq..] of `mid` lies within the componentwise min/max box
// of `a` and `b` (inclusive). Precondition: same equality prefix.
bool InBox(const db::Row& a, const db::Row& b, const db::Row& mid,
           std::size_t num_eq) {
  for (std::size_t d = num_eq; d < a.size(); ++d) {
    const db::Value& lo = a[d] <= b[d] ? a[d] : b[d];
    const db::Value& hi = a[d] <= b[d] ? b[d] : a[d];
    if (mid[d] < lo || hi < mid[d]) return false;
  }
  return true;
}

}  // namespace

FragmentGraph FragmentGraph::Build(const FragmentCatalog& catalog,
                                   std::size_t num_eq, std::size_t num_range) {
  util::Stopwatch watch;
  FragmentGraph graph;
  graph.num_eq_ = num_eq;
  graph.num_range_ = num_range;
  const std::size_t n = catalog.size();
  graph.adjacency_.resize(n);
  graph.group_of_.resize(n);

  // Sanity: handles must be canonical (identifiers ascending), which makes
  // equality groups contiguous and range-sorted.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!(catalog.id(static_cast<FragmentHandle>(i)) <
          catalog.id(static_cast<FragmentHandle>(i + 1)))) {
      throw std::logic_error(
          "FragmentGraph::Build requires a canonicalized catalog");
    }
  }

  auto same_group = [&](std::size_t a, std::size_t b) {
    const db::Row& ra = catalog.id(static_cast<FragmentHandle>(a));
    const db::Row& rb = catalog.id(static_cast<FragmentHandle>(b));
    for (std::size_t d = 0; d < num_eq; ++d) {
      if (!(ra[d] == rb[d])) return false;
    }
    return true;
  };

  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = begin + 1;
    while (end < n && same_group(begin, end)) ++end;
    std::uint32_t g = static_cast<std::uint32_t>(graph.groups_.size());
    graph.groups_.emplace_back(static_cast<FragmentHandle>(begin),
                               static_cast<FragmentHandle>(end - 1));
    for (std::size_t i = begin; i < end; ++i) {
      graph.group_of_[i] = g;
    }

    if (num_range <= 1) {
      // Pre-sorted fast path: with one range attribute, combinable-without-
      // covering-others is exactly sorted adjacency; with none, no two
      // distinct fragments ever share a page.
      if (num_range == 1) {
        for (std::size_t i = begin; i + 1 < end; ++i) {
          graph.adjacency_[i].push_back(static_cast<FragmentHandle>(i + 1));
          graph.adjacency_[i + 1].push_back(static_cast<FragmentHandle>(i));
        }
      }
    } else {
      // Generic incremental insertion (paper Section VI-A): add fragments
      // one by one; adding f removes any edge whose box now covers f and
      // links f to every node whose box with f is empty of current nodes.
      std::vector<std::size_t> present;  // indices inserted so far
      for (std::size_t f = begin; f < end; ++f) {
        const db::Row& rf = catalog.id(static_cast<FragmentHandle>(f));
        // Remove edges whose box now covers f.
        std::vector<std::pair<FragmentHandle, FragmentHandle>> doomed;
        for (std::size_t a : present) {
          for (FragmentHandle b : graph.adjacency_[a]) {
            if (static_cast<std::size_t>(b) > a &&
                InBox(catalog.id(static_cast<FragmentHandle>(a)),
                      catalog.id(b), rf, num_eq)) {
              doomed.emplace_back(static_cast<FragmentHandle>(a), b);
            }
          }
        }
        for (auto [a, b] : doomed) {
          auto& fa = graph.adjacency_[a];
          auto& fb = graph.adjacency_[b];
          fa.erase(std::find(fa.begin(), fa.end(), b));
          fb.erase(std::find(fb.begin(), fb.end(), a));
        }
        // Connect f to nodes with an empty box.
        for (std::size_t a : present) {
          const db::Row& ra = catalog.id(static_cast<FragmentHandle>(a));
          bool blocked = false;
          for (std::size_t m : present) {
            if (m == a) continue;
            if (InBox(ra, rf, catalog.id(static_cast<FragmentHandle>(m)),
                      num_eq)) {
              blocked = true;
              break;
            }
          }
          if (!blocked) {
            graph.adjacency_[a].push_back(static_cast<FragmentHandle>(f));
            graph.adjacency_[f].push_back(static_cast<FragmentHandle>(a));
          }
        }
        present.push_back(f);
      }
    }
    begin = end;
  }

  for (auto& adj : graph.adjacency_) std::sort(adj.begin(), adj.end());

  graph.stats_.build_seconds = watch.ElapsedSeconds();
  graph.stats_.nodes = n;
  graph.stats_.edges = graph.edge_count();
  return graph;
}

std::size_t FragmentGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

}  // namespace dash::core
