#include "core/index_snapshot.h"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace dash::core {

namespace {

// Process-wide generation source (see NextSnapshotGeneration in the
// header for why it is global rather than per publisher).
std::atomic<std::uint64_t> g_next_generation{0};

}  // namespace

std::uint64_t NextSnapshotGeneration() {
  return g_next_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

IndexSnapshot::IndexSnapshot(webapp::WebAppInfo app, bool has_app,
                             std::vector<sql::SelectionAttribute> selection,
                             FragmentIndexBuild build)
    : app_(std::move(app)),
      has_app_(has_app),
      selection_(std::move(selection)),
      build_(std::move(build)),
      generation_(NextSnapshotGeneration()) {
  std::size_t num_eq = 0;
  for (const sql::SelectionAttribute& a : selection_) {
    if (!a.is_range) ++num_eq;
  }
  graph_ = FragmentGraph::Build(build_.catalog, num_eq,
                                selection_.size() - num_eq);
}

SnapshotPtr IndexSnapshot::Create(webapp::WebAppInfo app,
                                  FragmentIndexBuild build) {
  std::vector<sql::SelectionAttribute> selection =
      app.query.SelectionAttributes();
  return Create(std::move(app), std::move(selection), std::move(build));
}

SnapshotPtr IndexSnapshot::Create(
    webapp::WebAppInfo app, std::vector<sql::SelectionAttribute> selection,
    FragmentIndexBuild build) {
  return SnapshotPtr(new IndexSnapshot(std::move(app), /*has_app=*/true,
                                       std::move(selection),
                                       std::move(build)));
}

SnapshotPtr IndexSnapshot::CreateWithoutApp(const sql::PsjQuery& query,
                                            FragmentIndexBuild build) {
  return SnapshotPtr(new IndexSnapshot(webapp::WebAppInfo{},
                                       /*has_app=*/false,
                                       query.SelectionAttributes(),
                                       std::move(build)));
}

std::vector<SearchResult> IndexSnapshot::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words, std::size_t max_seeds) const {
  // The searcher only binds references into this snapshot, so constructing
  // one per call is free and needs no synchronization.
  TopKSearcher searcher(build_.index, build_.catalog, graph_, selection_,
                        has_app_ ? &app_ : nullptr);
  return searcher.Search(keywords, k, min_page_words, max_seeds);
}

SnapshotPublisher::SnapshotPublisher(SnapshotPtr initial) {
  if (initial != nullptr) Publish(std::move(initial));
}

SnapshotPtr SnapshotPublisher::Current() const {
  util::MutexLock lock(mutex_);
  return current_;
}

void SnapshotPublisher::Publish(SnapshotPtr next) {
  if (next == nullptr) {
    throw std::invalid_argument("Publish: snapshot must not be null");
  }
  util::MutexLock lock(mutex_);
  if (current_ != nullptr && next->generation() <= current_->generation()) {
    throw std::logic_error("Publish: generations must increase");
  }
  current_ = std::move(next);
}

std::uint64_t SnapshotPublisher::CurrentGeneration() const {
  util::MutexLock lock(mutex_);
  return current_ == nullptr ? 0 : current_->generation();
}

}  // namespace dash::core
