#include "core/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dash::core {

void InvertedFragmentIndex::AddOccurrences(std::string_view keyword,
                                           FragmentHandle fragment,
                                           std::uint32_t occurrences) {
  if (finalized_) {
    throw std::logic_error("AddOccurrences after Finalize");
  }
  if (occurrences == 0) return;
  lists_[std::string(keyword)].push_back(Posting{fragment, occurrences});
}

void InvertedFragmentIndex::Finalize(FragmentCatalog* catalog) {
  if (finalized_) throw std::logic_error("Finalize called twice");
  for (auto& [keyword, list] : lists_) {
    // Merge duplicate fragment entries accumulated across records/relations.
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) {
                return a.fragment < b.fragment;
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < list.size();) {
      Posting merged = list[i];
      std::size_t j = i + 1;
      while (j < list.size() && list[j].fragment == merged.fragment) {
        merged.occurrences += list[j].occurrences;
        ++j;
      }
      list[out++] = merged;
      i = j;
    }
    list.resize(out);
    // Inverted-list order: TF descending, handle ascending for determinism.
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) {
                if (a.occurrences != b.occurrences)
                  return a.occurrences > b.occurrences;
                return a.fragment < b.fragment;
              });
    if (catalog != nullptr) {
      std::size_t kh = std::hash<std::string>()(keyword);
      for (const Posting& p : list) {
        catalog->AddKeywords(p.fragment, p.occurrences);
        // Commutative (keyword, occurrences) fingerprint; see
        // FragmentCatalog::MixContentHash.
        std::uint64_t h = (kh ^ (kh >> 29)) * 0x9E3779B97F4A7C15ULL +
                          p.occurrences;
        catalog->MixContentHash(p.fragment, h * 0xBF58476D1CE4E5B9ULL);
      }
    }
  }
  finalized_ = true;
}

void InvertedFragmentIndex::RemapFragments(
    const std::vector<FragmentHandle>& mapping) {
  for (auto& [keyword, list] : lists_) {
    for (Posting& p : list) p.fragment = mapping[p.fragment];
    // Re-apply the deterministic tiebreak under the new handles.
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) {
                if (a.occurrences != b.occurrences)
                  return a.occurrences > b.occurrences;
                return a.fragment < b.fragment;
              });
  }
}

std::span<const Posting> InvertedFragmentIndex::Lookup(
    std::string_view keyword) const {
  auto it = lists_.find(std::string(keyword));
  if (it == lists_.end()) return {};
  return it->second;
}

double InvertedFragmentIndex::Idf(std::string_view keyword) const {
  std::size_t df = Df(keyword);
  return df == 0 ? 0.0 : 1.0 / static_cast<double>(df);
}

std::size_t InvertedFragmentIndex::posting_count() const {
  std::size_t n = 0;
  for (const auto& [_, list] : lists_) n += list.size();
  return n;
}

std::size_t InvertedFragmentIndex::SizeBytes() const {
  std::size_t bytes = 0;
  for (const auto& [keyword, list] : lists_) {
    bytes += keyword.size() + list.size() * sizeof(Posting);
  }
  return bytes;
}

std::vector<std::pair<std::string, std::size_t>>
InvertedFragmentIndex::KeywordsByDf() const {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(lists_.size());
  for (const auto& [keyword, list] : lists_) {
    out.emplace_back(keyword, list.size());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string InvertedFragmentIndex::ToDebugString(
    const FragmentCatalog& catalog, std::size_t max_keywords) const {
  std::vector<std::string> keywords;
  keywords.reserve(lists_.size());
  for (const auto& [keyword, _] : lists_) keywords.push_back(keyword);
  std::sort(keywords.begin(), keywords.end());
  if (max_keywords != 0 && keywords.size() > max_keywords) {
    keywords.resize(max_keywords);
  }
  std::string out;
  for (const std::string& keyword : keywords) {
    out += keyword;
    out += " ->";
    for (const Posting& p : Lookup(keyword)) {
      out += " ";
      out += FragmentIdToString(catalog.id(p.fragment));
      out += ":";
      out += std::to_string(p.occurrences);
    }
    out += "\n";
  }
  return out;
}

}  // namespace dash::core
