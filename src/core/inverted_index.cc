#include "core/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/thread_pool.h"

namespace dash::core {

namespace {

// Inverted-list order: TF descending, handle ascending for determinism.
inline bool TfOrder(const Posting& a, const Posting& b) {
  if (a.occurrences != b.occurrences) return a.occurrences > b.occurrences;
  return a.fragment < b.fragment;
}

inline bool FragmentOrder(const Posting& a, const Posting& b) {
  return a.fragment < b.fragment;
}

// Merge duplicate fragment entries accumulated across records/relations,
// then establish the inverted-list order. In-place on one term's list.
void MergeAndSort(std::vector<Posting>& list) {
  std::sort(list.begin(), list.end(), FragmentOrder);
  std::size_t out = 0;
  for (std::size_t i = 0; i < list.size();) {
    Posting merged = list[i];
    std::size_t j = i + 1;
    while (j < list.size() && list[j].fragment == merged.fragment) {
      merged.occurrences += list[j].occurrences;
      ++j;
    }
    list[out++] = merged;
    i = j;
  }
  list.resize(out);
  std::sort(list.begin(), list.end(), TfOrder);
}

}  // namespace

void InvertedFragmentIndex::AddOccurrences(std::string_view keyword,
                                           FragmentHandle fragment,
                                           std::uint32_t occurrences) {
  if (finalized_) {
    throw std::logic_error("AddOccurrences after Finalize");
  }
  if (occurrences == 0) return;
  util::TermId id = dict_.Intern(keyword);
  if (id >= building_.size()) building_.resize(id + 1);
  building_[id].push_back(Posting{fragment, occurrences});
}

void InvertedFragmentIndex::Finalize(FragmentCatalog* catalog,
                                     util::ThreadPool* pool) {
  if (finalized_) throw std::logic_error("Finalize called twice");
  const std::size_t n = building_.size();

  // Per-term merge + sort: terms are independent, so this is the
  // data-parallel part.
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    pool->ParallelFor(n, [this](std::size_t t) { MergeAndSort(building_[t]); });
  } else {
    for (std::size_t t = 0; t < n; ++t) MergeAndSort(building_[t]);
  }

  // Flatten into the contiguous pools.
  std::size_t total = 0;
  spans_.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    spans_[t].offset = total;
    spans_[t].length = static_cast<std::uint32_t>(building_[t].size());
    total += building_[t].size();
  }
  pool_.reserve(total);
  for (std::size_t t = 0; t < n; ++t) {
    pool_.insert(pool_.end(), building_[t].begin(), building_[t].end());
  }
  building_.clear();
  building_.shrink_to_fit();

  by_fragment_ = pool_;
  auto resort_span = [this](std::size_t t) {
    auto begin = by_fragment_.begin() +
                 static_cast<std::ptrdiff_t>(spans_[t].offset);
    std::sort(begin, begin + spans_[t].length, FragmentOrder);
  };
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    pool->ParallelFor(n, resort_span);
  } else {
    for (std::size_t t = 0; t < n; ++t) resort_span(t);
  }

  // Catalog crediting stays sequential: AddKeywords/MixContentHash are
  // commutative, but the catalog itself is not thread-safe.
  if (catalog != nullptr) {
    for (std::size_t t = 0; t < n; ++t) {
      std::string_view keyword = dict_.term(static_cast<util::TermId>(t));
      std::size_t kh = std::hash<std::string_view>()(keyword);
      for (const Posting& p : LookupId(static_cast<util::TermId>(t))) {
        catalog->AddKeywords(p.fragment, p.occurrences);
        // Commutative (keyword, occurrences) fingerprint; see
        // FragmentCatalog::MixContentHash.
        std::uint64_t h = (kh ^ (kh >> 29)) * 0x9E3779B97F4A7C15ULL +
                          p.occurrences;
        catalog->MixContentHash(p.fragment, h * 0xBF58476D1CE4E5B9ULL);
      }
    }
  }
  finalized_ = true;
}

void InvertedFragmentIndex::RemapFragments(
    const std::vector<FragmentHandle>& mapping) {
  if (!finalized_) {
    for (auto& list : building_) {
      for (Posting& p : list) p.fragment = mapping[p.fragment];
    }
    return;
  }
  for (Posting& p : pool_) p.fragment = mapping[p.fragment];
  // Re-apply the deterministic orders under the new handles.
  for (const TermSpan& span : spans_) {
    auto begin = pool_.begin() + static_cast<std::ptrdiff_t>(span.offset);
    std::sort(begin, begin + span.length, TfOrder);
  }
  by_fragment_ = pool_;
  for (const TermSpan& span : spans_) {
    auto begin =
        by_fragment_.begin() + static_cast<std::ptrdiff_t>(span.offset);
    std::sort(begin, begin + span.length, FragmentOrder);
  }
}

std::span<const Posting> InvertedFragmentIndex::LookupId(
    util::TermId term) const {
  if (term == util::kInvalidTermId || term >= spans_.size()) return {};
  const TermSpan& span = spans_[term];
  return {pool_.data() + span.offset, span.length};
}

std::span<const Posting> InvertedFragmentIndex::PostingsByFragment(
    util::TermId term) const {
  if (term == util::kInvalidTermId || term >= spans_.size()) return {};
  const TermSpan& span = spans_[term];
  return {by_fragment_.data() + span.offset, span.length};
}

double InvertedFragmentIndex::Idf(std::string_view keyword) const {
  return IdfId(dict_.Find(keyword));
}

double InvertedFragmentIndex::IdfId(util::TermId term) const {
  std::size_t df = LookupId(term).size();
  return df == 0 ? 0.0 : 1.0 / static_cast<double>(df);
}

std::size_t InvertedFragmentIndex::posting_count() const {
  if (finalized_) return pool_.size();
  std::size_t n = 0;
  for (const auto& list : building_) n += list.size();
  return n;
}

std::size_t InvertedFragmentIndex::SizeBytes() const {
  std::size_t bytes = dict_.term_bytes() +
                      spans_.size() * sizeof(TermSpan) +
                      (pool_.size() + by_fragment_.size()) * sizeof(Posting);
  for (const auto& list : building_) {
    bytes += list.capacity() * sizeof(Posting);
  }
  return bytes;
}

std::vector<std::pair<std::string, std::size_t>>
InvertedFragmentIndex::KeywordsByDf() const {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(dict_.size());
  for (std::size_t t = 0; t < dict_.size(); ++t) {
    auto id = static_cast<util::TermId>(t);
    std::size_t df = finalized_ ? spans_[t].length : building_[t].size();
    out.emplace_back(std::string(dict_.term(id)), df);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string InvertedFragmentIndex::ToDebugString(
    const FragmentCatalog& catalog, std::size_t max_keywords) const {
  std::vector<std::string_view> keywords;
  keywords.reserve(dict_.size());
  for (std::size_t t = 0; t < dict_.size(); ++t) {
    keywords.push_back(dict_.term(static_cast<util::TermId>(t)));
  }
  std::sort(keywords.begin(), keywords.end());
  if (max_keywords != 0 && keywords.size() > max_keywords) {
    keywords.resize(max_keywords);
  }
  std::string out;
  for (std::string_view keyword : keywords) {
    out += keyword;
    out += " ->";
    for (const Posting& p : Lookup(keyword)) {
      out += " ";
      out += FragmentIdToString(catalog.id(p.fragment));
      out += ":";
      out += std::to_string(p.occurrences);
    }
    out += "\n";
  }
  return out;
}

}  // namespace dash::core
