// Incremental fragment-index maintenance — the paper's first future-work
// item (Section VIII): "in presence of updates in an underlying database, a
// fragment index would become outdated ... efficient update mechanisms that
// can efficiently update (affected portions of) a fragment index are
// desirable".
//
// UpdatableIndex owns a copy of the database and keeps a mutable mirror of
// the fragment index (per-fragment keyword counts). On a record insert or
// delete it:
//
//   1. finds the *affected fragments* — the identifiers of joined rows the
//      changed record participates in — by joining only the slice of each
//      relation reachable from the changed record along the join edges
//      (never re-joining the whole database);
//   2. recomputes exactly those fragments, by evaluating the crawling query
//      with the selection-attribute relations filtered to the affected
//      identifier values (this also repairs outer-join padding transitions:
//      a restaurant gaining its first comment loses its NULL-padded row);
//   3. swaps the recomputed contents into the mirror, builds the next
//      IndexSnapshot off to the side, and publishes it atomically.
//
// Serving state is an immutable IndexSnapshot behind a SnapshotPublisher:
// a Search racing an Insert/Delete sees the snapshot from before or after
// the update — never a torn index. Writers (Insert/Delete) must be
// externally serialized; readers need no synchronization at all. Tests
// validate both the equivalence with a full rebuild and that the number of
// recomputed fragments stays far below the catalog size.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "core/crawler.h"
#include "core/index_snapshot.h"
#include "db/database.h"
#include "webapp/query_string.h"

namespace dash::core {

class UpdatableIndex {
 public:
  // Takes ownership of a database snapshot and builds + publishes the
  // initial snapshot with a full crawl. Snapshots published by this form
  // carry no app info (search results have empty URLs).
  UpdatableIndex(db::Database db, sql::PsjQuery query);

  // Same, but published snapshots carry `app` so searches formulate URLs.
  UpdatableIndex(db::Database db, webapp::WebAppInfo app);

  // Appends `row` to `relation`, repairs the affected fragments, and
  // publishes the next snapshot.
  void Insert(const std::string& relation, db::Row row);

  // Removes the first row of `relation` equal to `row`; throws
  // std::runtime_error when absent. Publishes the next snapshot.
  void Delete(const std::string& relation, const db::Row& row);

  const db::Database& database() const { return db_; }

  // The currently published immutable snapshot. Safe to call (and to keep
  // searching the result) from any thread while updates are applied.
  SnapshotPtr snapshot() const { return publisher_.Current(); }

  // The publication point itself, e.g. to back a CachingEngine that must
  // follow republications automatically.
  const SnapshotPublisher& publisher() const { return publisher_; }

  // Convenience accessors into the currently published snapshot. The
  // references are invalidated by the next Insert/Delete — concurrent
  // readers must hold a snapshot() instead.
  const FragmentIndexBuild& build() const { return current_->build(); }
  const FragmentGraph& graph() const { return current_->graph(); }

  // Independent copy of the current index state, e.g. to hand to
  // DashEngine::FromParts for a serving engine that outlives this updater.
  FragmentIndexBuild CopyBuild() const;

  // Number of live fragments in the mirror.
  std::size_t fragment_count() const { return fragments_.size(); }

  // Cumulative count of fragments recomputed by updates (the work an
  // update costs, versus fragment_count() for a full rebuild).
  std::size_t fragments_recomputed() const { return fragments_recomputed_; }

 private:
  struct MirrorFragment {
    std::map<std::string, std::uint64_t> keyword_counts;
    std::uint64_t total_keywords = 0;
    std::size_t record_count = 0;
  };

  // Shared tail of the constructors: crawls db_ into the mirror and
  // publishes the first snapshot.
  void Init();

  // Fragment identifiers of joined rows involving `row` (evaluated on the
  // current db_ state); superset-safe.
  std::set<db::Row> AffectedFragments(const std::string& relation,
                                      const db::Row& row) const;
  void RecomputeFragments(const std::set<db::Row>& ids);

  // Materializes the mirror into the next snapshot and publishes it.
  void PublishSnapshot();

  db::Database db_;
  sql::PsjQuery query_;
  std::optional<webapp::WebAppInfo> app_;
  std::unique_ptr<Crawler> crawler_;  // bound to db_
  std::map<db::Row, MirrorFragment> fragments_;
  std::size_t fragments_recomputed_ = 0;

  SnapshotPublisher publisher_;
  // Latest published snapshot, pinned so build()/graph() references stay
  // valid between updates even if all external holders drop theirs.
  SnapshotPtr current_;
};

}  // namespace dash::core
