// Incremental fragment-index maintenance — the paper's first future-work
// item (Section VIII): "in presence of updates in an underlying database, a
// fragment index would become outdated ... efficient update mechanisms that
// can efficiently update (affected portions of) a fragment index are
// desirable".
//
// UpdatableIndex owns a copy of the database and keeps a mutable mirror of
// the fragment index (per-fragment keyword counts). On a record insert or
// delete it:
//
//   1. finds the *affected fragments* — the identifiers of joined rows the
//      changed record participates in — by joining only the slice of each
//      relation reachable from the changed record along the join edges
//      (never re-joining the whole database);
//   2. recomputes exactly those fragments, by evaluating the crawling query
//      with the selection-attribute relations filtered to the affected
//      identifier values (this also repairs outer-join padding transitions:
//      a restaurant gaining its first comment loses its NULL-padded row);
//   3. swaps the recomputed contents into the mirror.
//
// Search snapshots (InvertedFragmentIndex / FragmentGraph) are immutable by
// design, so they are re-materialized lazily from the mirror on demand —
// an in-memory reshuffle, not a database recrawl. Tests validate both the
// equivalence with a full rebuild and that the number of recomputed
// fragments stays far below the catalog size.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "core/crawler.h"
#include "core/fragment_graph.h"
#include "core/inverted_index.h"
#include "db/database.h"

namespace dash::core {

class UpdatableIndex {
 public:
  // Takes ownership of a database snapshot and builds the initial mirror
  // with a full crawl.
  UpdatableIndex(db::Database db, sql::PsjQuery query);

  // Appends `row` to `relation` and repairs the affected fragments.
  void Insert(const std::string& relation, db::Row row);

  // Removes the first row of `relation` equal to `row`; throws
  // std::runtime_error when absent.
  void Delete(const std::string& relation, const db::Row& row);

  const db::Database& database() const { return db_; }

  // Current searchable snapshot; re-materialized after updates.
  const FragmentIndexBuild& build() const;
  const FragmentGraph& graph() const;

  // Independent copy of the current snapshot, e.g. to hand to
  // DashEngine::FromParts for a serving engine that outlives this updater.
  FragmentIndexBuild CopyBuild() const;

  // Number of live fragments in the mirror.
  std::size_t fragment_count() const { return fragments_.size(); }

  // Cumulative count of fragments recomputed by updates (the work an
  // update costs, versus fragment_count() for a full rebuild).
  std::size_t fragments_recomputed() const { return fragments_recomputed_; }

 private:
  struct MirrorFragment {
    std::map<std::string, std::uint64_t> keyword_counts;
    std::uint64_t total_keywords = 0;
    std::size_t record_count = 0;
  };

  // Fragment identifiers of joined rows involving `row` (evaluated on the
  // current db_ state); superset-safe.
  std::set<db::Row> AffectedFragments(const std::string& relation,
                                      const db::Row& row) const;
  void RecomputeFragments(const std::set<db::Row>& ids);
  void InvalidateSnapshot();

  db::Database db_;
  sql::PsjQuery query_;
  std::unique_ptr<Crawler> crawler_;  // bound to db_
  std::map<db::Row, MirrorFragment> fragments_;
  std::size_t fragments_recomputed_ = 0;

  mutable std::unique_ptr<FragmentIndexBuild> snapshot_;
  mutable std::unique_ptr<FragmentGraph> snapshot_graph_;
};

}  // namespace dash::core
