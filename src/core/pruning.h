// Crawl-scope / efficiency tradeoff — the paper's third future-work item
// (Section VIII): "our discussion simply considered that all db-page
// fragments are needed to be derived. There exists a tradeoff between (i)
// the amount of db-page fragments to be collected and (ii) crawling and
// index efficiency."
//
// PruneFragments drops fragments with fewer than `min_keywords` keywords
// from a built index (the long tail of near-empty fragments that bloat the
// catalog and graph while carrying almost no searchable content) and
// reports what was given up. The ablation bench (bench_pruning) sweeps the
// threshold to chart index size against keyword recall.
#pragma once

#include <cstdint>

#include "core/inverted_index.h"

namespace dash::core {

struct PruneStats {
  std::size_t kept_fragments = 0;
  std::size_t dropped_fragments = 0;
  std::size_t kept_keywords = 0;      // distinct keywords still indexed
  std::size_t dropped_keywords = 0;   // distinct keywords lost entirely
  std::size_t index_bytes_before = 0;
  std::size_t index_bytes_after = 0;

  double KeywordRecall() const {
    std::size_t total = kept_keywords + dropped_keywords;
    return total == 0 ? 1.0
                      : static_cast<double>(kept_keywords) /
                            static_cast<double>(total);
  }
};

// Returns a new build containing only fragments with at least
// `min_keywords` keywords. Handles stay canonical. `stats` is optional.
FragmentIndexBuild PruneFragments(const FragmentIndexBuild& build,
                                  std::uint64_t min_keywords,
                                  PruneStats* stats = nullptr);

}  // namespace dash::core
