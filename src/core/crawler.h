// Reference (single-node) database crawler, plus join-plan helpers shared
// by the MR pipelines and the incremental updater.
//
// Resolves a parameterized PSJ query against the catalog (join plan,
// selection attributes, projection columns) and derives fragments by
// evaluating the paper's *crawling query* — the join with both projection
// and selection attributes retained — then grouping by selection-attribute
// values (Section V-A, minus the MapReduce distribution).
//
// This is the semantic ground truth: the MR stepwise and integrated
// pipelines are tested for equality against the index it builds. It also
// materializes concrete db-pages (EvalPage), which the whole-page baseline
// and the top-k tests use as the oracle for page contents.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "db/database.h"
#include "db/ops.h"
#include "sql/psj_query.h"
#include "util/tokenizer.h"

namespace dash::core {

// Resolves the join tree statically (no row evaluation) and returns every
// join condition as a pair of fully qualified column names
// {left_column, right_column}, in post-order. ON-less joins are resolved
// through catalog foreign keys.
std::vector<std::pair<std::string, std::string>> ResolvedJoinEdges(
    const db::Database& db, const sql::JoinNode& root);

class Crawler {
 public:
  // Resolves the query against `db`; throws std::runtime_error on unknown
  // relations/columns or unclassifiable predicates. `db` must outlive the
  // crawler.
  Crawler(const db::Database& db, sql::PsjQuery query);

  const sql::PsjQuery& query() const { return query_; }

  // Selection attributes in canonical (fragment identifier) order.
  const std::vector<sql::SelectionAttribute>& selection() const {
    return selection_;
  }
  // Qualified selection column names, same order.
  const std::vector<std::string>& selection_columns() const {
    return selection_columns_;
  }
  // Qualified projection column names (SELECT * expanded).
  const std::vector<std::string>& projection_columns() const {
    return projection_columns_;
  }

  std::size_t num_eq_attributes() const { return num_eq_; }
  std::size_t num_range_attributes() const {
    return selection_.size() - num_eq_;
  }

  // Full join of the operand relations (all columns).
  db::Table EvalJoin() const;

  // Derives all fragments: rows projected to projection_columns, grouped by
  // selection values. Fragments are returned in ascending identifier order.
  std::vector<Fragment> DeriveFragments() const;

  // Builds the fragment index on a single node (no MapReduce). The catalog
  // is canonicalized (handles in identifier order).
  FragmentIndexBuild BuildIndex() const;

  // Materializes the db-page for concrete parameter values: joined rows
  // satisfying every predicate, projected. `params` maps parameter name ->
  // value; a missing range bound means unbounded, a missing equality
  // parameter throws.
  db::Table EvalPage(const std::map<std::string, db::Value>& params) const;

  // Keyword extraction shared with the baselines: tokenizes every projected
  // attribute of `row` into `counter`, `multiplier` times.
  static void CountRowKeywords(const db::Row& row,
                               util::TokenCounter& counter,
                               std::size_t multiplier = 1);

 private:
  const db::Database& db_;
  sql::PsjQuery query_;
  std::vector<sql::SelectionAttribute> selection_;
  std::vector<std::string> selection_columns_;
  std::vector<std::string> projection_columns_;
  std::size_t num_eq_ = 0;
};

}  // namespace dash::core
