// Top-k db-page search (paper Section VI-B, Algorithm 1).
//
// Seeds a priority queue with the fragments relevant to the queried
// keywords (from the inverted fragment index), repeatedly dequeues the
// highest-scoring pending db-page, and either outputs it (when it is not
// expandable: already >= the size threshold s, or out of neighbors) or
// expands it by one fragment along the fragment graph, favoring relevant
// fragments. Relevant fragments absorbed by an expansion are removed from
// the queue. The URLs of output pages are formulated by reverse query
// string parsing (the page's equality values + the min/max of its range
// values).
//
// Scoring follows the paper's modified TF/IDF: for queried keywords W,
//   score(p) = sum_{w in W} (occurrences of w in p / total words of p)
//              * IDF_w,  with IDF_w = 1 / (number of fragments containing w).
// Example 7's arithmetic (TF 2/8 -> 3/25 after a merge) is reproduced
// exactly by this formula.
//
// Note on the paper's monotonicity claim: expanding a page "due to
// additional text" is said never to raise its score. With size-normalized
// TF a *relevant* neighbor can in fact raise it; the best-first queue
// handles that naturally (the expansion re-enters the queue with its new
// score), making the result list best-effort top-k exactly as published.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/fragment_graph.h"
#include "core/inverted_index.h"
#include "sql/psj_query.h"
#include "webapp/query_string.h"

namespace dash::core {

struct SearchResult {
  std::vector<FragmentHandle> fragments;  // ascending handles
  double score = 0;
  std::uint64_t size_words = 0;
  // Concrete parameter values of the reconstructed db-page (parameter name
  // -> value text); range parameters carry the min/max over the fragments.
  std::map<std::string, std::string> params;
  // Full URL when the searcher was given a WebAppInfo; empty otherwise.
  std::string url;
};

// Supplies IDF values; lets a caller override the index's own document
// frequencies (e.g. to score a pruned index with the unpruned df).
using IdfProvider = std::function<double(const std::string& keyword)>;

// Restricts a query term's fragment-sorted posting span. The sharded
// engine passes per-(term, shard) views into one shared pool so each
// shard seeds — and probes — only its own fragments while borrowing the
// global index, catalog and graph (no per-shard index copy). The returned
// span must be fragment-ascending and a subset of the index's own
// PostingsByFragment span; util::kInvalidTermId must yield an empty span.
using SeedSpanSource =
    std::function<std::span<const Posting>(util::TermId term)>;

class TopKSearcher {
 public:
  // All referenced objects must outlive the searcher. `app` may be null
  // (no URL formulation). `selection` must match the catalog's identifier
  // layout (Crawler::selection()). `idf` overrides the index's own IDF
  // when provided; `seed_spans` overrides the per-term posting spans (see
  // SeedSpanSource — only sound when every graph-reachable occurrence of
  // each term lies inside the restricted span, as equality-group sharding
  // guarantees).
  TopKSearcher(const InvertedFragmentIndex& index,
               const FragmentCatalog& catalog, const FragmentGraph& graph,
               std::vector<sql::SelectionAttribute> selection,
               const webapp::WebAppInfo* app = nullptr,
               IdfProvider idf = nullptr, SeedSpanSource seed_spans = nullptr);

  // Returns at most k db-pages relevant to `keywords` (each input string
  // is tokenized with the indexing tokenizer, so "Burger Experts" queries
  // two keywords). `min_page_words` is the paper's size threshold s.
  //
  // `max_seeds` caps the number of relevant fragments seeded into the
  // queue (0 = all, the paper's Algorithm 1). Hot keywords can match a
  // large share of all fragments; keeping only the top-scored seeds bounds
  // query latency — the search-time analog of the crawl-scope tradeoff —
  // while expansion may still absorb unseeded relevant fragments. With
  // max_seeds >= the df of every queried keyword the results are
  // unchanged.
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   int k, std::uint64_t min_page_words,
                                   std::size_t max_seeds = 0) const;

 private:
  const InvertedFragmentIndex& index_;
  const FragmentCatalog& catalog_;
  const FragmentGraph& graph_;
  std::vector<sql::SelectionAttribute> selection_;
  const webapp::WebAppInfo* app_;
  IdfProvider idf_;
  SeedSpanSource seed_spans_;
};

}  // namespace dash::core
