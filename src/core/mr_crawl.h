// MapReduce database crawling and fragment indexing (paper Section V).
//
// Two algorithms build the same FragmentIndexBuild:
//
//  * StepwiseCrawl (Section V-A, Figure 7): join all operand relations
//    (projection attributes and all — the "crawling query"), group joined
//    records by selection-attribute values, then index each group as a
//    document. Simple, but the wide joined rows are shuffled repeatedly.
//
//  * IntegratedCrawl (Section V-B, Figure 8): first aggregate each relation
//    down to (selection attrs, join attrs, count theta) and join only those
//    skinny tuples; then join each relation's projection text against the
//    combined parameter relation R, replicating keyword occurrences by
//    Theta_i = prod_x max(theta_x, 1) / theta_i; finally consolidate
//    per-keyword occurrence lists. Projection text crosses the network
//    exactly once.
//
// Both return per-phase metrics matching Figure 10's stacked bars
// (SW-Jn / SW-Grp / SW-Idx and INT-Jn / INT-Ext / INT-Cnsd).
#pragma once

#include "core/crawler.h"
#include "core/inverted_index.h"
#include "core/mr_common.h"

namespace dash::core {

struct CrawlOptions {
  int num_reduce_tasks = 4;
};

struct CrawlResult {
  FragmentIndexBuild build;
  std::vector<CrawlPhase> phases;

  double TotalWallSec() const;
  // Modeled cluster time under `cost` (sum over all jobs in all phases).
  double ModeledSec(const mr::CostModel& cost) const;
};

CrawlResult StepwiseCrawl(mr::Cluster& cluster, const db::Database& db,
                          const sql::PsjQuery& query,
                          const CrawlOptions& options = {});

CrawlResult IntegratedCrawl(mr::Cluster& cluster, const db::Database& db,
                            const sql::PsjQuery& query,
                            const CrawlOptions& options = {});

}  // namespace dash::core
