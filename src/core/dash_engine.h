// DashEngine: the public facade of the Dash search engine.
//
// Wires the whole pipeline of Figure 4 together: web application analysis
// (a WebAppInfo, typically from webapp::AnalyzeServlet), database crawling
// and fragment indexing (reference, stepwise-MR or integrated-MR), fragment
// graph construction, and top-k search with URL formulation.
//
//   dash::db::Database db = ...;
//   auto app = dash::webapp::AnalyzeServlet(source, "Search", uri);
//   auto engine = dash::core::DashEngine::Build(db, app);
//   for (const auto& r : engine.Search({"burger"}, /*k=*/2, /*s=*/20))
//     std::cout << r.url << "\n";
//
// An engine is a thin view over an immutable IndexSnapshot (one shared_ptr
// plus crawl metrics): Build/FromParts produce a snapshot, Search takes no
// locks, and copying or moving an engine never copies index state. Layers
// that need concurrent republication (UpdatableIndex, CachingEngine) work
// with the snapshot/publisher directly — see core/index_snapshot.h.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/index_snapshot.h"
#include "core/mr_crawl.h"
#include "db/database.h"
#include "webapp/query_string.h"

namespace dash::core {

enum class CrawlAlgorithm {
  kReference,   // single-node, no MapReduce (ground truth)
  kStepwise,    // Section V-A
  kIntegrated,  // Section V-B
};

std::string_view CrawlAlgorithmName(CrawlAlgorithm a);

struct BuildOptions {
  CrawlAlgorithm algorithm = CrawlAlgorithm::kIntegrated;
  mr::ClusterConfig cluster;     // ignored by kReference
  int num_reduce_tasks = 4;      // ignored by kReference
  // Crawl-scope tradeoff (Section VIII item 3): fragments with fewer
  // keywords than this are pruned from the index after the crawl.
  // 0 keeps everything.
  std::uint64_t min_fragment_keywords = 0;
};

class DashEngine {
 public:
  // Crawls `db` for the db-pages of `app` and builds the fragment index
  // and fragment graph. `db` is only read during Build.
  static DashEngine Build(const db::Database& db, webapp::WebAppInfo app,
                          const BuildOptions& options = {});

  // Assembles an engine from a pre-built fragment index (deserialized via
  // core/index_io.h, or produced by UpdatableIndex). The fragment graph is
  // rebuilt from the catalog.
  static DashEngine FromParts(webapp::WebAppInfo app,
                              FragmentIndexBuild build);

  // View over an existing snapshot (shares it; no copying). Throws
  // std::invalid_argument on a null snapshot.
  explicit DashEngine(SnapshotPtr snapshot);

  // Top-k keyword search (Algorithm 1): at most `k` db-page URLs, pages
  // grown to at least `min_page_words` keywords where possible.
  // `max_seeds` optionally caps the relevant fragments seeded per query
  // (see TopKSearcher::Search). Lock-free: reads only the immutable
  // snapshot.
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   int k, std::uint64_t min_page_words,
                                   std::size_t max_seeds = 0) const;

  const webapp::WebAppInfo& app() const { return snapshot_->app(); }
  const FragmentCatalog& catalog() const { return snapshot_->catalog(); }
  const InvertedFragmentIndex& index() const { return snapshot_->index(); }
  const FragmentGraph& graph() const { return snapshot_->graph(); }
  const std::vector<sql::SelectionAttribute>& selection() const {
    return snapshot_->selection();
  }
  // The underlying immutable serving artifact.
  const SnapshotPtr& snapshot() const { return snapshot_; }
  // MR phase metrics of the crawl (empty for kReference).
  const std::vector<CrawlPhase>& crawl_phases() const { return phases_; }

 private:
  DashEngine(SnapshotPtr snapshot, std::vector<CrawlPhase> phases);

  SnapshotPtr snapshot_;
  std::vector<CrawlPhase> phases_;
};

}  // namespace dash::core
