// Sharded serving of the fragment index — scatter-gather top-k.
//
// Dash is built for cluster deployment (its crawl/index pipelines are
// MapReduce jobs); this is the serving-side counterpart: the fragment
// index partitioned across N shards so each node holds and searches a
// slice.
//
// Partitioning is by *equality group*: fragments sharing an equality-value
// prefix are assigned to the same shard (hash of the prefix modulo N).
// That invariant is what makes sharding faithful — a db-page can only
// combine fragments within one equality group (Section VI-A), so every
// candidate page is assembled entirely inside a single shard, and merging
// the per-shard top-k lists by score reproduces the global top-k (exactly
// so whenever page scores are monotone under expansion; see the
// monotonicity note in topk_search.h for the edge case).
//
// Scores stay globally comparable because every shard scores with the
// *global* document frequencies (captured at partitioning time), not its
// local ones — the standard distributed-IR correction.
//
// Scatter-gather runs on a persistent util::ThreadPool (per-query thread
// spawning costs more than a warm shard search). Results are independent
// of the pool size: each shard writes its own result slot and the gather
// merge is a deterministic sort.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/dash_engine.h"
#include "util/thread_pool.h"

namespace dash::core {

class ShardedEngine {
 public:
  // Partitions `build` into `num_shards` shards. The app info is shared by
  // all shards (URL formulation is shard-independent). Shard finalization
  // and graph construction are distributed across `pool` (default: the
  // process-wide shared pool), which also serves Search's scatter phase.
  ShardedEngine(webapp::WebAppInfo app, FragmentIndexBuild build,
                int num_shards, util::ThreadPool* pool = nullptr);

  std::size_t shard_count() const { return shards_.size(); }
  const DashEngine& shard(std::size_t i) const { return shards_[i]; }

  // Exact global top-k: scatter to all shards, gather, merge by score.
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   int k,
                                   std::uint64_t min_page_words) const;

  // Total fragments across shards (== the input build's catalog size).
  std::size_t fragment_count() const;

 private:
  util::ThreadPool& pool() const {
    return pool_ != nullptr ? *pool_ : util::ThreadPool::Shared();
  }

  std::vector<DashEngine> shards_;
  // Global keyword -> document frequency, for cross-shard-consistent IDF.
  std::unordered_map<std::string, std::size_t> global_df_;
  util::ThreadPool* pool_ = nullptr;  // not owned; nullptr = shared pool
};

}  // namespace dash::core
