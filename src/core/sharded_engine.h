// Sharded serving of the fragment index — scatter-gather top-k.
//
// Dash is built for cluster deployment (its crawl/index pipelines are
// MapReduce jobs); this is the serving-side counterpart: the fragment
// index partitioned across N shards so each node searches a slice.
//
// Partitioning is by *equality group*: fragments sharing an equality-value
// prefix are assigned to the same shard (hash of the prefix modulo N).
// That invariant is what makes sharding faithful — a db-page can only
// combine fragments within one equality group (Section VI-A), so every
// candidate page is assembled entirely inside a single shard, and merging
// the per-shard top-k lists by score reproduces the global top-k (exactly
// so whenever page scores are monotone under expansion; see the
// monotonicity note in topk_search.h for the edge case).
//
// All shards share ONE immutable IndexSnapshot — catalog, inverted index
// (and so the interned term dictionary), fragment graph, and app info.
// Nothing is deep-copied per shard. A shard is just a view: a per-fragment
// shard assignment plus, for every (term, shard) pair, a contiguous
// fragment-ascending slice of one rearranged posting pool that the
// searcher uses as its seed span (TopKSearcher::SeedSpanSource). Since the
// graph never crosses equality groups, a shard's searcher can probe the
// global structures and still stay entirely inside its slice. Scores are
// globally comparable for free: IDF comes from the shared global index.
//
// Scatter-gather runs on a persistent util::ThreadPool (per-query thread
// spawning costs more than a warm shard search). Results are independent
// of the pool size: each shard writes its own result slot and the gather
// merge is a deterministic sort.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/dash_engine.h"
#include "util/thread_pool.h"

namespace dash::core {

class ShardedEngine {
 public:
  // Partitions the build into `num_shards` shard views over one shared
  // snapshot. Shard-view construction (a counting sort of the posting
  // pool) is distributed across `pool` (default: the process-wide shared
  // pool), which also serves Search's scatter phase.
  ShardedEngine(webapp::WebAppInfo app, FragmentIndexBuild build,
                int num_shards, util::ThreadPool* pool = nullptr);

  // Shares an already-published snapshot: no index state is copied at all.
  explicit ShardedEngine(SnapshotPtr snapshot, int num_shards,
                         util::ThreadPool* pool = nullptr);

  std::size_t shard_count() const { return shard_count_; }
  // Shard holding `fragment` (a handle into the shared snapshot catalog).
  std::size_t shard_of(FragmentHandle fragment) const {
    return shard_of_[fragment];
  }
  // Number of fragments assigned to `shard`.
  std::size_t shard_fragment_count(std::size_t shard) const {
    return shard_sizes_[shard];
  }
  // The snapshot all shards serve from.
  const SnapshotPtr& snapshot() const { return snapshot_; }

  // Exact global top-k: scatter to all shards, gather, merge by score.
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   int k,
                                   std::uint64_t min_page_words) const;

  // Total fragments across shards (== the snapshot's catalog size).
  std::size_t fragment_count() const { return snapshot_->catalog().size(); }

 private:
  // Fragment-ascending postings of `term` that live in `shard`.
  std::span<const Posting> SeedSpan(util::TermId term,
                                    std::size_t shard) const;

  util::ThreadPool& pool() const {
    return pool_ != nullptr ? *pool_ : util::ThreadPool::Shared();
  }

  SnapshotPtr snapshot_;
  std::size_t shard_count_ = 0;
  std::vector<std::uint32_t> shard_of_;    // fragment -> shard
  std::vector<std::size_t> shard_sizes_;   // shard -> fragment count
  // The index's by-fragment posting pool rearranged term-major, grouped by
  // shard, fragment-ascending within each group — every (term, shard) seed
  // span is one contiguous slice. Same total size as the source pool, so
  // sharding costs one pool regardless of N.
  std::vector<Posting> seed_pool_;
  // (shard_count_ + 1) offsets per term into seed_pool_: entry s is the
  // start of term's shard-s group, entry shard_count_ its end.
  std::vector<std::uint32_t> seed_offsets_;
  util::ThreadPool* pool_ = nullptr;  // not owned; nullptr = shared pool
};

}  // namespace dash::core
