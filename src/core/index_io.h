// Fragment-index persistence.
//
// A production search engine builds its index offline (here: the MapReduce
// crawl) and serves queries from a loaded copy; this module provides the
// serialization bridge. The format is a line-oriented, versioned text
// format:
//
//   DASHIDX <version>
//   app <name> <uri> <sql...>                (one tab-separated record)
//   bindings <n>  +  n lines "field<TAB>parameter"
//   fragments <n> +  n lines of typed identifier values
//   keywords <n>  +  n lines "keyword<TAB>frag:occ<TAB>frag:occ..."
//
// Identifier values are self-describing ("i:10", "d:4.3", "s:American",
// "n:"), so no external schema is needed to reload them. Loading
// re-finalizes the index, which reconstructs keyword totals, content
// hashes and the fragment graph.
#pragma once

#include <iosfwd>
#include <string>

#include "core/dash_engine.h"

namespace dash::core {

class IndexIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Serializes a snapshot's application info and fragment index. (The
// fragment graph is derived state and is rebuilt on load; the generation
// id is process-local and not persisted.) Requires snapshot.has_app() —
// the format stores the app record.
void SaveSnapshot(const IndexSnapshot& snapshot, std::ostream& out);

// Inverse of SaveSnapshot; throws IndexIoError on malformed input. The
// loaded snapshot gets a fresh generation id.
SnapshotPtr LoadSnapshot(std::istream& in);
SnapshotPtr LoadSnapshotFile(const std::string& path);

// Engine-level convenience wrappers over the snapshot forms.
void SaveEngine(const DashEngine& engine, std::ostream& out);
void SaveEngineFile(const DashEngine& engine, const std::string& path);
DashEngine LoadEngine(std::istream& in);
DashEngine LoadEngineFile(const std::string& path);

// Lower-level helpers for typed values (exposed for tests).
std::string EncodeTypedValue(const db::Value& v);
db::Value DecodeTypedValue(const std::string& text);

}  // namespace dash::core
