// Multi-application search — the paper's second future-work item
// (Section VIII): "multiple web applications would derive db-pages based on
// some common contents from a database ... the contents of those db-pages
// could still be overlapped. A new approach is demanded to eliminate
// duplicate contents of db-pages from different web applications."
//
// MultiAppEngine federates one DashEngine per web application. A search
// fans out to every engine, merges the per-app top-k lists by score, and
// eliminates duplicate-content db-pages across applications using the
// fragments' content fingerprints (FragmentCatalog::content_hash): two
// reconstructed pages whose fragment keyword bags are identical — no
// matter which application generates them or how its URL is spelled —
// count as duplicates, and only the best-scored one survives.
#pragma once

#include <string>
#include <vector>

#include "core/dash_engine.h"

namespace dash::core {

struct MultiAppResult {
  std::string app;  // application (engine) name that produced the page
  SearchResult result;
  std::uint64_t content_hash = 0;
};

class MultiAppEngine {
 public:
  // Registers an application's engine. Names must be unique. An engine is
  // a thin view over its IndexSnapshot, so federation holds shared
  // snapshots, never index copies.
  void AddApp(DashEngine engine);

  // Same, directly from a published snapshot (must carry app info).
  void AddApp(SnapshotPtr snapshot);

  std::size_t app_count() const { return engines_.size(); }
  const DashEngine& app(std::string_view name) const;

  // Top-k over all applications: each engine contributes its own top-k,
  // duplicates (identical page content fingerprints) are collapsed keeping
  // the highest-scored instance, and the best k survivors are returned in
  // descending score order.
  std::vector<MultiAppResult> Search(const std::vector<std::string>& keywords,
                                     int k,
                                     std::uint64_t min_page_words) const;

  // Content fingerprint of a result page from `engine`: commutative
  // combination of its fragments' content hashes.
  static std::uint64_t PageContentHash(const DashEngine& engine,
                                       const SearchResult& result);

 private:
  std::vector<DashEngine> engines_;
};

}  // namespace dash::core
