// The inverted fragment index (paper Sections II and V, Figure 6).
//
// Structurally a conventional inverted file, but it indexes *fragment
// identifiers* instead of page URLs: for each keyword w, a posting list of
// (fragment, occurrences) sorted by occurrences descending, so high-TF
// fragments sit at the head of the list and IDF_w falls out as the inverse
// of the list length (Section VI's approximation).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/fragment.h"

namespace dash::core {

struct Posting {
  FragmentHandle fragment = 0;
  std::uint32_t occurrences = 0;

  friend bool operator==(const Posting&, const Posting&) = default;
};

class InvertedFragmentIndex {
 public:
  // Accumulates occurrences of `keyword` in `fragment` (repeat calls for
  // the same pair add up, matching MR consolidation semantics).
  void AddOccurrences(std::string_view keyword, FragmentHandle fragment,
                      std::uint32_t occurrences);

  // Sorts every posting list (occurrences desc, fragment asc as the
  // deterministic tiebreak), deduplicates accumulated pairs, and credits
  // each fragment's keyword total in `catalog`. Must be called exactly once
  // after the last AddOccurrences.
  void Finalize(FragmentCatalog* catalog);

  // Remaps fragment handles after FragmentCatalog::Canonicalize.
  void RemapFragments(const std::vector<FragmentHandle>& mapping);

  // Posting list for `keyword`; empty when absent. Valid after Finalize.
  std::span<const Posting> Lookup(std::string_view keyword) const;

  // Document frequency: number of fragments containing `keyword`.
  std::size_t Df(std::string_view keyword) const {
    return Lookup(keyword).size();
  }

  // IDF approximation of Section VI: 1 / df (0 for unknown keywords).
  double Idf(std::string_view keyword) const;

  std::size_t keyword_count() const { return lists_.size(); }
  std::size_t posting_count() const;
  std::size_t SizeBytes() const;

  // All keywords with their document frequencies (used to derive the
  // cold/warm/hot buckets of the evaluation).
  std::vector<std::pair<std::string, std::size_t>> KeywordsByDf() const;

  // Deterministic dump for cross-algorithm equality tests.
  std::string ToDebugString(const FragmentCatalog& catalog,
                            std::size_t max_keywords = 0) const;

 private:
  std::unordered_map<std::string, std::vector<Posting>> lists_;
  bool finalized_ = false;
};

// A built fragment index: catalog + inverted index. The fragment graph is
// built separately (its build time is Table IV's own experiment).
struct FragmentIndexBuild {
  FragmentCatalog catalog;
  InvertedFragmentIndex index;
};

}  // namespace dash::core
