// The inverted fragment index (paper Sections II and V, Figure 6).
//
// Structurally a conventional inverted file, but it indexes *fragment
// identifiers* instead of page URLs: for each keyword w, a posting list of
// (fragment, occurrences) sorted by occurrences descending, so high-TF
// fragments sit at the head of the list and IDF_w falls out as the inverse
// of the list length (Section VI's approximation).
//
// Storage layout: keywords are interned into dense TermIds (util/term_dict.h)
// and, after Finalize, all posting lists live in two contiguous pools
// addressed by per-term (offset, length) spans — one pool in the classic
// TF-descending order, one re-sorted by fragment handle so the searcher can
// binary-search occurrences without copying lists at query time. Before
// Finalize postings accumulate in per-term growth vectors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/fragment.h"
#include "util/term_dict.h"

namespace dash::util {
class ThreadPool;
}

namespace dash::core {

struct Posting {
  FragmentHandle fragment = 0;
  std::uint32_t occurrences = 0;

  friend bool operator==(const Posting&, const Posting&) = default;
};

class InvertedFragmentIndex {
 public:
  // Accumulates occurrences of `keyword` in `fragment` (repeat calls for
  // the same pair add up, matching MR consolidation semantics).
  void AddOccurrences(std::string_view keyword, FragmentHandle fragment,
                      std::uint32_t occurrences);

  // Sorts every posting list (occurrences desc, fragment asc as the
  // deterministic tiebreak), deduplicates accumulated pairs, flattens the
  // lists into the contiguous pools, and credits each fragment's keyword
  // total in `catalog`. Must be called exactly once after the last
  // AddOccurrences. When `pool` is given the per-term sort/merge work is
  // distributed across it (the result is bit-identical: terms are
  // independent and catalog crediting stays sequential).
  void Finalize(FragmentCatalog* catalog,
                util::ThreadPool* pool = nullptr);

  // Remaps fragment handles after FragmentCatalog::Canonicalize.
  void RemapFragments(const std::vector<FragmentHandle>& mapping);

  // Posting list for `keyword`; empty when absent. Valid after Finalize.
  // Allocation-free: the probe is a heterogeneous string_view lookup.
  std::span<const Posting> Lookup(std::string_view keyword) const {
    return LookupId(dict_.Find(keyword));
  }

  // Id-addressed variants for the query path (intern once, then hit
  // contiguous spans).
  util::TermId FindTerm(std::string_view keyword) const {
    return dict_.Find(keyword);
  }
  std::span<const Posting> LookupId(util::TermId term) const;
  // Same postings re-sorted by fragment handle (for binary search).
  std::span<const Posting> PostingsByFragment(util::TermId term) const;

  // Document frequency: number of fragments containing `keyword`.
  std::size_t Df(std::string_view keyword) const {
    return Lookup(keyword).size();
  }

  // IDF approximation of Section VI: 1 / df (0 for unknown keywords).
  double Idf(std::string_view keyword) const;
  double IdfId(util::TermId term) const;

  const util::TermDict& dict() const { return dict_; }

  std::size_t keyword_count() const { return dict_.size(); }
  std::size_t posting_count() const;
  std::size_t SizeBytes() const;

  // All keywords with their document frequencies (used to derive the
  // cold/warm/hot buckets of the evaluation).
  std::vector<std::pair<std::string, std::size_t>> KeywordsByDf() const;

  // Deterministic dump for cross-algorithm equality tests.
  std::string ToDebugString(const FragmentCatalog& catalog,
                            std::size_t max_keywords = 0) const;

 private:
  struct TermSpan {
    std::size_t offset = 0;
    std::uint32_t length = 0;
  };

  util::TermDict dict_;
  // Pre-Finalize accumulation, one growth vector per TermId.
  std::vector<std::vector<Posting>> building_;
  // Post-Finalize flat storage: spans_[id] addresses both pools.
  std::vector<TermSpan> spans_;
  std::vector<Posting> pool_;          // TF desc, fragment asc
  std::vector<Posting> by_fragment_;   // fragment asc
  bool finalized_ = false;
};

// A built fragment index: catalog + inverted index. The fragment graph is
// built separately (its build time is Table IV's own experiment).
struct FragmentIndexBuild {
  FragmentCatalog catalog;
  InvertedFragmentIndex index;
};

}  // namespace dash::core
