// Db-page fragments (paper Definition 2) and the fragment catalog.
//
// Given a parameterized PSJ query, a fragment is the set of joined,
// projected records sharing one concrete combination of selection-attribute
// values; that value tuple is the fragment's *identifier*. Every db-page
// the application can generate is a disjoint union of fragments, which is
// why Dash stores fragments instead of pages.
//
// The catalog interns identifiers into dense uint32 handles used by the
// inverted index, the fragment graph and the searcher, and keeps each
// fragment's total keyword count (the node weights of Figure 9).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.h"

namespace dash::core {

// Dense fragment handle.
using FragmentHandle = std::uint32_t;

// A fully materialized fragment: identifier + projected record contents.
// Only the reference crawler materializes these (tests, baseline); the MR
// pipelines go straight to postings.
struct Fragment {
  db::Row id;                  // selection-attribute values, canonical order
  std::vector<db::Row> rows;   // projected records
};

// Canonical text encoding of a fragment identifier, e.g. "(American, 10)".
std::string FragmentIdToString(const db::Row& id);

class FragmentCatalog {
 public:
  // Interns `id`, returning its handle (existing or new).
  FragmentHandle Intern(const db::Row& id);

  std::optional<FragmentHandle> Find(const db::Row& id) const;

  std::size_t size() const { return ids_.size(); }
  const db::Row& id(FragmentHandle f) const { return ids_[f]; }

  void AddKeywords(FragmentHandle f, std::uint64_t count) {
    keyword_totals_[f] += count;
  }
  std::uint64_t keyword_total(FragmentHandle f) const {
    return keyword_totals_[f];
  }

  // Order-independent content fingerprint, accumulated from (keyword,
  // occurrences) pairs during InvertedFragmentIndex::Finalize. Two
  // fragments with equal hashes almost surely carry identical keyword
  // bags — the basis for cross-application result deduplication
  // (paper Section VIII, item 2).
  void MixContentHash(FragmentHandle f, std::uint64_t h) {
    content_hashes_[f] += h;  // commutative mix
  }
  std::uint64_t content_hash(FragmentHandle f) const {
    return content_hashes_[f];
  }

  // Average keywords per fragment (Table IV's third column).
  double AverageKeywords() const;

  // Reorders handles so that fragment ids are in ascending lexicographic
  // order, returning old->new handle mapping. Called once after build so
  // that catalogs produced by different crawl algorithms are identical.
  std::vector<FragmentHandle> Canonicalize();

  // Estimated in-memory footprint of identifiers + totals.
  std::size_t SizeBytes() const;

 private:
  std::vector<db::Row> ids_;
  std::vector<std::uint64_t> keyword_totals_;
  std::vector<std::uint64_t> content_hashes_;
  std::unordered_map<db::Row, FragmentHandle, db::RowHash> lookup_;
};

}  // namespace dash::core
