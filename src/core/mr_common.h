// Shared plumbing for the MapReduce crawl pipelines (Section V).
//
// Rows travel between jobs as tab-escaped text records with an attached
// Schema so each job can locate columns by qualified name — the moral
// equivalent of Hadoop jobs exchanging delimited files whose layout both
// sides know. Join jobs follow the standard repartition-join idiom: inputs
// are tagged "L"/"R" via the record key, mappers re-key by join value,
// reducers cross-product the two sides.
#pragma once

#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "db/database.h"
#include "db/ops.h"
#include "mapreduce/cluster.h"
#include "sql/psj_query.h"

namespace dash::core {

// A dataset with known column layout.
struct MrTable {
  mr::Dataset data;
  db::Schema schema;
};

// Exports a catalog table into the cluster's input format (record key
// empty, value = tab-escaped row) — the paper's "records ... exported from
// a database to a MR cluster".
MrTable ExportTable(const db::Table& table);

// Parses one encoded row according to `schema`.
db::Row ParseEncodedRow(const db::Schema& schema, const std::string& value);

// Encodes a typed row (inverse of ParseEncodedRow).
std::string EncodeRow(const db::Row& row);

// One MR job joining `left` and `right` on left_col = right_col
// (qualified names). `kind` kLeftOuter pads missing right columns with
// NULL-encoding (empty fields). NULL join keys never match; with an outer
// join, left rows with NULL keys are emitted padded.
MrTable MrJoin(mr::Cluster& cluster, const std::string& job_name,
               const MrTable& left, const MrTable& right,
               const std::string& left_col, const std::string& right_col,
               sql::JoinKind kind, int num_reduce_tasks);

// Recursively evaluates a join tree with MR jobs, one per internal node
// (the paper: "joins over three or more relations are performed through
// several MR jobs"). `leaf` supplies each relation's input table — the full
// export for the stepwise algorithm, the aggregated compact table for the
// integrated one. ON columns absent from the query are resolved through
// catalog foreign keys.
MrTable MrJoinTree(mr::Cluster& cluster, const db::Database& db,
                   const sql::JoinNode& node,
                   const std::function<MrTable(const std::string&)>& leaf,
                   int num_reduce_tasks, const std::string& job_prefix);

// A named pipeline phase with its aggregated job metrics (the stacked-bar
// segments of Figure 10: SW-Jn/SW-Grp/SW-Idx, INT-Jn/INT-Ext/INT-Cnsd).
struct CrawlPhase {
  std::string name;
  mr::JobMetrics metrics;
};

// Sums cluster history entries [begin, end) into one named phase.
CrawlPhase SnapshotPhase(const mr::Cluster& cluster, std::size_t begin,
                         std::string name);

// Final reducer of both crawl pipelines (SW-Idx reduce side / INT-Cnsd):
// input values are (encoded fragment key, occurrences) pairs for one
// keyword; output is one record per keyword holding the inverted list —
// (frag, occ) pairs sorted by occurrences descending (Figure 6's layout).
class InvertedListReducer : public mr::Reducer {
 public:
  void Reduce(const std::string& keyword,
              const std::vector<std::string>& values,
              mr::Emitter& out) override;
};

// Combiner for the same jobs: sums occurrences per fragment within one map
// task's output, re-emitting the (fragment, occurrences) pair format. Cuts
// the shuffle volume of the indexing phases the way Hadoop combiners do.
class PostingCombiner : public mr::Reducer {
 public:
  void Reduce(const std::string& keyword,
              const std::vector<std::string>& values,
              mr::Emitter& out) override;
};

// Parses InvertedListReducer output records into `build->index`. Fragment
// keys are decoded with `sel_schema` (the typed selection-attribute
// layout); every fragment must already be interned in `build->catalog`.
void ConsumeInvertedLists(const mr::Dataset& lists,
                          const db::Schema& sel_schema,
                          FragmentIndexBuild* build);

// Finalizes the index, canonicalizes catalog handles and remaps postings.
void FinalizeBuild(FragmentIndexBuild* build);

}  // namespace dash::core
