#include "core/pruning.h"

namespace dash::core {

FragmentIndexBuild PruneFragments(const FragmentIndexBuild& build,
                                  std::uint64_t min_keywords,
                                  PruneStats* stats) {
  FragmentIndexBuild pruned;
  std::vector<bool> keep(build.catalog.size());
  // Interning in ascending handle order preserves canonical order (the
  // kept subset of a sorted sequence is sorted).
  std::vector<FragmentHandle> remap(build.catalog.size());
  for (std::size_t f = 0; f < build.catalog.size(); ++f) {
    auto handle = static_cast<FragmentHandle>(f);
    keep[f] = build.catalog.keyword_total(handle) >= min_keywords;
    if (keep[f]) {
      remap[f] = pruned.catalog.Intern(build.catalog.id(handle));
    }
  }

  std::size_t kept_keywords = 0, dropped_keywords = 0;
  for (const auto& [keyword, df] : build.index.KeywordsByDf()) {
    bool any = false;
    for (const Posting& p : build.index.Lookup(keyword)) {
      if (!keep[p.fragment]) continue;
      pruned.index.AddOccurrences(keyword, remap[p.fragment], p.occurrences);
      any = true;
    }
    (any ? kept_keywords : dropped_keywords) += 1;
  }
  pruned.index.Finalize(&pruned.catalog);

  if (stats != nullptr) {
    stats->kept_fragments = pruned.catalog.size();
    stats->dropped_fragments = build.catalog.size() - pruned.catalog.size();
    stats->kept_keywords = kept_keywords;
    stats->dropped_keywords = dropped_keywords;
    stats->index_bytes_before =
        build.index.SizeBytes() + build.catalog.SizeBytes();
    stats->index_bytes_after =
        pruned.index.SizeBytes() + pruned.catalog.SizeBytes();
  }
  return pruned;
}

}  // namespace dash::core
