#include "core/mr_common.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "util/csv.h"
#include "util/thread_pool.h"

namespace dash::core {

namespace {

using util::DecodeFields;
using util::EncodeFields;

// Repartition-join mapper: re-keys each record by its side's join value.
// Input record key is the side tag ("L"/"R"); output value keeps the tag so
// the reducer can split the group.
class JoinMapper : public mr::Mapper {
 public:
  JoinMapper(int left_col, int right_col, bool outer)
      : left_col_(left_col), right_col_(right_col), outer_(outer) {}

  void Map(const mr::Record& record, mr::Emitter& out) override {
    const bool left = record.key == "L";
    std::vector<std::string> fields = DecodeFields(record.value);
    const std::string& key =
        fields[static_cast<std::size_t>(left ? left_col_ : right_col_)];
    if (key.empty()) {
      // NULL join value: inner joins drop the row; an outer join keeps
      // NULL-keyed left rows (they group under the empty key, where no
      // right row can appear because right NULLs are always dropped).
      if (!(left && outer_)) return;
    }
    out.Emit(key, (left ? "L\t" : "R\t") + record.value);
  }

 private:
  int left_col_;
  int right_col_;
  bool outer_;
};

class JoinReducer : public mr::Reducer {
 public:
  JoinReducer(std::size_t right_width, bool outer)
      : right_width_(right_width), outer_(outer) {}

  void Reduce(const std::string& /*key*/,
              const std::vector<std::string>& values,
              mr::Emitter& out) override {
    std::vector<std::string_view> lefts, rights;
    for (const std::string& v : values) {
      std::string_view sv(v);
      if (sv.size() < 2) continue;
      std::string_view rest = sv.substr(2);
      (sv[0] == 'L' ? lefts : rights).push_back(rest);
    }
    if (rights.empty()) {
      if (!outer_) return;
      std::string padding;
      for (std::size_t i = 1; i < right_width_; ++i) padding.push_back('\t');
      for (std::string_view l : lefts) {
        out.Emit("", std::string(l) + "\t" + padding);
      }
      return;
    }
    for (std::string_view l : lefts) {
      for (std::string_view r : rights) {
        out.Emit("", std::string(l) + "\t" + std::string(r));
      }
    }
  }

 private:
  std::size_t right_width_;
  bool outer_;
};

}  // namespace

MrTable ExportTable(const db::Table& table) {
  MrTable out;
  out.schema = table.schema();
  std::vector<std::string> lines = table.ExportRows();
  out.data.reserve(lines.size());
  for (std::string& line : lines) {
    out.data.push_back(mr::Record{"", std::move(line)});
  }
  return out;
}

db::Row ParseEncodedRow(const db::Schema& schema, const std::string& value) {
  std::vector<std::string> fields = DecodeFields(value);
  if (fields.size() != schema.size()) {
    throw std::runtime_error("encoded row has " + std::to_string(fields.size()) +
                             " fields, schema expects " +
                             std::to_string(schema.size()));
  }
  db::Row row;
  row.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    row.push_back(db::Value::Parse(fields[i], schema.column(i).type));
  }
  return row;
}

std::string EncodeRow(const db::Row& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (const db::Value& v : row) fields.push_back(v.ToString());
  return EncodeFields(fields);
}

MrTable MrJoin(mr::Cluster& cluster, const std::string& job_name,
               const MrTable& left, const MrTable& right,
               const std::string& left_col, const std::string& right_col,
               sql::JoinKind kind, int num_reduce_tasks) {
  const int li = left.schema.IndexOf(left_col);
  const int ri = right.schema.IndexOf(right_col);
  const bool outer = kind == sql::JoinKind::kLeftOuter;

  mr::Dataset input;
  input.reserve(left.data.size() + right.data.size());
  for (const mr::Record& r : left.data) input.push_back({"L", r.value});
  for (const mr::Record& r : right.data) input.push_back({"R", r.value});

  mr::JobConfig job;
  job.name = job_name;
  job.num_reduce_tasks = num_reduce_tasks;

  MrTable out;
  out.schema = db::Schema::Concat(left.schema, right.schema);
  const std::size_t right_width = right.schema.size();
  out.data = cluster.Run(
      job, input,
      [li, ri, outer] { return std::make_unique<JoinMapper>(li, ri, outer); },
      [right_width, outer] {
        return std::make_unique<JoinReducer>(right_width, outer);
      });
  return out;
}

MrTable MrJoinTree(mr::Cluster& cluster, const db::Database& db,
                   const sql::JoinNode& node,
                   const std::function<MrTable(const std::string&)>& leaf,
                   int num_reduce_tasks, const std::string& job_prefix) {
  if (node.IsLeaf()) return leaf(node.relation);
  MrTable left =
      MrJoinTree(cluster, db, *node.left, leaf, num_reduce_tasks, job_prefix);
  MrTable right =
      MrJoinTree(cluster, db, *node.right, leaf, num_reduce_tasks, job_prefix);
  std::string on_left = node.on_left, on_right = node.on_right;
  if (on_left.empty()) {
    std::tie(on_left, on_right) =
        db::FindJoinColumns(db, left.schema, right.schema);
  }
  std::string name = job_prefix + "join(" + on_left + "=" + on_right + ")";
  return MrJoin(cluster, name, left, right, on_left, on_right, node.kind,
                num_reduce_tasks);
}

void InvertedListReducer::Reduce(const std::string& keyword,
                                 const std::vector<std::string>& values,
                                 mr::Emitter& out) {
  std::map<std::string, std::uint64_t> per_fragment;
  for (const std::string& v : values) {
    std::vector<std::string> parts = DecodeFields(v);
    per_fragment[parts[0]] += std::stoull(parts[1]);
  }
  std::vector<std::pair<std::string, std::uint64_t>> sorted(
      per_fragment.begin(), per_fragment.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> list;
  list.reserve(sorted.size() * 2);
  for (const auto& [frag, occ] : sorted) {
    list.push_back(frag);
    list.push_back(std::to_string(occ));
  }
  out.Emit(keyword, EncodeFields(list));
}

void PostingCombiner::Reduce(const std::string& keyword,
                             const std::vector<std::string>& values,
                             mr::Emitter& out) {
  std::map<std::string, std::uint64_t> per_fragment;
  for (const std::string& v : values) {
    std::vector<std::string> parts = DecodeFields(v);
    per_fragment[parts[0]] += std::stoull(parts[1]);
  }
  for (const auto& [frag, occ] : per_fragment) {
    out.Emit(keyword, EncodeFields(std::vector<std::string>{
                          frag, std::to_string(occ)}));
  }
}

void ConsumeInvertedLists(const mr::Dataset& lists,
                          const db::Schema& sel_schema,
                          FragmentIndexBuild* build) {
  for (const mr::Record& r : lists) {
    std::vector<std::string> list = DecodeFields(r.value);
    for (std::size_t i = 0; i + 1 < list.size(); i += 2) {
      db::Row id = ParseEncodedRow(sel_schema, list[i]);
      auto handle = build->catalog.Find(id);
      if (!handle.has_value()) {
        throw std::runtime_error("inverted list references uncataloged fragment " +
                                 FragmentIdToString(id));
      }
      build->index.AddOccurrences(
          r.key, *handle, static_cast<std::uint32_t>(std::stoull(list[i + 1])));
    }
  }
}

void FinalizeBuild(FragmentIndexBuild* build) {
  build->index.Finalize(&build->catalog, &util::ThreadPool::Shared());
  std::vector<FragmentHandle> mapping = build->catalog.Canonicalize();
  build->index.RemapFragments(mapping);
}

CrawlPhase SnapshotPhase(const mr::Cluster& cluster, std::size_t begin,
                         std::string name) {
  // history() returns a snapshot by value (the live vector is guarded by
  // the cluster's mutex); take it once — mixing begin()/end() from two
  // separate calls would pair iterators of different temporaries.
  std::vector<mr::JobMetrics> history = cluster.history();
  std::vector<mr::JobMetrics> jobs(
      history.begin() + static_cast<std::ptrdiff_t>(begin), history.end());
  CrawlPhase phase;
  phase.metrics = mr::SumMetrics(jobs, name);
  phase.name = std::move(name);
  return phase;
}

}  // namespace dash::core
