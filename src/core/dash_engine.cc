#include "core/dash_engine.h"

#include <stdexcept>

#include "core/pruning.h"

namespace dash::core {

std::string_view CrawlAlgorithmName(CrawlAlgorithm a) {
  switch (a) {
    case CrawlAlgorithm::kReference:
      return "reference";
    case CrawlAlgorithm::kStepwise:
      return "stepwise";
    case CrawlAlgorithm::kIntegrated:
      return "integrated";
  }
  return "?";
}

DashEngine::DashEngine(SnapshotPtr snapshot, std::vector<CrawlPhase> phases)
    : snapshot_(std::move(snapshot)), phases_(std::move(phases)) {
  if (snapshot_ == nullptr) {
    throw std::invalid_argument("DashEngine: snapshot must not be null");
  }
}

DashEngine::DashEngine(SnapshotPtr snapshot)
    : DashEngine(std::move(snapshot), {}) {}

DashEngine DashEngine::Build(const db::Database& db, webapp::WebAppInfo app,
                             const BuildOptions& options) {
  Crawler crawler(db, app.query);
  std::vector<sql::SelectionAttribute> selection = crawler.selection();

  FragmentIndexBuild build;
  std::vector<CrawlPhase> phases;
  switch (options.algorithm) {
    case CrawlAlgorithm::kReference:
      build = crawler.BuildIndex();
      break;
    case CrawlAlgorithm::kStepwise:
    case CrawlAlgorithm::kIntegrated: {
      mr::Cluster cluster(options.cluster);
      CrawlOptions crawl_options;
      crawl_options.num_reduce_tasks = options.num_reduce_tasks;
      CrawlResult result =
          options.algorithm == CrawlAlgorithm::kStepwise
              ? StepwiseCrawl(cluster, db, app.query, crawl_options)
              : IntegratedCrawl(cluster, db, app.query, crawl_options);
      build = std::move(result.build);
      phases = std::move(result.phases);
      break;
    }
  }
  if (options.min_fragment_keywords > 0) {
    build = PruneFragments(build, options.min_fragment_keywords);
  }
  return DashEngine(IndexSnapshot::Create(std::move(app), std::move(selection),
                                          std::move(build)),
                    std::move(phases));
}

DashEngine DashEngine::FromParts(webapp::WebAppInfo app,
                                 FragmentIndexBuild build) {
  return DashEngine(IndexSnapshot::Create(std::move(app), std::move(build)),
                    {});
}

std::vector<SearchResult> DashEngine::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words, std::size_t max_seeds) const {
  return snapshot_->Search(keywords, k, min_page_words, max_seeds);
}

}  // namespace dash::core
