#include "core/dash_engine.h"

#include "core/pruning.h"

namespace dash::core {

std::string_view CrawlAlgorithmName(CrawlAlgorithm a) {
  switch (a) {
    case CrawlAlgorithm::kReference:
      return "reference";
    case CrawlAlgorithm::kStepwise:
      return "stepwise";
    case CrawlAlgorithm::kIntegrated:
      return "integrated";
  }
  return "?";
}

DashEngine::DashEngine(webapp::WebAppInfo app, FragmentIndexBuild build,
                       std::vector<sql::SelectionAttribute> selection,
                       std::vector<CrawlPhase> phases)
    : app_(std::move(app)),
      build_(std::move(build)),
      selection_(std::move(selection)),
      phases_(std::move(phases)) {
  std::size_t num_eq = 0;
  for (const sql::SelectionAttribute& a : selection_) {
    if (!a.is_range) ++num_eq;
  }
  graph_ = FragmentGraph::Build(build_.catalog, num_eq,
                                selection_.size() - num_eq);
}

DashEngine DashEngine::Build(const db::Database& db, webapp::WebAppInfo app,
                             const BuildOptions& options) {
  Crawler crawler(db, app.query);
  std::vector<sql::SelectionAttribute> selection = crawler.selection();

  FragmentIndexBuild build;
  std::vector<CrawlPhase> phases;
  switch (options.algorithm) {
    case CrawlAlgorithm::kReference:
      build = crawler.BuildIndex();
      break;
    case CrawlAlgorithm::kStepwise:
    case CrawlAlgorithm::kIntegrated: {
      mr::Cluster cluster(options.cluster);
      CrawlOptions crawl_options;
      crawl_options.num_reduce_tasks = options.num_reduce_tasks;
      CrawlResult result =
          options.algorithm == CrawlAlgorithm::kStepwise
              ? StepwiseCrawl(cluster, db, app.query, crawl_options)
              : IntegratedCrawl(cluster, db, app.query, crawl_options);
      build = std::move(result.build);
      phases = std::move(result.phases);
      break;
    }
  }
  if (options.min_fragment_keywords > 0) {
    build = PruneFragments(build, options.min_fragment_keywords);
  }
  return DashEngine(std::move(app), std::move(build), std::move(selection),
                    std::move(phases));
}

DashEngine DashEngine::FromParts(webapp::WebAppInfo app,
                                 FragmentIndexBuild build) {
  std::vector<sql::SelectionAttribute> selection =
      app.query.SelectionAttributes();
  return DashEngine(std::move(app), std::move(build), std::move(selection),
                    {});
}

std::vector<SearchResult> DashEngine::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words, std::size_t max_seeds) const {
  // The searcher only binds references, so constructing one per call is
  // free and keeps DashEngine safely movable.
  TopKSearcher searcher(build_.index, build_.catalog, graph_, selection_,
                        &app_);
  return searcher.Search(keywords, k, min_page_words, max_seeds);
}

}  // namespace dash::core
