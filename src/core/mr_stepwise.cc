#include <map>
#include <memory>

#include "core/mr_crawl.h"
#include "util/csv.h"
#include "util/tokenizer.h"

namespace dash::core {

namespace {

using util::DecodeFields;
using util::EncodeFields;

// SW-Grp: re-keys each joined record by its selection-attribute values.
// Records with a NULL selection value are dropped: no query string can ever
// select them (every comparison against NULL fails), so they belong to no
// db-page.
class GroupMapper : public mr::Mapper {
 public:
  GroupMapper(std::vector<int> sel_idx, std::vector<int> proj_idx)
      : sel_idx_(std::move(sel_idx)), proj_idx_(std::move(proj_idx)) {}

  void Map(const mr::Record& record, mr::Emitter& out) override {
    std::vector<std::string> fields = DecodeFields(record.value);
    std::vector<std::string_view> key, value;
    key.reserve(sel_idx_.size());
    for (int i : sel_idx_) {
      std::string_view f = fields[static_cast<std::size_t>(i)];
      if (f.empty()) return;  // NULL selection value
      key.push_back(f);
    }
    value.reserve(proj_idx_.size());
    for (int i : proj_idx_) value.push_back(fields[static_cast<std::size_t>(i)]);
    out.Emit(EncodeFields(key), EncodeFields(value));
  }

 private:
  std::vector<int> sel_idx_;
  std::vector<int> proj_idx_;
};

// SW-Idx map side: treats one grouped record as part of the fragment
// "document" and emits (keyword, (fragment key, occurrences-in-record)).
class IndexMapper : public mr::Mapper {
 public:
  void Map(const mr::Record& record, mr::Emitter& out) override {
    util::TokenCounter counter;
    for (const std::string& field : DecodeFields(record.value)) {
      counter.Add(field);
    }
    for (const auto& [keyword, count] : counter.counts()) {
      out.Emit(keyword, EncodeFields(std::vector<std::string_view>{
                            record.key, std::to_string(count)}));
    }
  }
};

}  // namespace

double CrawlResult::TotalWallSec() const {
  double total = 0;
  for (const CrawlPhase& p : phases) total += p.metrics.TotalWallSec();
  return total;
}

double CrawlResult::ModeledSec(const mr::CostModel& cost) const {
  double total = 0;
  for (const CrawlPhase& p : phases) total += p.metrics.ModeledSec(cost);
  return total;
}

CrawlResult StepwiseCrawl(mr::Cluster& cluster, const db::Database& db,
                          const sql::PsjQuery& query,
                          const CrawlOptions& options) {
  // Resolve selection/projection columns (and validate the query) the same
  // way the reference crawler does.
  Crawler resolver(db, query);
  CrawlResult result;

  // ---- Phase SW-Jn: evaluate the crawling query's joins. ----
  std::size_t mark = cluster.history().size();
  MrTable joined = MrJoinTree(
      cluster, db, *resolver.query().from,
      [&db](const std::string& rel) { return ExportTable(db.table(rel)); },
      options.num_reduce_tasks, "SW-");
  result.phases.push_back(SnapshotPhase(cluster, mark, "SW-Jn"));

  std::vector<int> sel_idx, proj_idx;
  for (const std::string& c : resolver.selection_columns()) {
    sel_idx.push_back(joined.schema.IndexOf(c));
  }
  for (const std::string& c : resolver.projection_columns()) {
    proj_idx.push_back(joined.schema.IndexOf(c));
  }
  // Selection-key schema, for parsing fragment identifiers back to values.
  db::Schema sel_schema;
  for (int i : sel_idx) {
    sel_schema.AddColumn(joined.schema.column(static_cast<std::size_t>(i)));
  }

  // ---- Phase SW-Grp: group joined records into fragments. ----
  mark = cluster.history().size();
  mr::JobConfig group_job;
  group_job.name = "SW-group";
  group_job.num_reduce_tasks = options.num_reduce_tasks;
  mr::Dataset grouped = cluster.Run(
      group_job, joined.data,
      [&sel_idx, &proj_idx] {
        return std::make_unique<GroupMapper>(sel_idx, proj_idx);
      },
      [] { return std::make_unique<mr::IdentityReducer>(); });
  result.phases.push_back(SnapshotPhase(cluster, mark, "SW-Grp"));

  // ---- Phase SW-Idx: build the inverted fragment index. ----
  mark = cluster.history().size();
  mr::JobConfig index_job;
  index_job.name = "SW-index";
  index_job.num_reduce_tasks = options.num_reduce_tasks;
  mr::Dataset inverted = cluster.Run(
      index_job, grouped, [] { return std::make_unique<IndexMapper>(); },
      [] { return std::make_unique<InvertedListReducer>(); },
      [] { return std::make_unique<PostingCombiner>(); });
  result.phases.push_back(SnapshotPhase(cluster, mark, "SW-Idx"));

  // ---- Consume MR output into the in-memory index. ----
  // Fragments come from the group output so that keyword-less fragments
  // (all-empty projection text) are still cataloged.
  for (const mr::Record& r : grouped) {
    result.build.catalog.Intern(ParseEncodedRow(sel_schema, r.key));
  }
  ConsumeInvertedLists(inverted, sel_schema, &result.build);
  FinalizeBuild(&result.build);
  return result;
}

}  // namespace dash::core
