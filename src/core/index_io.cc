#include "core/index_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sql/parser.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dash::core {

namespace {

constexpr int kFormatVersion = 1;

using util::DecodeFields;
using util::EncodeFields;

std::string ReadLineOrThrow(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw IndexIoError(std::string("unexpected end of index file while "
                                   "reading ") +
                       what);
  }
  return line;
}

std::size_t ParseCount(const std::string& line, const char* section) {
  std::vector<std::string> fields = DecodeFields(line);
  std::int64_t n = 0;
  if (fields.size() != 2 || fields[0] != section ||
      !util::ParseInt64(fields[1], &n) || n < 0) {
    throw IndexIoError(std::string("malformed '") + section +
                       "' header: " + line);
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

std::string EncodeTypedValue(const db::Value& v) {
  switch (v.type()) {
    case db::ValueType::kNull:
      return "n:";
    case db::ValueType::kInt:
      return "i:" + v.ToString();
    case db::ValueType::kDouble:
      return "d:" + v.ToString();
    case db::ValueType::kString:
      return "s:" + v.AsString();
  }
  return "n:";
}

db::Value DecodeTypedValue(const std::string& text) {
  if (text.size() < 2 || text[1] != ':') {
    throw IndexIoError("malformed typed value: " + text);
  }
  std::string_view payload = std::string_view(text).substr(2);
  switch (text[0]) {
    case 'n':
      return db::Value::Null();
    case 'i': {
      std::int64_t v;
      if (!util::ParseInt64(payload, &v)) {
        throw IndexIoError("malformed int value: " + text);
      }
      return db::Value(v);
    }
    case 'd': {
      double v;
      if (!util::ParseDouble(payload, &v)) {
        throw IndexIoError("malformed double value: " + text);
      }
      return db::Value(v);
    }
    case 's':
      return db::Value(std::string(payload));
  }
  throw IndexIoError("unknown value type tag: " + text);
}

void SaveSnapshot(const IndexSnapshot& snapshot, std::ostream& out) {
  if (!snapshot.has_app()) {
    throw IndexIoError("cannot save a snapshot without app info");
  }
  out << "DASHIDX\t" << kFormatVersion << "\n";
  out << EncodeFields(std::vector<std::string>{
             "app", snapshot.app().name, snapshot.app().uri,
             snapshot.app().query.ToString()})
      << "\n";

  const auto& bindings = snapshot.app().codec.bindings();
  out << "bindings\t" << bindings.size() << "\n";
  for (const webapp::ParamBinding& b : bindings) {
    out << EncodeFields(std::vector<std::string>{b.url_field, b.parameter})
        << "\n";
  }

  const FragmentCatalog& catalog = snapshot.catalog();
  out << "fragments\t" << catalog.size() << "\n";
  for (std::size_t f = 0; f < catalog.size(); ++f) {
    std::vector<std::string> fields;
    for (const db::Value& v : catalog.id(static_cast<FragmentHandle>(f))) {
      fields.push_back(EncodeTypedValue(v));
    }
    out << EncodeFields(fields) << "\n";
  }

  auto keywords = snapshot.index().KeywordsByDf();
  out << "keywords\t" << keywords.size() << "\n";
  for (const auto& [keyword, df] : keywords) {
    std::vector<std::string> fields;
    fields.push_back(keyword);
    for (const Posting& p : snapshot.index().Lookup(keyword)) {
      fields.push_back(std::to_string(p.fragment) + ":" +
                       std::to_string(p.occurrences));
    }
    out << EncodeFields(fields) << "\n";
  }
}

void SaveEngine(const DashEngine& engine, std::ostream& out) {
  SaveSnapshot(*engine.snapshot(), out);
}

void SaveEngineFile(const DashEngine& engine, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IndexIoError("cannot open '" + path + "' for writing");
  SaveEngine(engine, out);
  if (!out) throw IndexIoError("write failure on '" + path + "'");
}

SnapshotPtr LoadSnapshot(std::istream& in) {
  std::string header = ReadLineOrThrow(in, "header");
  std::vector<std::string> fields = DecodeFields(header);
  std::int64_t version = 0;
  if (fields.size() != 2 || fields[0] != "DASHIDX" ||
      !util::ParseInt64(fields[1], &version)) {
    throw IndexIoError("not a Dash index file: " + header);
  }
  if (version != kFormatVersion) {
    throw IndexIoError("unsupported index format version " +
                       std::to_string(version));
  }

  fields = DecodeFields(ReadLineOrThrow(in, "app record"));
  if (fields.size() != 4 || fields[0] != "app") {
    throw IndexIoError("malformed app record");
  }
  webapp::WebAppInfo app;
  app.name = fields[1];
  app.uri = fields[2];
  try {
    app.query = sql::Parse(fields[3]);
  } catch (const sql::ParseError& e) {
    throw IndexIoError(std::string("bad stored SQL: ") + e.what());
  }

  std::size_t n = ParseCount(ReadLineOrThrow(in, "bindings"), "bindings");
  std::vector<webapp::ParamBinding> bindings;
  for (std::size_t i = 0; i < n; ++i) {
    fields = DecodeFields(ReadLineOrThrow(in, "binding"));
    if (fields.size() != 2) throw IndexIoError("malformed binding line");
    bindings.push_back(webapp::ParamBinding{fields[0], fields[1]});
  }
  app.codec = webapp::QueryStringCodec(std::move(bindings));

  FragmentIndexBuild build;
  n = ParseCount(ReadLineOrThrow(in, "fragments"), "fragments");
  for (std::size_t i = 0; i < n; ++i) {
    fields = DecodeFields(ReadLineOrThrow(in, "fragment"));
    db::Row id;
    id.reserve(fields.size());
    for (const std::string& f : fields) id.push_back(DecodeTypedValue(f));
    FragmentHandle handle = build.catalog.Intern(id);
    if (handle != static_cast<FragmentHandle>(i)) {
      throw IndexIoError("duplicate fragment identifier in index file");
    }
  }

  n = ParseCount(ReadLineOrThrow(in, "keywords"), "keywords");
  for (std::size_t i = 0; i < n; ++i) {
    fields = DecodeFields(ReadLineOrThrow(in, "keyword postings"));
    if (fields.empty()) throw IndexIoError("malformed keyword line");
    for (std::size_t p = 1; p < fields.size(); ++p) {
      auto colon = fields[p].find(':');
      std::int64_t frag = 0, occ = 0;
      if (colon == std::string::npos ||
          !util::ParseInt64(std::string_view(fields[p]).substr(0, colon),
                            &frag) ||
          !util::ParseInt64(std::string_view(fields[p]).substr(colon + 1),
                            &occ) ||
          frag < 0 ||
          static_cast<std::size_t>(frag) >= build.catalog.size() || occ <= 0) {
        throw IndexIoError("malformed posting: " + fields[p]);
      }
      build.index.AddOccurrences(fields[0],
                                 static_cast<FragmentHandle>(frag),
                                 static_cast<std::uint32_t>(occ));
    }
  }
  build.index.Finalize(&build.catalog, &util::ThreadPool::Shared());
  // Identifiers were written in canonical (ascending) order, so handles
  // are already canonical; no remap needed.
  return IndexSnapshot::Create(std::move(app), std::move(build));
}

SnapshotPtr LoadSnapshotFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IndexIoError("cannot open '" + path + "' for reading");
  return LoadSnapshot(in);
}

DashEngine LoadEngine(std::istream& in) {
  return DashEngine(LoadSnapshot(in));
}

DashEngine LoadEngineFile(const std::string& path) {
  return DashEngine(LoadSnapshotFile(path));
}

}  // namespace dash::core
