// Query-result cache for the serving path.
//
// Search engines answer a heavily skewed query distribution; caching the
// (keywords, k, s) -> results mapping short-circuits repeated hot queries.
// An LRU policy bounds memory. Cache validity is tied to the index by the
// snapshot generation id: every Lookup/Insert names the generation the
// caller is serving, and an entry only hits for its own generation — the
// moment a new snapshot is published, all older entries are stale, with no
// manual invalidation call anywhere. Since generations are process-wide
// unique (core/index_snapshot.h), entries of unrelated engines can never
// collide either.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dash_engine.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dash::core {

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double HitRate() const {
      std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  // Returns the results cached for this query under snapshot `generation`,
  // or nullopt (an entry from another generation is stale and evicted).
  // Thread-safe.
  std::optional<std::vector<SearchResult>> Lookup(
      const std::vector<std::string>& keywords, int k,
      std::uint64_t min_page_words, std::uint64_t generation);

  // Stores results computed against snapshot `generation` (evicting the
  // least recently used entry beyond capacity). Thread-safe.
  void Insert(const std::vector<std::string>& keywords, int k,
              std::uint64_t min_page_words, std::uint64_t generation,
              std::vector<SearchResult> results);

  std::size_t size() const;
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t generation;
    std::vector<SearchResult> results;
  };

  static std::string MakeKey(const std::vector<std::string>& keywords, int k,
                             std::uint64_t min_page_words);

  mutable util::Mutex mutex_;
  const std::size_t capacity_;  // immutable after construction: no lock
  // front = most recent
  std::list<Entry> lru_ DASH_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      DASH_GUARDED_BY(mutex_);
  Stats stats_ DASH_GUARDED_BY(mutex_);
};

// A serving engine paired with a ResultCache: the drop-in caching wrapper.
// Each Search acquires the live snapshot once, and the cache keys on its
// generation — after a republication (UpdatableIndex update, engine
// reassignment, reload) stale entries miss automatically.
class CachingEngine {
 public:
  // Serves the engine's snapshot (re-read per query, so reassigning the
  // engine to a new snapshot is picked up automatically).
  CachingEngine(const DashEngine& engine, std::size_t cache_capacity)
      : engine_(&engine), cache_(cache_capacity) {}

  // Follows a live publication point: every query serves whatever snapshot
  // is currently published (e.g. UpdatableIndex::publisher()).
  CachingEngine(const SnapshotPublisher& publisher,
                std::size_t cache_capacity)
      : publisher_(&publisher), cache_(cache_capacity) {}

  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   int k, std::uint64_t min_page_words);

  const ResultCache& cache() const { return cache_; }

 private:
  // Exactly one of engine_/publisher_ is set.
  const DashEngine* engine_ = nullptr;
  const SnapshotPublisher* publisher_ = nullptr;
  ResultCache cache_;
};

}  // namespace dash::core
