// Query-result cache for the serving path.
//
// Search engines answer a heavily skewed query distribution; caching the
// (keywords, k, s) -> results mapping short-circuits repeated hot queries.
// An LRU policy bounds memory, and a generation counter ties cache
// validity to the index: bumping the generation (after an incremental
// update or an index swap) invalidates everything at once without
// touching entries.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dash_engine.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dash::core {

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double HitRate() const {
      std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  // Returns the cached results for this query, or nullopt. Thread-safe.
  std::optional<std::vector<SearchResult>> Lookup(
      const std::vector<std::string>& keywords, int k,
      std::uint64_t min_page_words);

  // Stores results for this query (evicting the least recently used entry
  // beyond capacity). Thread-safe.
  void Insert(const std::vector<std::string>& keywords, int k,
              std::uint64_t min_page_words, std::vector<SearchResult> results);

  // Invalidates every entry (call after the index changes).
  void Invalidate();

  std::size_t size() const;
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t generation;
    std::vector<SearchResult> results;
  };

  static std::string MakeKey(const std::vector<std::string>& keywords, int k,
                             std::uint64_t min_page_words);

  mutable util::Mutex mutex_;
  const std::size_t capacity_;  // immutable after construction: no lock
  std::uint64_t generation_ DASH_GUARDED_BY(mutex_) = 0;
  // front = most recent
  std::list<Entry> lru_ DASH_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      DASH_GUARDED_BY(mutex_);
  Stats stats_ DASH_GUARDED_BY(mutex_);
};

// A DashEngine paired with a ResultCache: the drop-in serving wrapper.
class CachingEngine {
 public:
  CachingEngine(const DashEngine& engine, std::size_t cache_capacity)
      : engine_(engine), cache_(cache_capacity) {}

  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   int k, std::uint64_t min_page_words);

  // Call when the underlying engine's index has been swapped/updated.
  void OnIndexChanged() { cache_.Invalidate(); }

  const ResultCache& cache() const { return cache_; }

 private:
  const DashEngine& engine_;
  ResultCache cache_;
};

}  // namespace dash::core
