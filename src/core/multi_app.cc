#include "core/multi_app.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace dash::core {

void MultiAppEngine::AddApp(DashEngine engine) {
  for (const DashEngine& e : engines_) {
    if (e.app().name == engine.app().name) {
      throw std::runtime_error("duplicate application '" + engine.app().name +
                               "'");
    }
  }
  engines_.push_back(std::move(engine));
}

void MultiAppEngine::AddApp(SnapshotPtr snapshot) {
  if (snapshot == nullptr || !snapshot->has_app()) {
    throw std::runtime_error("AddApp: snapshot must carry app info");
  }
  AddApp(DashEngine(std::move(snapshot)));
}

const DashEngine& MultiAppEngine::app(std::string_view name) const {
  for (const DashEngine& e : engines_) {
    if (e.app().name == name) return e;
  }
  throw std::runtime_error("unknown application '" + std::string(name) + "'");
}

std::uint64_t MultiAppEngine::PageContentHash(const DashEngine& engine,
                                              const SearchResult& result) {
  std::uint64_t h = 0;
  for (FragmentHandle f : result.fragments) {
    h += engine.catalog().content_hash(f);  // commutative across fragments
  }
  return h;
}

std::vector<MultiAppResult> MultiAppEngine::Search(
    const std::vector<std::string>& keywords, int k,
    std::uint64_t min_page_words) const {
  std::vector<MultiAppResult> merged;
  for (const DashEngine& engine : engines_) {
    for (SearchResult& r : engine.Search(keywords, k, min_page_words)) {
      MultiAppResult m;
      m.app = engine.app().name;
      m.content_hash = PageContentHash(engine, r);
      m.result = std::move(r);
      merged.push_back(std::move(m));
    }
  }

  std::sort(merged.begin(), merged.end(),
            [](const MultiAppResult& a, const MultiAppResult& b) {
              if (a.result.score != b.result.score) {
                return a.result.score > b.result.score;
              }
              if (a.app != b.app) return a.app < b.app;
              return a.result.url < b.result.url;
            });

  // Duplicate elimination: first (best-scored) page per content hash wins.
  std::unordered_map<std::uint64_t, bool> seen;
  std::vector<MultiAppResult> out;
  for (MultiAppResult& m : merged) {
    if (static_cast<int>(out.size()) >= k) break;
    auto [it, inserted] = seen.emplace(m.content_hash, true);
    (void)it;
    if (inserted) out.push_back(std::move(m));
  }
  return out;
}

}  // namespace dash::core
