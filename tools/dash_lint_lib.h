// dash_lint — repo-specific invariant linter (no LLVM dependency).
//
// The Clang thread-safety analysis (see src/util/thread_annotations.h)
// proves lock discipline, but several Dash invariants live above the type
// system: which modules may create threads, which may consume wall-clock
// or entropy, and which container iterations must be canonically ordered.
// dash_lint enforces those with a token-level scan that understands
// comments, string literals, preprocessor lines, and namespace/brace
// structure — enough context to keep the false-positive rate near zero on
// this codebase without dragging in a compiler frontend.
//
// Rule catalog (ids are stable; tie-ins reference DESIGN.md §10):
//   raw-thread       std::thread/std::jthread/std::async only in
//                    util/thread_pool.{h,cc} — everything else goes
//                    through util::ThreadPool so pool sizing, exception
//                    propagation, and shutdown stay centralized.
//   nondeterminism   no rand()/srand()/std::random_device/time()/
//                    std::chrono::system_clock in src/core + src/mapreduce:
//                    crawl/index/serving must be seed-replayable
//                    (SplitMix64 via util/random.h only). This is the
//                    contract the PR 2 fuzz oracles depend on.
//   unordered-iter   range-for over a std::unordered_map/set declared in
//                    the same file, inside src/core, needs a canonical
//                    sort within the next few lines (or an allow comment):
//                    hash-order leaking into output is the exact bug class
//                    the differential harness caught twice in PR 2.
//   global-state     namespace-scope mutable variables must carry
//                    DASH_GUARDED_BY (or be atomic/Mutex/const/thread_local)
//                    so the analyze preset can prove every access.
//   iostream-hotpath no <iostream>/std::cout/std::cerr in src/core +
//                    src/db — use util/logging (leveled, sink-fanout,
//                    and quiet under test) instead of interleaving raw
//                    stream writes on hot paths.
//   layer-cycle      quoted includes must follow the one-way module
//                    layering util < db < sql|tpch < webapp < mapreduce
//                    < core < baseline < testing < tools; an upward
//                    include (src/db/ pulling core/..., say) is the seed
//                    of a dependency cycle and is rejected outright.
//
// Escape hatch: a `// dash-lint: allow(rule-id)` comment on the offending
// line or the line directly above suppresses that rule there; suppressions
// are counted and listed in the summary so they stay visible in review.
#pragma once

#include <string>
#include <vector>

namespace dash::lint {

struct Diagnostic {
  std::string file;  // repo-relative path, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  // Machine-readable "file:line: rule-id: message".
  std::string ToString() const;
};

struct Report {
  std::vector<Diagnostic> violations;
  std::vector<Diagnostic> allowed;  // suppressed by dash-lint: allow(...)
  std::size_t files_scanned = 0;
};

// Lints one file's contents. `path` must be the repo-relative path with
// forward slashes (rule applicability is path-based).
Report LintFile(const std::string& path, const std::string& content);

// Walks `root`/src and `root`/tools (tests/ are exempt by design: they may
// spawn raw threads and probe nondeterminism) and lints every *.h/*.cc.
Report LintTree(const std::string& root);

// Human-readable rule catalog for --list-rules.
std::string RuleCatalog();

}  // namespace dash::lint
