#include "dash_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace dash::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when `token` occurs in `s` as a whole word (the characters adjacent
// to the match are not identifier characters). `token` itself may contain
// '::' qualifiers.
bool ContainsWord(const std::string& s, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    std::size_t end = pos + token.size();
    bool right_ok = end >= s.size() || !IsIdentChar(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

// Word `token` immediately (modulo whitespace) followed by '('.
bool ContainsCall(const std::string& s, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    std::size_t end = pos + token.size();
    if (left_ok) {
      std::size_t j = end;
      while (j < s.size() && (s[j] == ' ' || s[j] == '\t')) ++j;
      if (j < s.size() && s[j] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

// Rank of a top-level module directory in the include-layer order
// (util < db < sql|tpch < webapp < mapreduce < core < baseline < testing
// < tools); -1 when the directory is not a layer.
int LayerRank(const std::string& dir) {
  static const std::map<std::string, int> kRank = {
      {"util", 0},   {"db", 1},        {"sql", 2},  {"tpch", 2},
      {"webapp", 3}, {"mapreduce", 4}, {"core", 5}, {"baseline", 6},
      {"testing", 7}, {"tools", 8}};
  auto it = kRank.find(dir);
  return it == kRank.end() ? -1 : it->second;
}

// The scanner's view of one source file: comment/string/preprocessor-free
// code lines (positions preserved), the raw lines, include targets, and
// per-line allow() sets.
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  // line (1-based) -> set of rule ids allowed on that line and the next
  std::map<int, std::set<std::string>> allows;
  // line -> include target as written, e.g. "<iostream>" or "\"util/x.h\""
  std::map<int, std::string> includes;
};

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

void ParseAllowComments(FileView& view) {
  static const std::string kMarker = "dash-lint: allow(";
  for (std::size_t i = 0; i < view.raw.size(); ++i) {
    const std::string& line = view.raw[i];
    std::size_t pos = 0;
    while ((pos = line.find(kMarker, pos)) != std::string::npos) {
      std::size_t begin = pos + kMarker.size();
      std::size_t end = line.find(')', begin);
      if (end == std::string::npos) break;
      view.allows[static_cast<int>(i) + 1].insert(
          line.substr(begin, end - begin));
      pos = end;
    }
  }
}

void ParseIncludes(FileView& view) {
  for (std::size_t i = 0; i < view.raw.size(); ++i) {
    const std::string& line = view.raw[i];
    std::size_t j = line.find_first_not_of(" \t");
    if (j == std::string::npos || line[j] != '#') continue;
    j = line.find_first_not_of(" \t", j + 1);
    if (j == std::string::npos || line.compare(j, 7, "include") != 0) continue;
    j = line.find_first_not_of(" \t", j + 7);
    if (j == std::string::npos) continue;
    char close = line[j] == '<' ? '>' : (line[j] == '"' ? '"' : '\0');
    if (close == '\0') continue;
    std::size_t end = line.find(close, j + 1);
    if (end == std::string::npos) continue;
    view.includes[static_cast<int>(i) + 1] = line.substr(j, end - j + 1);
  }
}

// Blanks comments, string/char literals (including raw strings), and
// preprocessor directives (with backslash continuations), preserving line
// structure so diagnostics keep their positions.
void BuildCodeView(FileView& view) {
  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
    kPreprocessor
  };
  State state = State::kNormal;
  std::string raw_delim;  // for raw strings: the ")delim" terminator
  view.code.assign(view.raw.size(), "");
  for (std::size_t li = 0; li < view.raw.size(); ++li) {
    const std::string& in = view.raw[li];
    std::string out(in.size(), ' ');
    if (state == State::kLineComment) state = State::kNormal;
    std::size_t i = 0;
    // A preprocessor directive can only start at the beginning of a line.
    if (state == State::kNormal) {
      std::size_t first = in.find_first_not_of(" \t");
      if (first != std::string::npos && in[first] == '#') {
        state = State::kPreprocessor;
      }
    }
    while (i < in.size()) {
      char c = in[i];
      char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kNormal:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            i = in.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            i += 2;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || !IsIdentChar(in[i - 1]))) {
            std::size_t open = in.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim = ")" + in.substr(i + 2, open - (i + 2)) + "\"";
              state = State::kRawString;
              i = open + 1;
            } else {
              i += 2;  // malformed; skip
            }
          } else if (c == '"') {
            state = State::kString;
            ++i;
          } else if (c == '\'' &&
                     !(i > 0 && (std::isdigit(static_cast<unsigned char>(
                                     in[i - 1])) ||
                                 in[i - 1] == '\''))) {
            // skip digit separators like 1'000'000
            state = State::kChar;
            ++i;
          } else {
            out[i] = c;
            ++i;
          }
          break;
        case State::kString:
        case State::kChar:
          if (c == '\\') {
            i += 2;
          } else if ((state == State::kString && c == '"') ||
                     (state == State::kChar && c == '\'')) {
            state = State::kNormal;
            ++i;
          } else {
            ++i;
          }
          break;
        case State::kRawString: {
          std::size_t end = in.find(raw_delim, i);
          if (end == std::string::npos) {
            i = in.size();
          } else {
            i = end + raw_delim.size();
            state = State::kNormal;
          }
          break;
        }
        case State::kBlockComment: {
          std::size_t end = in.find("*/", i);
          if (end == std::string::npos) {
            i = in.size();
          } else {
            i = end + 2;
            state = State::kNormal;
          }
          break;
        }
        case State::kPreprocessor:
          i = in.size();  // whole line blanked
          break;
        case State::kLineComment:
          i = in.size();
          break;
      }
    }
    if (state == State::kPreprocessor) {
      // Continue only when the raw line ends with a backslash.
      std::size_t last = in.find_last_not_of(" \t");
      if (last == std::string::npos || in[last] != '\\') {
        state = State::kNormal;
      }
    }
    if (state == State::kString || state == State::kChar) {
      state = State::kNormal;  // unterminated literal: recover per line
    }
    view.code[li] = std::move(out);
  }
}

class Linter {
 public:
  Linter(std::string path, const std::string& content) : path_(std::move(path)) {
    view_.raw = SplitLines(content);
    ParseAllowComments(view_);
    ParseIncludes(view_);
    BuildCodeView(view_);
  }

  Report Run() {
    if (RuleApplies("raw-thread")) CheckRawThread();
    if (RuleApplies("nondeterminism")) CheckNondeterminism();
    if (RuleApplies("unordered-iter")) CheckUnorderedIteration();
    if (RuleApplies("global-state")) CheckGlobalState();
    if (RuleApplies("iostream-hotpath")) CheckIostream();
    if (RuleApplies("layer-cycle")) CheckLayerCycle();
    report_.files_scanned = 1;
    return std::move(report_);
  }

 private:
  bool StartsWith(const std::string& prefix) const {
    return path_.rfind(prefix, 0) == 0;
  }

  bool RuleApplies(const std::string& rule) const {
    if (rule == "raw-thread") {
      return path_ != "src/util/thread_pool.h" &&
             path_ != "src/util/thread_pool.cc";
    }
    if (rule == "nondeterminism") {
      return StartsWith("src/core/") || StartsWith("src/mapreduce/");
    }
    if (rule == "unordered-iter") return StartsWith("src/core/");
    if (rule == "global-state") return true;
    if (rule == "iostream-hotpath") {
      return StartsWith("src/core/") || StartsWith("src/db/");
    }
    if (rule == "layer-cycle") return true;
    return false;
  }

  // The layer directory this file belongs to: the segment after "src/",
  // or "tools" for the linter/fuzzer sources. Empty when the path is not
  // inside a layer (fixture paths in tests, say).
  std::string FileLayerDir() const {
    if (StartsWith("tools/")) return "tools";
    if (!StartsWith("src/")) return "";
    std::size_t begin = 4;  // past "src/"
    std::size_t slash = path_.find('/', begin);
    if (slash == std::string::npos) return "";
    return path_.substr(begin, slash - begin);
  }

  void Emit(int line, const std::string& rule, std::string message) {
    Diagnostic d{path_, line, rule, std::move(message)};
    auto allowed_at = [&](int l) {
      auto it = view_.allows.find(l);
      return it != view_.allows.end() && it->second.count(rule) > 0;
    };
    if (allowed_at(line) || allowed_at(line - 1)) {
      report_.allowed.push_back(std::move(d));
    } else {
      report_.violations.push_back(std::move(d));
    }
  }

  void CheckRawThread() {
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& line = view_.code[i];
      for (const char* token : {"std::thread", "std::jthread", "std::async"}) {
        if (ContainsWord(line, token)) {
          Emit(static_cast<int>(i) + 1, "raw-thread",
               std::string(token) +
                   " outside util/thread_pool; use util::ThreadPool "
                   "(Submit/ParallelFor)");
        }
      }
    }
  }

  void CheckNondeterminism() {
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& line = view_.code[i];
      int ln = static_cast<int>(i) + 1;
      for (const char* call : {"rand", "srand", "time", "clock"}) {
        if (ContainsCall(line, call)) {
          Emit(ln, "nondeterminism",
               std::string(call) +
                   "() is nondeterministic; core/mapreduce must be "
                   "seed-replayable (util/random.h SplitMix64)");
        }
      }
      for (const char* token :
           {"std::random_device", "std::chrono::system_clock"}) {
        if (ContainsWord(line, token)) {
          Emit(ln, "nondeterminism",
               std::string(token) +
                   " is nondeterministic; core/mapreduce must be "
                   "seed-replayable (util/random.h SplitMix64)");
        }
      }
    }
  }

  // Variables declared in this file with an unordered container type.
  std::vector<std::string> UnorderedNames() const {
    std::vector<std::string> names;
    for (const std::string& line : view_.code) {
      for (const char* kind : {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"}) {
        std::size_t pos = 0;
        while ((pos = line.find(kind, pos)) != std::string::npos) {
          std::size_t j = pos + std::string(kind).size();
          pos = j;
          // Skip the template argument list (balanced angle brackets).
          std::size_t k = j;
          while (k < line.size() && (line[k] == ' ' || line[k] == '\t')) ++k;
          if (k >= line.size() || line[k] != '<') continue;
          int depth = 0;
          while (k < line.size()) {
            if (line[k] == '<') ++depth;
            if (line[k] == '>') {
              --depth;
              if (depth == 0) {
                ++k;
                break;
              }
            }
            ++k;
          }
          if (depth != 0) continue;  // args span lines: give up on this decl
          while (k < line.size() && (line[k] == ' ' || line[k] == '\t' ||
                                     line[k] == '&')) {
            ++k;
          }
          std::size_t name_begin = k;
          while (k < line.size() && IsIdentChar(line[k])) ++k;
          if (k > name_begin) {
            std::string name = line.substr(name_begin, k - name_begin);
            if (name != "iterator" && name != "const_iterator") {
              names.push_back(std::move(name));
            }
          }
        }
      }
    }
    return names;
  }

  void CheckUnorderedIteration() {
    std::vector<std::string> names = UnorderedNames();
    if (names.empty()) return;
    constexpr int kSortWindow = 12;  // lines after the loop header
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& line = view_.code[i];
      // Find a range-for header: `for (... : range)` (the range expression
      // may not span lines — good enough for this codebase).
      std::size_t fpos = 0;
      while ((fpos = line.find("for", fpos)) != std::string::npos) {
        bool word = (fpos == 0 || !IsIdentChar(line[fpos - 1])) &&
                    (fpos + 3 >= line.size() || !IsIdentChar(line[fpos + 3]));
        if (!word) {
          fpos += 3;
          continue;
        }
        std::size_t open = line.find('(', fpos + 3);
        if (open == std::string::npos) break;
        // Top-level ':' that is not part of '::'.
        std::size_t colon = std::string::npos;
        for (std::size_t k = open + 1; k < line.size(); ++k) {
          if (line[k] == ':' &&
              (k + 1 >= line.size() || line[k + 1] != ':') &&
              (k == 0 || line[k - 1] != ':')) {
            colon = k;
            break;
          }
        }
        if (colon == std::string::npos) break;
        std::string range = line.substr(colon + 1);
        bool hits = false;
        for (const std::string& name : names) {
          if (ContainsWord(range, name)) hits = true;
        }
        if (hits) {
          bool sorted_nearby = false;
          for (std::size_t j = i;
               j < view_.code.size() && j <= i + kSortWindow; ++j) {
            const std::string& near = view_.code[j];
            if (near.find("sort(") != std::string::npos ||
                near.find("Canonicalize") != std::string::npos) {
              sorted_nearby = true;
              break;
            }
          }
          if (!sorted_nearby) {
            Emit(static_cast<int>(i) + 1, "unordered-iter",
                 "iteration over unordered container feeds output without a "
                 "canonical sort nearby; sort, or justify with an allow "
                 "comment");
          }
        }
        break;  // one range-for per line is enough
      }
    }
  }

  void CheckGlobalState() {
    struct Scope {
      bool is_namespace;
      bool is_initializer;  // brace belongs to a declaration's initializer
    };
    std::vector<Scope> scopes;
    auto at_ns_scope = [&] {
      for (const Scope& s : scopes) {
        if (!s.is_namespace && !s.is_initializer) return false;
        if (s.is_initializer) return false;
      }
      return true;
    };
    std::string stmt;
    int stmt_line = 0;
    for (std::size_t li = 0; li < view_.code.size(); ++li) {
      const std::string& line = view_.code[li];
      for (char c : line) {
        if (c == '{') {
          if (!at_ns_scope()) {
            scopes.push_back({false, false});
            continue;
          }
          std::string t = stmt;
          while (!t.empty() && (t.back() == ' ' || t.back() == '\t')) {
            t.pop_back();
          }
          if (ContainsWord(t, "namespace")) {
            scopes.push_back({true, false});
            stmt.clear();
          } else if (t.empty() || t.back() == ')' ||
                     t.find('(') != std::string::npos ||
                     ContainsWord(t, "class") || ContainsWord(t, "struct") ||
                     ContainsWord(t, "union") || ContainsWord(t, "enum") ||
                     ContainsWord(t, "extern")) {
            scopes.push_back({false, false});  // type/function/linkage body
            stmt.clear();
          } else {
            scopes.push_back({false, true});  // braced initializer
          }
        } else if (c == '}') {
          bool was_init = false;
          if (!scopes.empty()) {
            was_init = scopes.back().is_initializer;
            scopes.pop_back();
          }
          // Closing a body at namespace scope ends the construct; closing
          // an initializer (or any brace nested inside one) leaves the
          // pending declaration intact until its ';'.
          if (!was_init && at_ns_scope()) stmt.clear();
        } else if (c == ';') {
          if (at_ns_scope()) {
            CheckNamespaceDecl(stmt, stmt_line);
          }
          stmt.clear();
        } else if (at_ns_scope()) {
          if (stmt.empty() && (c == ' ' || c == '\t')) continue;
          if (stmt.empty()) stmt_line = static_cast<int>(li) + 1;
          stmt.push_back(c);
        }
      }
      if (at_ns_scope() && !stmt.empty()) stmt.push_back(' ');
    }
  }

  void CheckNamespaceDecl(const std::string& stmt, int line) {
    if (stmt.find_first_not_of(" \t") == std::string::npos) return;
    // Declarations that are immutable, synchronisation primitives, or not
    // variables at all.
    for (const char* kw :
         {"using", "typedef", "template", "friend", "static_assert",
          "extern", "operator", "struct", "class", "union", "enum",
          "namespace", "const", "constexpr", "constinit", "consteval",
          "thread_local", "requires", "concept", "return", "if", "while",
          "public", "private", "protected"}) {
      if (ContainsWord(stmt, kw)) return;
    }
    if (stmt.find('(') != std::string::npos) return;  // function-ish
    for (const char* type_ok :
         {"Mutex", "mutex", "atomic", "once_flag", "CondVar",
          "condition_variable"}) {
      if (stmt.find(type_ok) != std::string::npos) return;
    }
    if (stmt.find("GUARDED_BY") != std::string::npos) return;
    // Needs at least a type token and a name token.
    int ident_tokens = 0;
    bool in_token = false;
    for (char c : stmt) {
      if (IsIdentChar(c)) {
        if (!in_token) ++ident_tokens;
        in_token = true;
      } else {
        in_token = false;
      }
    }
    if (ident_tokens < 2) return;
    Emit(line, "global-state",
         "mutable namespace-scope state without DASH_GUARDED_BY; guard it "
         "with a dash::util::Mutex (or make it const/atomic)");
  }

  void CheckIostream() {
    // <ostream>/<istream> are fine: the save/load APIs take stream
    // references. The ban is on *console* I/O — <iostream> drags in the
    // global stream objects, and cout/cerr writes bypass util/logging's
    // level filter and sink fanout.
    for (const auto& [line, target] : view_.includes) {
      if (target == "<iostream>") {
        Emit(line, "iostream-hotpath",
             "iostream include in a hot-path module; use util/logging "
             "(DASH_LOG) instead");
      }
    }
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& line = view_.code[i];
      for (const char* token : {"std::cout", "std::cerr", "std::cin",
                                "std::clog"}) {
        if (ContainsWord(line, token)) {
          Emit(static_cast<int>(i) + 1, "iostream-hotpath",
               std::string(token) +
                   " in a hot-path module; use util/logging (DASH_LOG)");
        }
      }
    }
  }

  void CheckLayerCycle() {
    const std::string dir = FileLayerDir();
    const int rank = LayerRank(dir);
    if (rank < 0) return;
    for (const auto& [line, target] : view_.includes) {
      // Only quoted project includes participate; system headers and
      // same-directory siblings (no path separator) are out of scope.
      if (target.size() < 2 || target.front() != '"') continue;
      std::string inner = target.substr(1, target.size() - 2);
      std::size_t slash = inner.find('/');
      if (slash == std::string::npos) continue;
      std::string head = inner.substr(0, slash);
      int target_rank = LayerRank(head);
      if (target_rank < 0) continue;  // not a layer directory
      if (head == dir || target_rank < rank) continue;
      Emit(line, "layer-cycle",
           "include \"" + inner + "\" reaches layer '" + head +
               "' from layer '" + dir +
               "'; the include order is util < db < sql|tpch < webapp < "
               "mapreduce < core < baseline < testing < tools");
    }
  }

  std::string path_;
  FileView view_;
  Report report_;
};

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << file << ":" << line << ": " << rule << ": " << message;
  return out.str();
}

Report LintFile(const std::string& path, const std::string& content) {
  return Linter(path, content).Run();
}

Report LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  Report total;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools"}) {
    fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      fs::path ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string rel =
        fs::relative(file, fs::path(root)).generic_string();
    Report r = LintFile(rel, buffer.str());
    total.files_scanned += r.files_scanned;
    for (auto& d : r.violations) total.violations.push_back(std::move(d));
    for (auto& d : r.allowed) total.allowed.push_back(std::move(d));
  }
  return total;
}

std::string RuleCatalog() {
  return
      "raw-thread        std::thread/std::jthread/std::async are only\n"
      "                  allowed in src/util/thread_pool.{h,cc}; everything\n"
      "                  else uses util::ThreadPool.\n"
      "nondeterminism    rand()/srand()/time()/clock()/std::random_device/\n"
      "                  std::chrono::system_clock are banned in src/core\n"
      "                  and src/mapreduce; use util/random.h (SplitMix64).\n"
      "unordered-iter    in src/core, a range-for over an unordered\n"
      "                  container declared in the same file needs a\n"
      "                  canonical sort within 12 lines (hash order must\n"
      "                  not reach output).\n"
      "global-state      namespace-scope mutable variables must be\n"
      "                  DASH_GUARDED_BY a mutex, atomic, or const.\n"
      "iostream-hotpath  src/core and src/db must not use <iostream>/\n"
      "                  std::cout/std::cerr; use util/logging.\n"
      "layer-cycle       quoted includes must respect the module layering\n"
      "                  util < db < sql|tpch < webapp < mapreduce < core <\n"
      "                  baseline < testing < tools: a layer may include\n"
      "                  itself or any strictly lower layer, never upward\n"
      "                  (e.g. nothing under src/db/ may include core/...).\n"
      "\n"
      "Suppress a finding with `// dash-lint: allow(rule-id)` on the same\n"
      "line or the line above; suppressions are listed in the summary.\n";
}

}  // namespace dash::lint
