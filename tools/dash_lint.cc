// dash_lint CLI — scans src/ and tools/ for repo invariant violations.
//
//   dash_lint --root <repo-root> [--list-rules]
//
// Output: one `file:line: rule-id: message` per violation, then a summary
// naming every `// dash-lint: allow(...)` suppression in the tree (the
// escape hatch stays visible, not silent). Exit code 1 on any violation.
// Registered as a CTest with label `lint` (ctest -L lint).
#include <cstdio>
#include <string>

#include "dash_lint_lib.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      std::fputs(dash::lint::RuleCatalog().c_str(), stdout);
      return 0;
    } else if (arg == "--help") {
      std::puts("usage: dash_lint [--root <repo-root>] [--list-rules]");
      return 0;
    } else {
      std::fprintf(stderr, "dash_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  dash::lint::Report report = dash::lint::LintTree(root);
  for (const auto& d : report.violations) {
    std::printf("%s\n", d.ToString().c_str());
  }
  std::printf("dash_lint: scanned %zu files, %zu violation(s), %zu allowed "
              "suppression(s)\n",
              report.files_scanned, report.violations.size(),
              report.allowed.size());
  for (const auto& d : report.allowed) {
    std::printf("  allowed: %s:%d: %s\n", d.file.c_str(), d.line,
                d.rule.c_str());
  }
  return report.violations.empty() ? 0 : 1;
}
