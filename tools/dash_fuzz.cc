// dash_fuzz: differential fuzzing driver for the Dash engine.
//
// Generates random database/web-application instances (testing/instance_gen)
// and cross-checks every answer path and metamorphic invariant on each
// (testing/oracles). On a mismatch the failing instance is shrunk by
// deleting rows while the mismatch persists, then dumped together with a
// replayable command line.
//
//   dash_fuzz --runs 1000            # sweep seeds 1..1000
//   dash_fuzz --runs 1000 --threads 8  # same sweep on a worker pool
//   dash_fuzz --seed 4242            # replay one seed verbosely
//   dash_fuzz --runs 200 --queries 8 --no-shrink
//
// `--threads N` only parallelizes the sweep across seeds — each seed's
// instance, workload, shrink, and replay stay bit-for-bit deterministic,
// and a parallel sweep reports the same (lowest) failing seed a
// sequential one would.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/instance_gen.h"
#include "testing/oracles.h"
#include "util/thread_pool.h"

namespace {

using dash::testing::CheckInstance;
using dash::testing::DumpInstance;
using dash::testing::GenerateInstance;
using dash::testing::OracleOptions;
using dash::testing::OracleReport;
using dash::testing::RandomInstance;

struct Args {
  std::uint64_t runs = 200;
  std::uint64_t start = 1;
  std::int64_t seed = -1;  // >= 0: replay exactly this seed
  std::uint64_t threads = 1;
  bool shrink = true;
  bool verbose = false;
  OracleOptions oracle;
};

[[noreturn]] void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --runs N       seeds to sweep (default 200)\n"
      << "  --start N      first seed of the sweep (default 1)\n"
      << "  --seed N       replay a single seed and dump the instance\n"
      << "  --threads N    sweep seeds on an N-worker pool (default 1);\n"
      << "                 reports the same lowest failing seed as N=1\n"
      << "  --queries N    random queries per instance (default "
      << OracleOptions{}.queries_per_instance << ")\n"
      << "  --updates N    insert/delete mutations per instance (default "
      << OracleOptions{}.update_ops << ")\n"
      << "  --no-shrink    report the original failing instance unshrunk\n"
      << "  --verbose      print every instance summary while sweeping\n";
  std::exit(2);
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  auto next_value = [&](int& i) -> std::uint64_t {
    if (i + 1 >= argc) Usage(argv[0]);
    return std::strtoull(argv[++i], nullptr, 10);
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--runs") {
      args.runs = next_value(i);
    } else if (arg == "--start") {
      args.start = next_value(i);
    } else if (arg == "--seed") {
      args.seed = static_cast<std::int64_t>(next_value(i));
    } else if (arg == "--threads") {
      args.threads = next_value(i);
      if (args.threads == 0) Usage(argv[0]);
    } else if (arg == "--queries") {
      args.oracle.queries_per_instance = static_cast<int>(next_value(i));
    } else if (arg == "--updates") {
      args.oracle.update_ops = static_cast<int>(next_value(i));
    } else if (arg == "--no-shrink") {
      args.shrink = false;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else {
      Usage(argv[0]);
    }
  }
  return args;
}

// The query/update workload seed is derived from the instance seed, so one
// `--seed N` line replays both the instance and the workload exactly.
std::uint64_t WorkloadSeed(std::uint64_t seed) { return seed ^ 0x5EEDF00DULL; }

// Delta-debugging by row deletion: repeatedly try removing one row at a
// time; keep a deletion when the oracle mismatch persists. Converges to an
// instance where every remaining row is necessary for the failure.
RandomInstance Shrink(const RandomInstance& failing,
                      const OracleOptions& options) {
  RandomInstance best = failing;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const std::string& name : best.db.TableNames()) {
      for (std::size_t r = 0; r < best.db.table(name).row_count();) {
        RandomInstance candidate = best;
        dash::db::Row victim = candidate.db.table(name).rows()[r];
        candidate.db.mutable_table(name).RemoveFirstMatch(victim);
        if (!CheckInstance(candidate, WorkloadSeed(candidate.seed), options)
                 .ok()) {
          best = std::move(candidate);
          progress = true;  // same index now names the next row
        } else {
          ++r;  // row is load-bearing, keep it
        }
      }
    }
  }
  best.summary += " (shrunk)";
  return best;
}

int ReportFailure(const RandomInstance& original, const Args& args) {
  RandomInstance culprit =
      args.shrink ? Shrink(original, args.oracle) : original;
  OracleReport report =
      CheckInstance(culprit, WorkloadSeed(culprit.seed), args.oracle);
  std::cout << "FAILURE at seed " << original.seed << "\n"
            << report.ToString() << "\n"
            << DumpInstance(culprit)
            << "replay: dash_fuzz --seed " << original.seed << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);

  if (args.seed >= 0) {
    RandomInstance inst =
        GenerateInstance(static_cast<std::uint64_t>(args.seed));
    std::cout << DumpInstance(inst);
    OracleReport report =
        CheckInstance(inst, WorkloadSeed(inst.seed), args.oracle);
    if (!report.ok()) return ReportFailure(inst, args);
    std::cout << "seed " << args.seed << ": all oracles agree\n";
    return 0;
  }

  if (args.threads > 1) {
    // Parallel sweep: seeds fan out over the pool; the lowest failing
    // seed wins, so the verdict matches a sequential sweep. Seeds above
    // an already-found failure are skipped (the sequential sweep would
    // never have reached them).
    constexpr std::uint64_t kNone = ~std::uint64_t{0};
    std::atomic<std::uint64_t> first_failure{kNone};
    std::atomic<std::uint64_t> checked{0};
    dash::util::ThreadPool pool(args.threads);
    pool.ParallelFor(args.runs, [&](std::size_t i) {
      std::uint64_t seed = args.start + i;
      if (seed >= first_failure.load(std::memory_order_relaxed)) return;
      RandomInstance inst = GenerateInstance(seed);
      if (args.verbose) std::cout << inst.summary + "\n";
      OracleReport report =
          CheckInstance(inst, WorkloadSeed(seed), args.oracle);
      if (!report.ok()) {
        std::uint64_t seen = first_failure.load(std::memory_order_relaxed);
        while (seed < seen && !first_failure.compare_exchange_weak(
                                  seen, seed, std::memory_order_relaxed)) {
        }
        return;
      }
      std::uint64_t done = checked.fetch_add(1) + 1;
      if (done % 100 == 0) {
        std::cout << std::to_string(done) + "/" + std::to_string(args.runs) +
                         " seeds checked\n";
      }
    });
    std::uint64_t failing = first_failure.load();
    if (failing != kNone) {
      // Re-derive the culprit on this thread; shrink and the replay line
      // are exactly what a sequential sweep would have printed.
      return ReportFailure(GenerateInstance(failing), args);
    }
    std::cout << "OK: " << checked.load()
              << " instances, zero oracle mismatches\n";
    return 0;
  }

  std::uint64_t checked = 0;
  for (std::uint64_t seed = args.start; seed < args.start + args.runs;
       ++seed) {
    RandomInstance inst = GenerateInstance(seed);
    if (args.verbose) std::cout << inst.summary << "\n";
    OracleReport report =
        CheckInstance(inst, WorkloadSeed(seed), args.oracle);
    if (!report.ok()) return ReportFailure(inst, args);
    if (++checked % 100 == 0) {
      std::cout << checked << "/" << args.runs << " seeds checked\n";
    }
  }
  std::cout << "OK: " << checked << " instances, zero oracle mismatches\n";
  return 0;
}
